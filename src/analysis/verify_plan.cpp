#include "analysis/verify_plan.hpp"

#include <algorithm>
#include <charconv>

#include "pbio/plan_cache.hpp"

namespace omf::analysis {

namespace {

using pbio::ConvOp;

const char* kind_name(ConvOp::Kind k) {
  switch (k) {
    case ConvOp::Kind::kCopy: return "copy";
    case ConvOp::Kind::kInt: return "int";
    case ConvOp::Kind::kFloat: return "float";
    case ConvOp::Kind::kString: return "string";
    case ConvOp::Kind::kDynArray: return "dyn_array";
    case ConvOp::Kind::kNestedStatic: return "nested_static";
    case ConvOp::Kind::kZero: return "zero";
    case ConvOp::Kind::kDefault: return "default";
  }
  return "?";
}

bool valid_int_width(std::uint64_t w) {
  return w == 1 || w == 2 || w == 4 || w == 8;
}
bool valid_float_width(std::uint64_t w) { return w == 4 || w == 8; }

std::string interval_str(std::uint64_t b, std::uint64_t e) {
  return "[" + std::to_string(b) + ", " + std::to_string(e) + ")";
}

/// One verification walk over one op program. All arithmetic is exact in
/// 64 bits: ConvOp offsets/sizes/counts are 32-bit, so the worst case
/// offset + count*size + zero_tail < 2^64 — the interval domain never
/// wraps.
struct Interp {
  const PlanShape& shape;
  BoundsCertificate cert;
  std::vector<Diagnostic> diags;

  explicit Interp(const PlanShape& s) : shape(s) {
    cert.plan = s.name;
    cert.wire_extent = s.wire_extent;
    cert.native_extent = s.native_extent;
    cert.ptr_size = s.ptr_size;
  }

  std::string op_label(std::size_t i, const ConvOp& op) const {
    std::string s = "op#" + std::to_string(i) + " (" + kind_name(op.kind);
    if (shape.wire != nullptr && op.src_field != ConvOp::kNoSrcField &&
        op.src_field < shape.wire->fields().size()) {
      s += ", field '" + shape.wire->fields()[op.src_field].name + "'";
      if (op.fused_fields > 1) {
        s += " +" + std::to_string(op.fused_fields - 1) + " fused";
      }
    }
    s += ")";
    return s;
  }

  void error(const char* code, std::string msg) {
    diags.push_back(Diagnostic{code, Severity::kError, std::move(msg),
                               /*path=*/shape.name});
  }

  /// The concrete counterexample every OMF4xx diagnostic carries: the
  /// decoder admits any body of at least wire_extent bytes, so the
  /// shortest admissible message is the witness for static violations.
  std::string counterexample() const {
    return "counterexample message length: " +
           std::to_string(cert.wire_extent) +
           "-byte body (the minimum the decoder admits for this format)";
  }

  void read(std::size_t i, const ConvOp& op, std::uint64_t begin,
            std::uint64_t end, const char* what) {
    cert.reads.push_back(AccessInterval{i, begin, end, false});
    if (end > cert.wire_extent) {
      error(codes::kVerifyReadOutOfBounds,
            op_label(i, op) + " reads " + what + " bytes " +
                interval_str(begin, end) +
                " of the wire struct region, which only spans [0, " +
                std::to_string(cert.wire_extent) + "): " +
                std::to_string(end - cert.wire_extent) +
                " byte(s) past the end; " + counterexample());
    }
  }

  void write(std::size_t i, const ConvOp& op, std::uint64_t begin,
             std::uint64_t end, const char* what) {
    cert.writes.push_back(AccessInterval{i, begin, end, false});
    if (end > cert.native_extent) {
      error(codes::kVerifyWriteOutOfBounds,
            op_label(i, op) + " writes " + what + " bytes " +
                interval_str(begin, end) +
                " of the native struct, which only spans [0, " +
                std::to_string(cert.native_extent) + "): " +
                std::to_string(end - cert.native_extent) +
                " byte(s) past the end; " + counterexample());
    }
  }

  void bad_width(std::size_t i, const ConvOp& op, const char* what,
                 std::uint64_t width) {
    error(codes::kVerifyBadWidth,
          op_label(i, op) + " has " + what + " width " +
              std::to_string(width) +
              ", outside the certifiable set {1,2,4,8} — the interpreted "
              "store writes 8 bytes per element regardless; " +
              counterexample());
  }

  void unprovable(std::size_t i, const ConvOp& op, const std::string& why) {
    error(codes::kVerifyUnprovableGuard,
          op_label(i, op) + ": " + why + "; " + counterexample());
  }

  void subplan(std::size_t i, const ConvOp& op) {
    if (op.subplan == nullptr) {
      unprovable(i, op,
                 "nested conversion has no subplan — execute_op would "
                 "dereference null");
      return;
    }
    VerifyResult sub = verify_plan(*op.subplan);
    cert.subplans += 1;
    if (!sub.certified()) {
      for (Diagnostic& d : sub.diagnostics) {
        d.message = op_label(i, op) + " subplan: " + d.message;
        diags.push_back(std::move(d));
      }
      return;
    }
    cert.subplans += sub.certificate->subplans;
    cert.guarded_accesses += sub.certificate->guarded_accesses;
    // Element stride must cover the subplan's own extents, or the last
    // element's conversion escapes the run this op accounts for.
    if (sub.certificate->wire_extent > op.src_size) {
      error(codes::kVerifyReadOutOfBounds,
            op_label(i, op) + " subplan reads " +
                std::to_string(sub.certificate->wire_extent) +
                " bytes per element but the element stride is only " +
                std::to_string(op.src_size) + "; " + counterexample());
    }
    if (sub.certificate->native_extent > op.dst_size) {
      error(codes::kVerifyWriteOutOfBounds,
            op_label(i, op) + " subplan writes " +
                std::to_string(sub.certificate->native_extent) +
                " bytes per element but the destination stride is only " +
                std::to_string(op.dst_size) + "; " + counterexample());
    }
  }

  void ptr_slot(std::size_t i, const ConvOp& op) {
    if (!valid_int_width(cert.ptr_size)) {
      unprovable(i, op,
                 "wire pointer-slot width " + std::to_string(cert.ptr_size) +
                     " is not loadable — the variable-section guard never "
                     "sees a defined offset");
    }
    read(i, op, op.src_offset,
         static_cast<std::uint64_t>(op.src_offset) + cert.ptr_size,
         "pointer-slot");
  }

  void walk(std::size_t i, const ConvOp& op) {
    const std::uint64_t soff = op.src_offset;
    const std::uint64_t doff = op.dst_offset;
    const std::uint64_t ssz = op.src_size;
    const std::uint64_t dsz = op.dst_size;
    const std::uint64_t cnt = op.count;
    const std::uint64_t zt = op.zero_tail;

    switch (op.kind) {
      case ConvOp::Kind::kCopy:
        read(i, op, soff, soff + cnt, "source");
        write(i, op, doff, doff + cnt + zt, "destination");
        break;

      case ConvOp::Kind::kInt:
      case ConvOp::Kind::kFloat: {
        const bool flt = op.kind == ConvOp::Kind::kFloat;
        if (!(flt ? valid_float_width(ssz) : valid_int_width(ssz))) {
          bad_width(i, op, "source element", ssz);
        }
        if (!(flt ? valid_float_width(dsz) : valid_int_width(dsz))) {
          bad_width(i, op, "destination element", dsz);
        }
        read(i, op, soff, soff + cnt * ssz, "source");
        write(i, op, doff, doff + cnt * dsz + zt, "destination");
        break;
      }

      case ConvOp::Kind::kZero:
        write(i, op, doff, doff + cnt, "zero-fill");
        break;

      case ConvOp::Kind::kDefault:
        if (!valid_int_width(dsz)) {
          bad_width(i, op, "default-value", dsz);
        }
        write(i, op, doff, doff + dsz, "default-value");
        break;

      case ConvOp::Kind::kString:
        ptr_slot(i, op);
        // The string scan is runtime-guarded: offset < body_len checked,
        // memchr bounded by body_len - off. Sound for every body length.
        cert.guarded_accesses++;
        write(i, op, doff, doff + sizeof(void*), "pointer");
        break;

      case ConvOp::Kind::kDynArray: {
        if (!valid_int_width(op.src_count_size)) {
          bad_width(i, op, "count-field", op.src_count_size);
        }
        read(i, op, op.src_count_offset,
             static_cast<std::uint64_t>(op.src_count_offset) +
                 op.src_count_size,
             "count-field");
        ptr_slot(i, op);
        // Element accesses are guarded by
        //   off <= body_len && n <= (body_len - off) / src_size
        // which is sound for every count in [0, 2^(8*count_size)) iff the
        // divisor is nonzero and the destination arena block (n * dst_size
        // bytes) covers what the copy loop writes.
        if (ssz == 0) {
          unprovable(i, op,
                     "element size 0 — the runtime overflow guard divides "
                     "by the element size, and a nonzero count with offset "
                     "== body length escapes the variable section");
        } else if (op.elem_class == pbio::FieldClass::kNested) {
          subplan(i, op);
        } else if (op.elem_class == pbio::FieldClass::kChar) {
          if (dsz == 0) {
            unprovable(i, op,
                       "char elements with destination size 0 — the arena "
                       "block holds n*0 bytes but the copy writes n");
          }
        } else if (op.swap || ssz != dsz) {
          const bool flt = op.elem_class == pbio::FieldClass::kFloat;
          if (!(flt ? valid_float_width(ssz) : valid_int_width(ssz))) {
            bad_width(i, op, "source element", ssz);
          }
          if (!(flt ? valid_float_width(dsz) : valid_int_width(dsz))) {
            bad_width(i, op, "destination element", dsz);
          }
        }
        cert.guarded_accesses++;
        write(i, op, doff, doff + sizeof(void*), "pointer");
        break;
      }

      case ConvOp::Kind::kNestedStatic:
        subplan(i, op);
        read(i, op, soff, soff + cnt * ssz, "element");
        write(i, op, doff, doff + cnt * dsz + zt, "element");
        break;
    }
  }

  /// Pairwise disjointness of the native write intervals (OMF402): with an
  /// overlap, the decoded value of the shared bytes depends on op order —
  /// no certificate can state what the plan computes. Out-of-bounds
  /// intervals were already reported; skip them so one defect yields one
  /// code.
  void check_write_overlap(const std::vector<ConvOp>& ops) {
    std::vector<AccessInterval> sorted;
    for (const AccessInterval& w : cert.writes) {
      if (w.begin < w.end && w.end <= cert.native_extent) {
        sorted.push_back(w);
      }
    }
    // std::sort with a total order (not stable_sort): same deterministic
    // result, but no temporary-buffer allocation — stable_sort's
    // get_temporary_buffer uses the nothrow operator new, which breaks
    // binaries that replace only the plain global new/delete pair.
    std::sort(sorted.begin(), sorted.end(),
              [](const AccessInterval& a, const AccessInterval& b) {
                if (a.begin != b.begin) return a.begin < b.begin;
                if (a.end != b.end) return a.end < b.end;
                return a.op_index < b.op_index;
              });
    for (std::size_t k = 1; k < sorted.size(); ++k) {
      const AccessInterval& a = sorted[k - 1];
      const AccessInterval& b = sorted[k];
      if (a.end > b.begin) {
        error(codes::kVerifyWriteOverlap,
              op_label(a.op_index, ops[a.op_index]) + " and " +
                  op_label(b.op_index, ops[b.op_index]) +
                  " both write native bytes " +
                  interval_str(b.begin, std::min(a.end, b.end)) +
                  " — the decoded value depends on op order; " +
                  counterexample());
      }
    }
  }
};

}  // namespace

bool BoundsCertificate::check() const {
  for (const AccessInterval& r : reads) {
    if (!r.guarded && (r.begin > r.end || r.end > wire_extent)) return false;
  }
  std::vector<AccessInterval> sorted;
  for (const AccessInterval& w : writes) {
    if (w.guarded) continue;
    if (w.begin > w.end || w.end > native_extent) return false;
    if (w.begin < w.end) sorted.push_back(w);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const AccessInterval& a, const AccessInterval& b) {
              return a.begin < b.begin;
            });
  for (std::size_t k = 1; k < sorted.size(); ++k) {
    if (sorted[k - 1].end > sorted[k].begin) return false;
  }
  return true;
}

std::string BoundsCertificate::to_string() const {
  std::string out = "certificate: " + plan + "\n";
  out += "  extents: wire struct " + std::to_string(wire_extent) +
         " B (minimum admissible body), native struct " +
         std::to_string(native_extent) + " B, pointer slot " +
         std::to_string(ptr_size) + " B\n";
  for (const AccessInterval& r : reads) {
    out += "  op#" + std::to_string(r.op_index) + " reads  " +
           interval_str(r.begin, r.end) + "\n";
  }
  for (const AccessInterval& w : writes) {
    out += "  op#" + std::to_string(w.op_index) + " writes " +
           interval_str(w.begin, w.end) + "\n";
  }
  out += "  proven: " + std::to_string(reads.size()) + " read(s) within [0, " +
         std::to_string(wire_extent) + "), " + std::to_string(writes.size()) +
         " write(s) within [0, " + std::to_string(native_extent) +
         ") pairwise disjoint, " + std::to_string(guarded_accesses) +
         " guarded variable-section access(es), " + std::to_string(subplans) +
         " subplan(s) certified\n";
  return out;
}

VerifyResult verify_ops(const PlanShape& shape) {
  Interp interp(shape);
  for (std::size_t i = 0; i < shape.ops.size(); ++i) {
    interp.walk(i, shape.ops[i]);
  }
  interp.check_write_overlap(shape.ops);

  VerifyResult result;
  result.diagnostics = std::move(interp.diags);
  if (!has_errors(result.diagnostics)) {
    result.certificate = std::move(interp.cert);
  }
  return result;
}

VerifyResult verify_plan(const pbio::ConversionPlan& plan) {
  PlanShape shape;
  shape.name = plan.wire().name() + " -> " + plan.native().name();
  shape.wire_extent = plan.wire().struct_size();
  shape.native_extent = plan.native().struct_size();
  shape.ptr_size = plan.wire().profile().pointer_size;
  shape.ops = plan.ops();
  // Formats are registry-owned; alias without taking ownership so the
  // verifier can label diagnostics with field names.
  shape.wire = pbio::FormatHandle(&plan.wire(), [](const pbio::Format*) {});
  return verify_ops(shape);
}

namespace {

bool parse_u64(std::string_view v, std::uint64_t& out) {
  const char* b = v.data();
  const char* e = b + v.size();
  auto [p, ec] = std::from_chars(b, e, out);
  return ec == std::errc() && p == e;
}

void parse_error(std::vector<Diagnostic>& diags, const std::string& file,
                 std::size_t line, std::string msg) {
  diags.push_back(Diagnostic{codes::kInputParse, Severity::kError,
                             std::move(msg), /*path=*/"", file, line});
}

}  // namespace

PlanShape parse_plan_text(std::string_view text, const std::string& filename,
                          std::vector<Diagnostic>& diagnostics) {
  PlanShape shape;
  bool have_plan = false;
  std::size_t lineno = 0;

  while (!text.empty()) {
    ++lineno;
    std::size_t nl = text.find('\n');
    std::string_view line = text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);

    std::vector<std::string_view> tokens;
    while (!line.empty()) {
      std::size_t start = line.find_first_not_of(" \t\r");
      if (start == std::string_view::npos) break;
      line.remove_prefix(start);
      std::size_t end = line.find_first_of(" \t\r");
      tokens.push_back(line.substr(0, end));
      line.remove_prefix(end == std::string_view::npos ? line.size() : end);
    }
    if (tokens.empty() || tokens[0].front() == '#') continue;

    if (tokens[0] == "plan") {
      if (tokens.size() < 2) {
        parse_error(diagnostics, filename, lineno, "plan directive needs a name");
        continue;
      }
      have_plan = true;
      shape.name = std::string(tokens[1]);
      for (std::size_t t = 2; t < tokens.size(); ++t) {
        std::string_view tok = tokens[t];
        std::size_t eq = tok.find('=');
        std::string_view key = tok.substr(0, eq);
        std::uint64_t val = 0;
        if (eq == std::string_view::npos ||
            !parse_u64(tok.substr(eq + 1), val)) {
          parse_error(diagnostics, filename, lineno,
                      "bad plan attribute '" + std::string(tok) + "'");
          continue;
        }
        if (key == "wire_size") {
          shape.wire_extent = val;
        } else if (key == "native_size") {
          shape.native_extent = val;
        } else if (key == "ptr_size") {
          shape.ptr_size = static_cast<std::uint8_t>(val);
        } else {
          parse_error(diagnostics, filename, lineno,
                      "unknown plan attribute '" + std::string(key) + "'");
        }
      }
      continue;
    }

    if (tokens[0] != "op") {
      parse_error(diagnostics, filename, lineno,
                  "expected 'plan', 'op', or comment; got '" +
                      std::string(tokens[0]) + "'");
      continue;
    }
    if (!have_plan) {
      parse_error(diagnostics, filename, lineno,
                  "op before the plan directive");
      continue;
    }
    if (tokens.size() < 2) {
      parse_error(diagnostics, filename, lineno, "op directive needs a kind");
      continue;
    }

    ConvOp op;
    std::string_view kind = tokens[1];
    if (kind == "copy") {
      op.kind = ConvOp::Kind::kCopy;
    } else if (kind == "int") {
      op.kind = ConvOp::Kind::kInt;
    } else if (kind == "float") {
      op.kind = ConvOp::Kind::kFloat;
    } else if (kind == "string") {
      op.kind = ConvOp::Kind::kString;
    } else if (kind == "dyn_array") {
      op.kind = ConvOp::Kind::kDynArray;
    } else if (kind == "nested_static") {
      op.kind = ConvOp::Kind::kNestedStatic;
    } else if (kind == "zero") {
      op.kind = ConvOp::Kind::kZero;
    } else if (kind == "default") {
      op.kind = ConvOp::Kind::kDefault;
    } else {
      parse_error(diagnostics, filename, lineno,
                  "unknown op kind '" + std::string(kind) + "'");
      continue;
    }

    bool ok = true;
    for (std::size_t t = 2; t < tokens.size(); ++t) {
      std::string_view tok = tokens[t];
      if (tok == "swap") {
        op.swap = true;
        continue;
      }
      if (tok == "sign") {
        op.sign_extend = true;
        continue;
      }
      if (tok == "signed_count") {
        op.src_count_signed = true;
        continue;
      }
      std::size_t eq = tok.find('=');
      if (eq == std::string_view::npos) {
        parse_error(diagnostics, filename, lineno,
                    "bad op attribute '" + std::string(tok) + "'");
        ok = false;
        continue;
      }
      std::string_view key = tok.substr(0, eq);
      std::string_view value = tok.substr(eq + 1);
      if (key == "elem") {
        if (value == "int") {
          op.elem_class = pbio::FieldClass::kInteger;
        } else if (value == "uint") {
          op.elem_class = pbio::FieldClass::kUnsigned;
        } else if (value == "float") {
          op.elem_class = pbio::FieldClass::kFloat;
        } else if (value == "char") {
          op.elem_class = pbio::FieldClass::kChar;
        } else if (value == "nested") {
          op.elem_class = pbio::FieldClass::kNested;
        } else {
          parse_error(diagnostics, filename, lineno,
                      "unknown elem class '" + std::string(value) + "'");
          ok = false;
        }
        continue;
      }
      std::uint64_t val = 0;
      if (!parse_u64(value, val)) {
        parse_error(diagnostics, filename, lineno,
                    "bad op attribute value '" + std::string(tok) + "'");
        ok = false;
        continue;
      }
      if (key == "src") {
        op.src_offset = static_cast<std::uint32_t>(val);
      } else if (key == "dst") {
        op.dst_offset = static_cast<std::uint32_t>(val);
      } else if (key == "src_size") {
        op.src_size = static_cast<std::uint32_t>(val);
      } else if (key == "dst_size") {
        op.dst_size = static_cast<std::uint32_t>(val);
      } else if (key == "count") {
        op.count = static_cast<std::uint32_t>(val);
      } else if (key == "zero_tail") {
        op.zero_tail = static_cast<std::uint32_t>(val);
      } else if (key == "count_off") {
        op.src_count_offset = static_cast<std::uint32_t>(val);
      } else if (key == "count_size") {
        op.src_count_size = static_cast<std::uint8_t>(val);
      } else if (key == "bits") {
        op.default_bits = val;
      } else {
        parse_error(diagnostics, filename, lineno,
                    "unknown op attribute '" + std::string(key) + "'");
        ok = false;
      }
    }
    if (ok) shape.ops.push_back(std::move(op));
  }

  if (!have_plan && !has_errors(diagnostics)) {
    parse_error(diagnostics, filename, lineno,
                "no plan directive in the file");
  }
  return shape;
}

void install_plan_verifier() {
  pbio::PlanCache::set_plan_verifier(
      +[](const pbio::ConversionPlan& plan) {
        VerifyResult result = verify_plan(plan);
        if (result.certified()) return;
        throw AuditError(plan.wire().name() + " -> " + plan.native().name(),
                         std::move(result.diagnostics));
      });
}

}  // namespace omf::analysis
