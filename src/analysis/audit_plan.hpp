// Static audit of compiled conversion plans.
//
// Two independent analyses over a ConversionPlan:
//
//  1. The lossiness lattice (warnings OMF201..OMF205): walks the wire and
//     native formats the plan reconciles, field by field — the same by-name
//     pairing plan compilation uses — and reports every conversion that can
//     lose information (integer narrowing, double→float, signed/unsigned
//     reinterpretation, static-array truncation, dropped wire fields) with
//     the exact dotted field path.
//
//  2. The bounds proof (error OMF210): walks the compiled op program and
//     proves that every read the plan performs against the wire struct
//     region stays inside the extent the decoder guarantees
//     (wire.struct_size(), which Decoder::decode checks against
//     body_length before executing the plan). Nested subplans are proved
//     against their element extents. Variable-section reads are excluded:
//     those are bounds-checked at execute() time against the actual body
//     length, which is unknowable statically.
#pragma once

#include <vector>

#include "analysis/diagnostics.hpp"
#include "pbio/convert.hpp"

namespace omf::analysis {

/// Audits one compiled plan: lossiness lattice + bounds proof.
std::vector<Diagnostic> audit_plan(const pbio::ConversionPlan& plan);

/// Lossiness lattice only, over a (wire, native) format pair — usable
/// before a plan is compiled (plan compilation can throw on irreconcilable
/// formats; this never does).
std::vector<Diagnostic> audit_conversion(const pbio::Format& wire,
                                         const pbio::Format& native);

}  // namespace omf::analysis
