// Static audit of XML Schema metadata documents.
//
// read_schema() and xml2wire already *reject* outright-invalid documents;
// these audits cover the gray zone — documents that register fine but mean
// something the author probably didn't intend (count-field surprises,
// silently ignored constructs, types resolved outside the document) — and
// turn a handful of late registration failures (forward references, string
// arrays) into early diagnostics with source line/column.
#pragma once

#include <vector>

#include "analysis/diagnostics.hpp"
#include "schema/model.hpp"
#include "xml/dom.hpp"

namespace omf::analysis {

/// Audits a parsed schema document (model-level checks: OMF301..OMF306,
/// OMF309). Positions come from the line/column the reader recorded.
std::vector<Diagnostic> audit_schema(const schema::SchemaDocument& doc);

/// Audits the raw DOM for constructs xml2wire silently ignores (OMF307):
/// xsd:attribute, xsd:choice, xsd:all, xsd:import/include/redefine, and
/// unrecognized children of schema/complexType/sequence elements. Runs on
/// the DOM (not the model) because the model never sees ignored nodes.
std::vector<Diagnostic> audit_schema_xml(const xml::Document& doc);

}  // namespace omf::analysis
