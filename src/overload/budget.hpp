// Process-wide memory budget: the accounting substrate of server-side
// graceful degradation.
//
// The transports' per-frame bounds (max_message_size) protect against one
// hostile frame; they do nothing against a thousand well-formed ones queued
// behind a stalled subscriber. MemoryBudget is the aggregate bound: every
// subsystem that buffers bytes on behalf of a peer — subscriber queues,
// DecodeArena pools, frame preallocation — charges its bytes here and
// releases them when the memory is reclaimed. The budget never allocates
// and never frees; it is bookkeeping only, so `used()` is an RSS *proxy*
// for peer-attributable memory, cheap enough to update from hot paths
// (two relaxed atomic RMWs).
//
// Degradation is hysteretic: crossing the high watermark flips the process
// into a degraded state (servers shed new connections, reject writes, serve
// stale metadata); the flag clears only once usage falls back below the low
// watermark, so a server hovering at the boundary does not flap.
//
// The default limit is 0 = unlimited: pure accounting, no behaviour change.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace omf::overload {

class MemoryBudget {
 public:
  static MemoryBudget& instance();

  /// Sets the budget in bytes; 0 = unlimited (accounting only).
  void set_limit(std::size_t bytes) noexcept;
  std::size_t limit() const noexcept {
    return limit_.load(std::memory_order_relaxed);
  }

  /// Watermarks as percentages of the limit (defaults 90 high / 70 low).
  /// `high` must be >= `low`; values are clamped to [1, 100].
  void set_watermarks(unsigned high_pct, unsigned low_pct) noexcept;

  /// Unconditional accounting (allocations that must not fail mid-operation,
  /// e.g. arena growth inside a decode). May push usage past the limit;
  /// pressure then surfaces through degraded() instead of a failure.
  void charge(std::size_t n) noexcept;

  /// Accounting that respects the limit: returns false (charging nothing)
  /// when the charge would exceed it. Use at admission-style sites that can
  /// reject cleanly (frame preallocation, queue enqueue).
  bool try_charge(std::size_t n) noexcept;

  void release(std::size_t n) noexcept;

  std::size_t used() const noexcept {
    return used_.load(std::memory_order_relaxed);
  }

  /// High-water mark of used() since process start (or reset_for_tests).
  std::size_t peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }

  /// True between crossing the high watermark and falling back below the
  /// low one. Always false with an unlimited budget.
  bool degraded() const noexcept {
    return degraded_.load(std::memory_order_relaxed);
  }

  /// Tests only: zeroes usage, peak, limit, and the degraded flag. Racing
  /// this against live charges is a test bug.
  void reset_for_tests() noexcept;

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

 private:
  MemoryBudget();

  void after_update(std::size_t used_now) noexcept;

  std::atomic<std::size_t> used_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::size_t> limit_{0};
  std::atomic<unsigned> high_pct_{90};
  std::atomic<unsigned> low_pct_{70};
  std::atomic<bool> degraded_{false};
};

/// RAII transient charge (frame preallocation, staging buffers): charges in
/// the constructor, releases in the destructor. `ok()` is false when the
/// budget refused the charge — the caller rejects the operation.
class ScopedCharge {
 public:
  explicit ScopedCharge(std::size_t n) noexcept
      : n_(n), ok_(MemoryBudget::instance().try_charge(n)) {}
  ~ScopedCharge() {
    if (ok_) MemoryBudget::instance().release(n_);
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  bool ok() const noexcept { return ok_; }

 private:
  std::size_t n_;
  bool ok_;
};

}  // namespace omf::overload
