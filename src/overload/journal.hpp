// Crash-recoverable append-only journal with snapshot compaction.
//
// The format service is the paper's "publicly known server": losing its
// registry on a restart strands every peer whose formats were published
// there. The Journal is the durability layer underneath it — generic over
// opaque byte records so other registries can reuse it:
//
//   <dir>/journal.log    append-only records, one per registration
//   <dir>/snapshot.bin   the compacted state, same record framing
//
// Records are framed as u32-LE length | payload | u32-LE CRC-32(payload).
// Recovery replays the snapshot, then the journal, stopping at the first
// incomplete or CRC-failing record: a torn tail (the process died mid-
// append) is tolerated by construction — the file is truncated back to the
// last good record so subsequent appends extend a clean log, never bury
// garbage mid-file. An append is atomic-on-recovery: either its CRC closes
// and replay sees it, or it is the torn tail and replay does not.
//
// Compaction rewrites the snapshot (write-to-temp, fsync, rename — the
// fs123 diskcache idiom) and truncates the journal; a crash at any point
// leaves either the old snapshot + full journal or the new snapshot +
// truncated journal, both of which replay to the same state.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "util/buffer.hpp"

namespace omf::overload {

class Journal {
 public:
  struct Options {
    /// compact() is recommended (wants_compaction()) past this many journal
    /// bytes; the owner decides when to act on it.
    std::size_t compact_threshold = 1u << 20;
    /// fsync after every append (crash-durable at the cost of latency).
    /// flush() always syncs regardless.
    bool fsync_each_append = true;
  };

  /// Opens (creating if needed) the journal under `dir`. Throws omf::Error
  /// on I/O failure.
  explicit Journal(std::filesystem::path dir);
  Journal(std::filesystem::path dir, Options options);
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  struct RecoverStats {
    std::size_t snapshot_records = 0;
    std::size_t journal_records = 0;
    bool torn_tail = false;  ///< a partial/corrupt tail record was discarded
  };

  /// Replays snapshot then journal through `apply`, truncating any torn
  /// tail. Call once, before the first append.
  RecoverStats recover(
      const std::function<void(std::span<const std::uint8_t>)>& apply);

  /// Appends one record (write + optional fsync). Thread-safe.
  void append(std::span<const std::uint8_t> record);

  /// True once the journal holds more than compact_threshold bytes.
  bool wants_compaction() const;

  /// Atomically replaces the snapshot with `records` and truncates the
  /// journal. `records` must be the complete current state.
  void compact(std::span<const Buffer> records);

  /// fsyncs the journal (graceful-shutdown flush).
  void flush();

  std::size_t journal_bytes() const;

  const std::filesystem::path& dir() const noexcept { return dir_; }
  std::filesystem::path journal_path() const { return dir_ / "journal.log"; }
  std::filesystem::path snapshot_path() const { return dir_ / "snapshot.bin"; }

 private:
  void open_log();

  std::filesystem::path dir_;
  Options options_;
  mutable std::mutex mutex_;
  int log_fd_ = -1;
  std::size_t log_bytes_ = 0;
};

}  // namespace omf::overload
