#include "overload/budget.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace omf::overload {

namespace {
struct BudgetMetrics {
  obs::Gauge& used;
  obs::Gauge& peak;
  obs::Gauge& limit;
  obs::Gauge& degraded;
  static const BudgetMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static BudgetMetrics m{reg.gauge("omf.budget.used_bytes"),
                           reg.gauge("omf.budget.peak_bytes"),
                           reg.gauge("omf.budget.limit_bytes"),
                           reg.gauge("omf.budget.degraded")};
    return m;
  }
};
}  // namespace

MemoryBudget& MemoryBudget::instance() {
  static MemoryBudget budget;
  return budget;
}

MemoryBudget::MemoryBudget() = default;

void MemoryBudget::set_limit(std::size_t bytes) noexcept {
  limit_.store(bytes, std::memory_order_relaxed);
  BudgetMetrics::get().limit.set(static_cast<std::int64_t>(bytes));
  after_update(used());
}

void MemoryBudget::set_watermarks(unsigned high_pct,
                                  unsigned low_pct) noexcept {
  high_pct = std::clamp(high_pct, 1u, 100u);
  low_pct = std::clamp(low_pct, 1u, high_pct);
  high_pct_.store(high_pct, std::memory_order_relaxed);
  low_pct_.store(low_pct, std::memory_order_relaxed);
  after_update(used());
}

void MemoryBudget::charge(std::size_t n) noexcept {
  std::size_t now = used_.fetch_add(n, std::memory_order_relaxed) + n;
  after_update(now);
}

bool MemoryBudget::try_charge(std::size_t n) noexcept {
  std::size_t limit = limit_.load(std::memory_order_relaxed);
  if (limit == 0) {
    charge(n);
    return true;
  }
  std::size_t cur = used_.load(std::memory_order_relaxed);
  for (;;) {
    if (cur + n > limit) return false;
    if (used_.compare_exchange_weak(cur, cur + n, std::memory_order_relaxed)) {
      after_update(cur + n);
      return true;
    }
  }
}

void MemoryBudget::release(std::size_t n) noexcept {
  // Saturate at zero rather than wrapping: a mismatched release is a bug,
  // but an absurd used() must not cascade into permanent brownout.
  std::size_t cur = used_.load(std::memory_order_relaxed);
  for (;;) {
    std::size_t next = cur >= n ? cur - n : 0;
    if (used_.compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
      after_update(next);
      return;
    }
  }
}

void MemoryBudget::after_update(std::size_t used_now) noexcept {
  std::size_t prev_peak = peak_.load(std::memory_order_relaxed);
  while (used_now > prev_peak &&
         !peak_.compare_exchange_weak(prev_peak, used_now,
                                      std::memory_order_relaxed)) {
  }
  std::size_t limit = limit_.load(std::memory_order_relaxed);
  bool degraded = degraded_.load(std::memory_order_relaxed);
  if (limit == 0) {
    if (degraded) degraded_.store(false, std::memory_order_relaxed);
    degraded = false;
  } else {
    // Hysteresis: trip above high, clear only below low.
    std::size_t high =
        limit / 100 * high_pct_.load(std::memory_order_relaxed) +
        limit % 100 * high_pct_.load(std::memory_order_relaxed) / 100;
    std::size_t low = limit / 100 * low_pct_.load(std::memory_order_relaxed) +
                      limit % 100 * low_pct_.load(std::memory_order_relaxed) /
                          100;
    if (!degraded && used_now >= high) {
      degraded_.store(true, std::memory_order_relaxed);
      degraded = true;
    } else if (degraded && used_now < low) {
      degraded_.store(false, std::memory_order_relaxed);
      degraded = false;
    }
  }
  const BudgetMetrics& m = BudgetMetrics::get();
  m.used.set(static_cast<std::int64_t>(used_now));
  m.peak.set(static_cast<std::int64_t>(peak_.load(std::memory_order_relaxed)));
  m.degraded.set(degraded ? 1 : 0);
}

void MemoryBudget::reset_for_tests() noexcept {
  used_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
  limit_.store(0, std::memory_order_relaxed);
  high_pct_.store(90, std::memory_order_relaxed);
  low_pct_.store(70, std::memory_order_relaxed);
  degraded_.store(false, std::memory_order_relaxed);
  const BudgetMetrics& m = BudgetMetrics::get();
  m.used.set(0);
  m.peak.set(0);
  m.limit.set(0);
  m.degraded.set(0);
}

}  // namespace omf::overload
