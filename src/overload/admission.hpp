// Per-peer admission control: token buckets and connection caps.
//
// PR 3 made *clients* resilient; this is the mirror image for servers. Any
// peer in the paper's deployment model can dial the publicly known metadata
// server or the backbone and start pushing: admission control is the first
// gate a connection or message crosses, before any allocation or
// registration happens on its behalf. Quotas are token buckets (msgs/s and
// bytes/s with a configurable burst) keyed by peer identity plus per-peer
// and total connection caps.
//
// Rejections are structured, lint-style: every decision carries a stable
// OMF5xx code and a one-line human detail, the same shape as the analyzer
// diagnostics (OMF0xx–4xx) so operators grep one namespace. The codes:
//
//   OMF500  process degraded (memory budget brownout) — shed, retry later
//   OMF501  per-peer connection cap exceeded
//   OMF502  total connection cap exceeded
//   OMF503  per-peer message-rate quota exceeded
//   OMF504  per-peer byte-rate quota exceeded
//
// Decisions are cheap (one mutex-guarded map probe; admission sits on
// connection setup and per-frame server paths, not on the decode hot path)
// and deterministic under a test clock via set_now_fn.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace omf::overload {

struct AdmissionLimits {
  std::size_t max_connections_per_peer = 0;  ///< 0 = unlimited
  std::size_t max_connections_total = 0;     ///< 0 = unlimited
  double msgs_per_sec = 0;                   ///< 0 = unlimited
  double msgs_burst = 0;                     ///< bucket depth; 0 = 1s of rate
  double bytes_per_sec = 0;                  ///< 0 = unlimited
  double bytes_burst = 0;                    ///< bucket depth; 0 = 1s of rate

  bool unlimited() const noexcept {
    return max_connections_per_peer == 0 && max_connections_total == 0 &&
           msgs_per_sec == 0 && bytes_per_sec == 0;
  }
};

/// Outcome of an admission check. `code`/`detail` are set only on rejection;
/// `code` is a stable "OMF5xx" string.
struct Admission {
  bool admitted = true;
  const char* code = nullptr;
  std::string detail;

  explicit operator bool() const noexcept { return admitted; }
};

class AdmissionController {
 public:
  AdmissionController() = default;
  explicit AdmissionController(AdmissionLimits limits)
      : limits_(std::move(limits)) {}
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  void set_limits(const AdmissionLimits& limits) {
    std::lock_guard lock(mutex_);
    limits_ = limits;
  }

  /// Gate for a new connection from `peer`. An admitted connection MUST be
  /// paired with release_connection when it ends.
  Admission admit_connection(const std::string& peer);
  void release_connection(const std::string& peer);

  /// Gate for one message of `bytes` from `peer` (token buckets only; call
  /// on the server's per-frame receive path).
  Admission admit_message(const std::string& peer, std::size_t bytes);

  std::size_t active_connections() const {
    std::lock_guard lock(mutex_);
    return total_connections_;
  }

  /// Test clock: monotonic nanoseconds. nullptr restores the real clock.
  void set_now_fn(std::uint64_t (*now_ns)()) {
    std::lock_guard lock(mutex_);
    now_ns_ = now_ns;
  }

 private:
  struct Peer {
    double msg_tokens = 0;
    double byte_tokens = 0;
    std::uint64_t refill_ns = 0;
    std::size_t connections = 0;
    bool buckets_primed = false;
  };

  std::uint64_t now() const;
  void refill(Peer& peer, std::uint64_t now_ns) const;

  mutable std::mutex mutex_;
  AdmissionLimits limits_;
  std::unordered_map<std::string, Peer> peers_;
  std::size_t total_connections_ = 0;
  std::uint64_t (*now_ns_)() = nullptr;
};

}  // namespace omf::overload
