// Process health for readiness probes: ok / degraded / draining.
//
// One process-wide tri-state, derived rather than stored where possible:
// "draining" is set explicitly by graceful shutdown (servers have stopped
// accepting and are flushing queues/journals); "degraded" comes straight
// from the MemoryBudget's hysteretic watermark state. http::Server exposes
// this as GET /healthz — "ok" with 200, "degraded"/"draining" with 503 —
// so a load balancer steers new clients away while existing ones drain.
#pragma once

#include <atomic>

#include "overload/budget.hpp"

namespace omf::overload {

enum class Health {
  kOk = 0,
  kDegraded = 1,
  kDraining = 2,
};

inline const char* health_name(Health h) noexcept {
  switch (h) {
    case Health::kOk:
      return "ok";
    case Health::kDegraded:
      return "degraded";
    case Health::kDraining:
      return "draining";
  }
  return "unknown";
}

class HealthMonitor {
 public:
  static HealthMonitor& instance();

  /// Draining wins over degraded; degraded tracks the memory budget.
  Health state() const noexcept {
    if (draining_.load(std::memory_order_relaxed)) return Health::kDraining;
    if (MemoryBudget::instance().degraded()) return Health::kDegraded;
    return Health::kOk;
  }

  void set_draining(bool draining) noexcept;
  bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

 private:
  HealthMonitor() = default;
  std::atomic<bool> draining_{false};
};

}  // namespace omf::overload
