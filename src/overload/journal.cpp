#include "overload/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace omf::overload {

namespace {

using fsio::fsync_dir;
using fsio::throw_errno;
using fsio::write_fully;

struct JournalMetrics {
  obs::Counter& appends;
  obs::Counter& compactions;
  obs::Counter& recovered;
  obs::Counter& torn_tails;
  obs::Gauge& bytes;
  static const JournalMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static JournalMetrics m{reg.counter("omf.journal.appends"),
                            reg.counter("omf.journal.compactions"),
                            reg.counter("omf.journal.recovered_records"),
                            reg.counter("omf.journal.torn_tails"),
                            reg.gauge("omf.journal.bytes")};
    return m;
  }
};

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::vector<std::uint8_t> out;
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return out;
    throw_errno("journal: open " + path.string());
  }
  std::uint8_t buf[1 << 16];
  for (;;) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("journal: read " + path.string());
    }
    if (r == 0) break;
    out.insert(out.end(), buf, buf + r);
  }
  ::close(fd);
  return out;
}

/// Walks `data` record by record, calling `apply` for each intact one.
/// Returns the byte offset just past the last intact record; `torn` is set
/// when trailing bytes had to be discarded (partial or CRC-failing tail).
std::size_t replay_records(
    std::span<const std::uint8_t> data,
    const std::function<void(std::span<const std::uint8_t>)>& apply,
    std::size_t* count, bool* torn) {
  std::size_t off = 0;
  while (data.size() - off >= 8) {
    std::uint32_t len = load_le<std::uint32_t>(data.data() + off);
    if (data.size() - off - 8 < len) break;  // partial payload: torn tail
    const std::uint8_t* payload = data.data() + off + 4;
    std::uint32_t stored = load_le<std::uint32_t>(payload + len);
    if (crc32(payload, len) != stored) break;  // corrupt tail record
    apply({payload, len});
    ++*count;
    off += 8 + len;
  }
  *torn = off != data.size();
  return off;
}

}  // namespace

Journal::Journal(std::filesystem::path dir)
    : Journal(std::move(dir), Options()) {}

Journal::Journal(std::filesystem::path dir, Options options)
    : dir_(std::move(dir)), options_(options) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw Error("journal: cannot create directory " + dir_.string() + ": " +
                ec.message());
  }
  open_log();
}

Journal::~Journal() {
  if (log_fd_ >= 0) ::close(log_fd_);
}

void Journal::open_log() {
  log_fd_ = ::open(journal_path().c_str(),
                   O_CREAT | O_RDWR | O_APPEND | O_CLOEXEC, 0644);
  if (log_fd_ < 0) throw_errno("journal: open " + journal_path().string());
  // Make the file's *name* durable too: the first fsynced append is useless
  // if the journal's directory entry itself vanishes on power loss.
  fsync_dir(dir_);
  struct stat st{};
  if (::fstat(log_fd_, &st) != 0) {
    throw_errno("journal: stat " + journal_path().string());
  }
  log_bytes_ = static_cast<std::size_t>(st.st_size);
  JournalMetrics::get().bytes.set(static_cast<std::int64_t>(log_bytes_));
}

Journal::RecoverStats Journal::recover(
    const std::function<void(std::span<const std::uint8_t>)>& apply) {
  std::lock_guard lock(mutex_);
  RecoverStats stats;

  // Snapshot first. It was written atomically (temp + rename), so a torn
  // snapshot means an interrupted *write* whose rename never happened —
  // still, parse defensively and take what is intact.
  std::vector<std::uint8_t> snap = read_file(snapshot_path());
  bool snap_torn = false;
  replay_records(snap, apply, &stats.snapshot_records, &snap_torn);

  std::vector<std::uint8_t> log = read_file(journal_path());
  bool log_torn = false;
  std::size_t good =
      replay_records(log, apply, &stats.journal_records, &log_torn);
  stats.torn_tail = log_torn || snap_torn;
  if (log_torn) {
    // Truncate back to the last intact record so future appends extend a
    // clean log instead of burying the partial write mid-file.
    if (::ftruncate(log_fd_, static_cast<off_t>(good)) != 0) {
      throw_errno("journal: truncate torn tail");
    }
    log_bytes_ = good;
    JournalMetrics::get().torn_tails.add();
    OMF_LOG_WARN("journal", "discarded torn tail (",
                 log.size() - good, " bytes) in ", journal_path().string());
  } else {
    log_bytes_ = log.size();
  }
  const JournalMetrics& m = JournalMetrics::get();
  m.recovered.add(stats.snapshot_records + stats.journal_records);
  m.bytes.set(static_cast<std::int64_t>(log_bytes_));
  return stats;
}

void Journal::append(std::span<const std::uint8_t> record) {
  std::vector<std::uint8_t> frame(8 + record.size());
  store_le<std::uint32_t>(frame.data(),
                          static_cast<std::uint32_t>(record.size()));
  std::memcpy(frame.data() + 4, record.data(), record.size());
  store_le<std::uint32_t>(frame.data() + 4 + record.size(),
                          crc32(record.data(), record.size()));
  std::lock_guard lock(mutex_);
  write_fully(log_fd_, frame.data(), frame.size(), "journal: append");
  if (options_.fsync_each_append) ::fdatasync(log_fd_);
  log_bytes_ += frame.size();
  const JournalMetrics& m = JournalMetrics::get();
  m.appends.add();
  m.bytes.set(static_cast<std::int64_t>(log_bytes_));
}

bool Journal::wants_compaction() const {
  std::lock_guard lock(mutex_);
  return log_bytes_ > options_.compact_threshold;
}

void Journal::compact(std::span<const Buffer> records) {
  std::lock_guard lock(mutex_);
  std::filesystem::path tmp = dir_ / "snapshot.tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("journal: open " + tmp.string());
  try {
    for (const Buffer& record : records) {
      std::uint8_t header[4];
      store_le<std::uint32_t>(header,
                              static_cast<std::uint32_t>(record.size()));
      write_fully(fd, header, 4, "journal: snapshot write");
      write_fully(fd, record.data(), record.size(), "journal: snapshot write");
      std::uint8_t trailer[4];
      store_le<std::uint32_t>(trailer, crc32(record.data(), record.size()));
      write_fully(fd, trailer, 4, "journal: snapshot write");
    }
    if (::fsync(fd) != 0) throw_errno("journal: snapshot fsync");
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  std::error_code ec;
  std::filesystem::rename(tmp, snapshot_path(), ec);
  if (ec) {
    throw Error("journal: rename snapshot: " + ec.message());
  }
  fsync_dir(dir_);
  // The journal's records are now all in the snapshot; truncate it. A crash
  // before this point replays old snapshot + full journal — same state.
  if (::ftruncate(log_fd_, 0) != 0) throw_errno("journal: truncate");
  ::fdatasync(log_fd_);
  log_bytes_ = 0;
  const JournalMetrics& m = JournalMetrics::get();
  m.compactions.add();
  m.bytes.set(0);
}

void Journal::flush() {
  std::lock_guard lock(mutex_);
  if (log_fd_ >= 0) ::fsync(log_fd_);
}

std::size_t Journal::journal_bytes() const {
  std::lock_guard lock(mutex_);
  return log_bytes_;
}

}  // namespace omf::overload
