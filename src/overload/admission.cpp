#include "overload/admission.hpp"

#include <algorithm>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace omf::overload {

namespace {
struct AdmissionMetrics {
  obs::Counter& admitted;
  obs::Counter& rejected_connections;
  obs::Counter& rejected_rate;
  obs::Counter& rejected_bytes;
  obs::Gauge& connections;
  static const AdmissionMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static AdmissionMetrics m{
        reg.counter("omf.admission.admitted"),
        reg.counter("omf.admission.rejected.connections"),
        reg.counter("omf.admission.rejected.rate"),
        reg.counter("omf.admission.rejected.bytes"),
        reg.gauge("omf.admission.connections")};
    return m;
  }
};

Admission reject(const char* code, std::string detail) {
  Admission out;
  out.admitted = false;
  out.code = code;
  out.detail = std::move(detail);
  // Every admission reject lands in the flight recorder: after a crash the
  // postmortem shows who was being shed in the final seconds.
  obs::flight_record("admission", out.detail);
  return out;
}
}  // namespace

std::uint64_t AdmissionController::now() const {
  return now_ns_ != nullptr ? now_ns_() : obs::monotonic_ns();
}

void AdmissionController::refill(Peer& peer, std::uint64_t now_ns) const {
  double burst_msgs =
      limits_.msgs_burst > 0 ? limits_.msgs_burst : limits_.msgs_per_sec;
  double burst_bytes =
      limits_.bytes_burst > 0 ? limits_.bytes_burst : limits_.bytes_per_sec;
  if (!peer.buckets_primed) {
    // A new peer starts with a full bucket: a burst up to the depth is fine,
    // sustained traffic is what the rate bounds.
    peer.msg_tokens = burst_msgs;
    peer.byte_tokens = burst_bytes;
    peer.refill_ns = now_ns;
    peer.buckets_primed = true;
    return;
  }
  double dt = static_cast<double>(now_ns - peer.refill_ns) * 1e-9;
  if (dt <= 0) return;
  peer.msg_tokens =
      std::min(burst_msgs, peer.msg_tokens + dt * limits_.msgs_per_sec);
  peer.byte_tokens =
      std::min(burst_bytes, peer.byte_tokens + dt * limits_.bytes_per_sec);
  peer.refill_ns = now_ns;
}

Admission AdmissionController::admit_connection(const std::string& peer) {
  const AdmissionMetrics& m = AdmissionMetrics::get();
  std::lock_guard lock(mutex_);
  if (limits_.max_connections_total != 0 &&
      total_connections_ >= limits_.max_connections_total) {
    m.rejected_connections.add();
    return reject("OMF502",
                  "OMF502: connection cap reached (" +
                      std::to_string(limits_.max_connections_total) +
                      " total); peer " + peer + " shed");
  }
  Peer& state = peers_[peer];
  if (limits_.max_connections_per_peer != 0 &&
      state.connections >= limits_.max_connections_per_peer) {
    m.rejected_connections.add();
    return reject("OMF501",
                  "OMF501: peer " + peer + " exceeded its connection cap (" +
                      std::to_string(limits_.max_connections_per_peer) + ")");
  }
  ++state.connections;
  ++total_connections_;
  m.admitted.add();
  m.connections.set(static_cast<std::int64_t>(total_connections_));
  return Admission{};
}

void AdmissionController::release_connection(const std::string& peer) {
  std::lock_guard lock(mutex_);
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.connections == 0) return;
  --it->second.connections;
  if (total_connections_ > 0) --total_connections_;
  AdmissionMetrics::get().connections.set(
      static_cast<std::int64_t>(total_connections_));
  // Peers with no connections and full-by-construction buckets would leak
  // one map entry per historical peer; keep entries only while they carry
  // state that matters (live connections or a draining bucket).
  if (it->second.connections == 0 && limits_.msgs_per_sec == 0 &&
      limits_.bytes_per_sec == 0) {
    peers_.erase(it);
  }
}

Admission AdmissionController::admit_message(const std::string& peer,
                                             std::size_t bytes) {
  const AdmissionMetrics& m = AdmissionMetrics::get();
  std::lock_guard lock(mutex_);
  if (limits_.msgs_per_sec == 0 && limits_.bytes_per_sec == 0) {
    return Admission{};
  }
  Peer& state = peers_[peer];
  refill(state, now());
  if (limits_.msgs_per_sec > 0 && state.msg_tokens < 1.0) {
    m.rejected_rate.add();
    return reject("OMF503",
                  "OMF503: peer " + peer + " exceeded " +
                      std::to_string(static_cast<long long>(
                          limits_.msgs_per_sec)) +
                      " msgs/s quota");
  }
  if (limits_.bytes_per_sec > 0 &&
      state.byte_tokens < static_cast<double>(bytes)) {
    m.rejected_bytes.add();
    return reject("OMF504",
                  "OMF504: peer " + peer + " exceeded " +
                      std::to_string(static_cast<long long>(
                          limits_.bytes_per_sec)) +
                      " bytes/s quota");
  }
  if (limits_.msgs_per_sec > 0) state.msg_tokens -= 1.0;
  if (limits_.bytes_per_sec > 0) {
    state.byte_tokens -= static_cast<double>(bytes);
  }
  m.admitted.add();
  return Admission{};
}

}  // namespace omf::overload
