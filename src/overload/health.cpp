#include "overload/health.hpp"

#include "obs/metrics.hpp"

namespace omf::overload {

HealthMonitor& HealthMonitor::instance() {
  static HealthMonitor monitor;
  return monitor;
}

void HealthMonitor::set_draining(bool draining) noexcept {
  draining_.store(draining, std::memory_order_relaxed);
  static obs::Gauge& gauge =
      obs::MetricsRegistry::instance().gauge("omf.health.draining");
  gauge.set(draining ? 1 : 0);
}

}  // namespace omf::overload
