#include "xml/dom.hpp"

#include "util/strings.hpp"

namespace omf::xml {

QName split_qname(std::string_view name) noexcept {
  std::size_t colon = name.find(':');
  if (colon == std::string_view::npos) {
    return {std::string_view{}, name};
  }
  return {name.substr(0, colon), name.substr(colon + 1)};
}

std::optional<std::string_view> Node::attribute(std::string_view name) const {
  for (const Attribute& a : attrs_) {
    if (a.name == name) return std::string_view(a.value);
  }
  return std::nullopt;
}

std::string_view Node::attribute_or(std::string_view name,
                                    std::string_view fallback) const {
  auto v = attribute(name);
  return v ? *v : fallback;
}

void Node::set_attribute(std::string name, std::string value) {
  for (Attribute& a : attrs_) {
    if (a.name == name) {
      a.value = std::move(value);
      return;
    }
  }
  attrs_.push_back(Attribute{std::move(name), std::move(value)});
}

Node& Node::append_child(std::unique_ptr<Node> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return *children_.back();
}

Node& Node::append_element(std::string name) {
  auto node = std::make_unique<Node>(NodeKind::kElement);
  node->set_name(std::move(name));
  return append_child(std::move(node));
}

Node& Node::append_text(std::string text) {
  auto node = std::make_unique<Node>(NodeKind::kText);
  node->set_text(std::move(text));
  return append_child(std::move(node));
}

const Node* Node::first_child_element(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->is_element() && c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const Node*> Node::child_elements(std::string_view name) const {
  std::vector<const Node*> out;
  for (const auto& c : children_) {
    if (c->is_element() && c->name() == name) out.push_back(c.get());
  }
  return out;
}

std::vector<const Node*> Node::child_elements() const {
  std::vector<const Node*> out;
  for (const auto& c : children_) {
    if (c->is_element()) out.push_back(c.get());
  }
  return out;
}

const Node* Node::first_child_local(std::string_view local_name) const {
  for (const auto& c : children_) {
    if (c->is_element() && c->local_name() == local_name) return c.get();
  }
  return nullptr;
}

std::vector<const Node*> Node::children_local(
    std::string_view local_name) const {
  std::vector<const Node*> out;
  for (const auto& c : children_) {
    if (c->is_element() && c->local_name() == local_name) out.push_back(c.get());
  }
  return out;
}

std::string Node::text_content() const {
  std::string out;
  if (is_text()) {
    out = text_;
    return out;
  }
  for (const auto& c : children_) {
    if (c->is_text()) {
      out += c->text();
    } else if (c->is_element()) {
      out += c->text_content();
    }
  }
  return out;
}

std::optional<std::string_view> Node::resolve_namespace(
    std::string_view prefix) const {
  // "xml" is bound by the spec without declaration.
  if (prefix == "xml") {
    return std::string_view("http://www.w3.org/XML/1998/namespace");
  }
  for (const Node* n = this; n != nullptr; n = n->parent_) {
    if (!n->is_element()) continue;
    for (const Attribute& a : n->attrs_) {
      if (prefix.empty()) {
        if (a.name == "xmlns") return std::string_view(a.value);
      } else {
        QName q = split_qname(a.name);
        if (q.prefix == "xmlns" && q.local == prefix) {
          return std::string_view(a.value);
        }
      }
    }
  }
  if (prefix.empty()) {
    // No default namespace in scope: element is in no namespace.
    return std::string_view{};
  }
  return std::nullopt;
}

std::string_view Node::namespace_uri() const {
  QName q = split_qname(name_);
  auto uri = resolve_namespace(q.prefix);
  return uri ? *uri : std::string_view{};
}

std::unique_ptr<Node> make_element(std::string name) {
  auto node = std::make_unique<Node>(NodeKind::kElement);
  node->set_name(std::move(name));
  return node;
}

}  // namespace omf::xml
