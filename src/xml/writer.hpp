// XML serializer: turns a DOM tree back into text, with correct escaping in
// both text content and attribute values. Round-trips with the parser (the
// property tests rely on this).
#pragma once

#include <string>

#include "xml/dom.hpp"

namespace omf::xml {

struct WriteOptions {
  /// Emit an `<?xml version="1.0"?>` declaration.
  bool declaration = true;
  /// Indent nested elements by `indent` spaces per level; 0 writes the
  /// document on a single line with no inserted whitespace.
  int indent = 2;
};

/// Serializes a whole document.
std::string write(const Document& doc, const WriteOptions& options = {});

/// Serializes a single element subtree (no declaration).
std::string write(const Node& element, const WriteOptions& options = {});

/// Escapes text content: & < > (quotes are left alone in content).
std::string escape_text(std::string_view text);

/// Escapes an attribute value for double-quoted output: & < > " plus
/// tab/newline (as character references, preserving them across the
/// attribute-value normalization the parser applies).
std::string escape_attribute(std::string_view value);

}  // namespace omf::xml
