// Non-validating XML 1.0 parser.
//
// Covers the language subset any metadata document needs — elements,
// attributes (both quote styles), namespaces (declaration syntax; resolution
// lives in the DOM), character and predefined entity references, CDATA,
// comments, processing instructions, an XML declaration, and a DOCTYPE
// declaration that is recognized and skipped (external DTDs are not
// fetched; this parser is non-validating by design, like expat).
//
// Well-formedness is enforced: mismatched tags, duplicate attributes,
// multiple roots, stray '<' in attribute values, bad entity syntax, and
// unterminated constructs all raise ParseError with a 1-based line:column.
#pragma once

#include <string_view>

#include "util/error.hpp"
#include "xml/dom.hpp"

namespace omf::xml {

struct ParseOptions {
  /// Drop text nodes that contain only whitespace (typical for "pretty"
  /// metadata documents, where inter-element whitespace is noise).
  bool discard_whitespace_text = true;
  /// Keep comment nodes in the tree (off: comments are skipped entirely).
  bool keep_comments = false;
  /// Maximum element nesting depth; guards against stack exhaustion from
  /// adversarial input.
  std::size_t max_depth = 256;
};

/// Parses a complete document from text. Throws omf::ParseError on any
/// lexical or well-formedness violation.
Document parse(std::string_view text, const ParseOptions& options = {});

/// Parses the file at `path` (throws omf::Error if unreadable).
Document parse_file(const std::string& path, const ParseOptions& options = {});

}  // namespace omf::xml
