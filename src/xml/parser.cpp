#include "xml/parser.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/strings.hpp"
#include "xml/sax.hpp"

namespace omf::xml {

namespace {

bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

bool is_name_start(unsigned char c) noexcept {
  return std::isalpha(c) || c == '_' || c == ':' || c >= 0x80;
}

bool is_name_char(unsigned char c) noexcept {
  return is_name_start(c) || std::isdigit(c) || c == '-' || c == '.';
}

/// Character cursor with line/column tracking for error messages.
class Cursor {
public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool at_end() const noexcept { return pos_ >= text_.size(); }
  char peek() const noexcept { return at_end() ? '\0' : text_[pos_]; }
  char peek_at(std::size_t ahead) const noexcept {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  char advance() noexcept {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  bool consume(char c) noexcept {
    if (peek() == c) {
      advance();
      return true;
    }
    return false;
  }

  bool consume(std::string_view literal) noexcept {
    if (text_.substr(pos_).substr(0, literal.size()) == literal) {
      for (std::size_t i = 0; i < literal.size(); ++i) advance();
      return true;
    }
    return false;
  }

  void skip_space() noexcept {
    while (!at_end() && is_space(peek())) advance();
  }

  std::size_t line() const noexcept { return line_; }
  std::size_t column() const noexcept { return column_; }

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(what, line_, column_);
  }

private:
  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

/// The event-emitting parser core. Document structure (DOM vs streaming)
/// is the handler's business; well-formedness is enforced here.
class Parser {
public:
  Parser(std::string_view text, SaxHandler& handler,
         const ParseOptions& options)
      : cur_(text), handler_(handler), options_(options) {}

  void parse_document() {
    handler_.on_start_document();
    parse_prolog();
    if (cur_.at_end() || cur_.peek() != '<') {
      cur_.fail("expected root element");
    }
    parse_element(0);
    // Trailing misc: whitespace, comments, PIs only.
    for (;;) {
      cur_.skip_space();
      if (cur_.at_end()) break;
      if (cur_.consume("<!--")) {
        parse_comment_body();
      } else if (cur_.peek() == '<' && cur_.peek_at(1) == '?') {
        parse_pi();
      } else {
        cur_.fail("content after root element");
      }
    }
    handler_.on_end_document();
  }

  /// XML declaration data (filled if the document has one).
  struct Declaration {
    std::string version = "1.0";
    std::string encoding;
    bool standalone_declared = false;
    bool standalone = false;
  };
  const Declaration& declaration() const noexcept { return decl_; }

private:
  void parse_prolog() {
    if (cur_.consume("<?xml")) {
      if (!is_space(cur_.peek())) {
        // A PI whose target merely starts with "xml" is not allowed here.
        cur_.fail("malformed XML declaration");
      }
      parse_xml_decl();
    }
    bool seen_doctype = false;
    for (;;) {
      cur_.skip_space();
      if (cur_.consume("<!--")) {
        parse_comment_body();
        continue;
      }
      if (cur_.peek() == '<' && cur_.peek_at(1) == '?') {
        parse_pi();
        continue;
      }
      if (cur_.consume("<!DOCTYPE")) {
        if (seen_doctype) cur_.fail("multiple DOCTYPE declarations");
        seen_doctype = true;
        skip_doctype();
        continue;
      }
      break;
    }
  }

  void parse_xml_decl() {
    for (;;) {
      cur_.skip_space();
      if (cur_.consume("?>")) return;
      if (cur_.at_end()) cur_.fail("unterminated XML declaration");
      std::string name = read_name("attribute name in XML declaration");
      cur_.skip_space();
      if (!cur_.consume('=')) cur_.fail("expected '=' in XML declaration");
      cur_.skip_space();
      std::string value = read_quoted_value();
      if (name == "version") {
        decl_.version = value;
      } else if (name == "encoding") {
        decl_.encoding = value;
      } else if (name == "standalone") {
        decl_.standalone_declared = true;
        decl_.standalone = (value == "yes");
      } else {
        cur_.fail("unknown XML declaration attribute '" + name + "'");
      }
    }
  }

  void skip_doctype() {
    // Skip until the matching '>', tolerating an internal subset in [...].
    int bracket_depth = 0;
    while (!cur_.at_end()) {
      char c = cur_.advance();
      if (c == '[') {
        ++bracket_depth;
      } else if (c == ']') {
        if (bracket_depth > 0) --bracket_depth;
      } else if (c == '>' && bracket_depth == 0) {
        return;
      }
    }
    cur_.fail("unterminated DOCTYPE declaration");
  }

  void parse_comment_body() {
    std::string comment = read_until("-->", "unterminated comment");
    if (comment.find("--") != std::string::npos) {
      cur_.fail("'--' not allowed inside comment");
    }
    handler_.on_comment(comment);
  }

  void parse_pi() {
    cur_.consume("<?");
    std::string target = read_name("processing instruction target");
    if (iequals(target, "xml")) {
      cur_.fail("XML declaration only allowed at document start");
    }
    std::string content;
    if (is_space(cur_.peek())) {
      cur_.skip_space();
      content = read_until("?>", "unterminated processing instruction");
    } else if (!cur_.consume("?>")) {
      cur_.fail("malformed processing instruction");
    }
    handler_.on_processing_instruction(target, content);
  }

  void parse_element(std::size_t depth) {
    if (depth > options_.max_depth) {
      cur_.fail("element nesting exceeds maximum depth of " +
                std::to_string(options_.max_depth));
    }
    std::size_t start_line = cur_.line();
    std::size_t start_column = cur_.column();
    cur_.consume('<');
    std::string name = read_name("element name");
    std::vector<Attribute> attrs;

    for (;;) {
      bool had_space = is_space(cur_.peek());
      cur_.skip_space();
      if (cur_.consume("/>")) {
        handler_.on_position(start_line, start_column);
        handler_.on_start_element(name, attrs);
        handler_.on_end_element(name);
        return;
      }
      if (cur_.consume('>')) {
        break;
      }
      if (cur_.at_end()) cur_.fail("unterminated start tag <" + name);
      if (!had_space) cur_.fail("expected whitespace before attribute");
      std::string attr_name = read_name("attribute name");
      for (const Attribute& a : attrs) {
        if (a.name == attr_name) {
          cur_.fail("duplicate attribute '" + attr_name + "'");
        }
      }
      cur_.skip_space();
      if (!cur_.consume('=')) {
        cur_.fail("expected '=' after attribute name '" + attr_name + "'");
      }
      cur_.skip_space();
      attrs.push_back(Attribute{std::move(attr_name), read_attribute_value()});
    }
    handler_.on_position(start_line, start_column);
    handler_.on_start_element(name, attrs);

    std::string pending_text;
    auto flush_text = [&] {
      if (pending_text.empty()) return;
      bool all_space = true;
      for (char c : pending_text) {
        if (!is_space(c)) {
          all_space = false;
          break;
        }
      }
      if (!(all_space && options_.discard_whitespace_text)) {
        handler_.on_text(pending_text);
      }
      pending_text.clear();
    };

    for (;;) {
      if (cur_.at_end()) {
        cur_.fail("unterminated element <" + name + ">");
      }
      char c = cur_.peek();
      if (c == '<') {
        if (cur_.peek_at(1) == '/') {
          flush_text();
          cur_.consume("</");
          std::string end_name = read_name("end tag name");
          cur_.skip_space();
          if (!cur_.consume('>')) cur_.fail("malformed end tag");
          if (end_name != name) {
            cur_.fail("mismatched end tag: expected </" + name + ">, got </" +
                      end_name + ">");
          }
          handler_.on_end_element(name);
          return;
        }
        if (cur_.consume("<!--")) {
          flush_text();
          parse_comment_body();
          continue;
        }
        if (cur_.consume("<![CDATA[")) {
          flush_text();
          handler_.on_cdata(read_until("]]>", "unterminated CDATA section"));
          continue;
        }
        if (cur_.peek_at(1) == '?') {
          flush_text();
          parse_pi();
          continue;
        }
        if (cur_.peek_at(1) == '!') {
          cur_.fail("unexpected markup declaration in content");
        }
        flush_text();
        parse_element(depth + 1);
        continue;
      }
      if (c == '&') {
        pending_text += read_entity();
        continue;
      }
      pending_text.push_back(cur_.advance());
    }
  }

  std::string read_name(const std::string& what) {
    if (cur_.at_end() ||
        !is_name_start(static_cast<unsigned char>(cur_.peek()))) {
      cur_.fail("expected " + what);
    }
    std::string name;
    name.push_back(cur_.advance());
    while (!cur_.at_end() &&
           is_name_char(static_cast<unsigned char>(cur_.peek()))) {
      name.push_back(cur_.advance());
    }
    return name;
  }

  std::string read_quoted_value() {
    char quote = cur_.peek();
    if (quote != '"' && quote != '\'') {
      cur_.fail("expected quoted value");
    }
    cur_.advance();
    std::string value;
    while (!cur_.at_end() && cur_.peek() != quote) {
      value.push_back(cur_.advance());
    }
    if (!cur_.consume(quote)) cur_.fail("unterminated quoted value");
    return value;
  }

  std::string read_attribute_value() {
    char quote = cur_.peek();
    if (quote != '"' && quote != '\'') {
      cur_.fail("expected quoted attribute value");
    }
    cur_.advance();
    std::string value;
    for (;;) {
      if (cur_.at_end()) cur_.fail("unterminated attribute value");
      char c = cur_.peek();
      if (c == quote) {
        cur_.advance();
        return value;
      }
      if (c == '<') {
        cur_.fail("'<' not allowed in attribute value");
      }
      if (c == '&') {
        value += read_entity();
        continue;
      }
      // Attribute-value normalization: whitespace characters become spaces.
      cur_.advance();
      value.push_back(is_space(c) ? ' ' : c);
    }
  }

  /// Reads an entity reference at '&' and returns its expansion (UTF-8).
  std::string read_entity() {
    cur_.consume('&');
    if (cur_.consume('#')) {
      bool hex = cur_.consume('x');
      std::uint32_t code = 0;
      bool any = false;
      while (!cur_.at_end() && cur_.peek() != ';') {
        char c = cur_.advance();
        std::uint32_t digit;
        if (c >= '0' && c <= '9') {
          digit = static_cast<std::uint32_t>(c - '0');
        } else if (hex && c >= 'a' && c <= 'f') {
          digit = static_cast<std::uint32_t>(c - 'a' + 10);
        } else if (hex && c >= 'A' && c <= 'F') {
          digit = static_cast<std::uint32_t>(c - 'A' + 10);
        } else {
          cur_.fail("bad character reference digit");
        }
        code = code * (hex ? 16 : 10) + digit;
        if (code > 0x10FFFF) cur_.fail("character reference out of range");
        any = true;
      }
      if (!any || !cur_.consume(';')) {
        cur_.fail("unterminated character reference");
      }
      if (code == 0 || (code >= 0xD800 && code <= 0xDFFF)) {
        cur_.fail("invalid character reference");
      }
      return encode_utf8(code);
    }
    std::string name = read_name("entity name");
    if (!cur_.consume(';')) cur_.fail("unterminated entity reference");
    if (name == "lt") return "<";
    if (name == "gt") return ">";
    if (name == "amp") return "&";
    if (name == "apos") return "'";
    if (name == "quot") return "\"";
    cur_.fail("unknown entity '&" + name + ";' (non-validating parser)");
  }

  static std::string encode_utf8(std::uint32_t code) {
    std::string out;
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return out;
  }

  /// Consumes text up to and including `terminator`; returns the text
  /// before it. Fails with `error` if the terminator never appears.
  std::string read_until(std::string_view terminator, const std::string& error) {
    std::string out;
    while (!cur_.at_end()) {
      if (cur_.peek() == terminator[0] && cur_.consume(terminator)) {
        return out;
      }
      out.push_back(cur_.advance());
    }
    cur_.fail(error);
  }

  Cursor cur_;
  SaxHandler& handler_;
  ParseOptions options_;
  Declaration decl_;
};

/// The DOM consumer of the event stream.
class DomBuilder : public SaxHandler {
public:
  explicit DomBuilder(Document& doc, const ParseOptions& options)
      : doc_(doc), options_(options) {}

  void on_position(std::size_t line, std::size_t column) override {
    pending_line_ = line;
    pending_column_ = column;
  }

  void on_start_element(std::string_view name,
                        std::span<const Attribute> attributes) override {
    auto node = std::make_unique<Node>(NodeKind::kElement);
    node->set_name(std::string(name));
    node->set_position(pending_line_, pending_column_);
    for (const Attribute& a : attributes) {
      node->set_attribute(a.name, a.value);
    }
    Node* raw = node.get();
    if (stack_.empty()) {
      doc_.root = std::move(node);
    } else {
      stack_.back()->append_child(std::move(node));
    }
    stack_.push_back(raw);
  }

  void on_end_element(std::string_view) override { stack_.pop_back(); }

  void on_text(std::string_view text) override {
    if (!stack_.empty()) stack_.back()->append_text(std::string(text));
  }

  void on_cdata(std::string_view data) override {
    if (stack_.empty()) return;
    auto node = std::make_unique<Node>(NodeKind::kCData);
    node->set_text(std::string(data));
    stack_.back()->append_child(std::move(node));
  }

  void on_comment(std::string_view text) override {
    if (!options_.keep_comments) return;
    auto node = std::make_unique<Node>(NodeKind::kComment);
    node->set_text(std::string(text));
    if (stack_.empty()) {
      doc_.prolog_nodes.push_back(std::move(node));
    } else {
      stack_.back()->append_child(std::move(node));
    }
  }

  void on_processing_instruction(std::string_view target,
                                 std::string_view data) override {
    // Prolog/epilog PIs are not retained (matching expat-based tools).
    if (stack_.empty()) return;
    auto node = std::make_unique<Node>(NodeKind::kProcessingInstruction);
    node->set_name(std::string(target));
    node->set_text(std::string(data));
    stack_.back()->append_child(std::move(node));
  }

private:
  Document& doc_;
  ParseOptions options_;
  std::vector<Node*> stack_;
  std::size_t pending_line_ = 0;
  std::size_t pending_column_ = 0;
};

std::string_view strip_bom(std::string_view text) {
  if (text.size() >= 3 && static_cast<unsigned char>(text[0]) == 0xEF &&
      static_cast<unsigned char>(text[1]) == 0xBB &&
      static_cast<unsigned char>(text[2]) == 0xBF) {
    text.remove_prefix(3);
  }
  return text;
}

}  // namespace

void sax_parse(std::string_view text, SaxHandler& handler,
               const ParseOptions& options) {
  Parser p(strip_bom(text), handler, options);
  p.parse_document();
}

Document parse(std::string_view text, const ParseOptions& options) {
  Document doc;
  DomBuilder builder(doc, options);
  Parser p(strip_bom(text), builder, options);
  p.parse_document();
  doc.version = p.declaration().version;
  doc.encoding = p.declaration().encoding;
  doc.standalone_declared = p.declaration().standalone_declared;
  doc.standalone = p.declaration().standalone;
  return doc;
}

Document parse_file(const std::string& path, const ParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("cannot open XML file: " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str(), options);
}

}  // namespace omf::xml
