// Event-driven (SAX-style) parsing interface.
//
// The parser core emits events; the DOM of xml/parser.hpp is one consumer
// (see DomBuilder in parser.cpp). Streaming consumers — large metadata
// catalogs, message scanners that only need a few elements — implement
// SaxHandler directly and never materialize a tree.
//
// All string_views passed to handlers are valid only for the duration of
// the callback.
#pragma once

#include <span>
#include <string_view>

#include "xml/dom.hpp"

namespace omf::xml {

struct ParseOptions;  // from xml/parser.hpp

class SaxHandler {
public:
  virtual ~SaxHandler() = default;

  virtual void on_start_document() {}
  virtual void on_end_document() {}

  /// 1-based source position of the construct about to be reported; emitted
  /// immediately before on_start_element. Handlers that do not care about
  /// positions (the default) ignore it.
  virtual void on_position(std::size_t line, std::size_t column) {
    (void)line;
    (void)column;
  }

  /// `attributes` are entity-expanded and whitespace-normalized.
  virtual void on_start_element(std::string_view name,
                                std::span<const Attribute> attributes) {
    (void)name;
    (void)attributes;
  }
  virtual void on_end_element(std::string_view name) { (void)name; }

  /// Entity-expanded character data. May be called multiple times for one
  /// logical run (entity boundaries do not split it; CDATA does).
  virtual void on_text(std::string_view text) { (void)text; }
  virtual void on_cdata(std::string_view data) { (void)data; }
  virtual void on_comment(std::string_view text) { (void)text; }
  virtual void on_processing_instruction(std::string_view target,
                                         std::string_view data) {
    (void)target;
    (void)data;
  }
};

/// Runs the parser, delivering events to `handler`. Same well-formedness
/// guarantees and ParseError behavior as xml::parse.
void sax_parse(std::string_view text, SaxHandler& handler,
               const ParseOptions& options);

}  // namespace omf::xml
