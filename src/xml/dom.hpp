// XML document object model.
//
// The tree is deliberately small: metadata documents (XML Schema format
// descriptions) are the workload, not arbitrary web content. Elements own
// their children; parents are back-referenced with non-owning pointers so
// namespace resolution can walk upward.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace omf::xml {

enum class NodeKind {
  kElement,
  kText,
  kCData,
  kComment,
  kProcessingInstruction,
};

struct Attribute {
  std::string name;   // as written, possibly prefixed ("xsd:element")
  std::string value;  // entity-expanded
};

/// A qualified name split at the first ':'. An unprefixed name has an empty
/// prefix.
struct QName {
  std::string_view prefix;
  std::string_view local;
};

QName split_qname(std::string_view name) noexcept;

class Node {
public:
  explicit Node(NodeKind kind) : kind_(kind) {}

  NodeKind kind() const noexcept { return kind_; }
  bool is_element() const noexcept { return kind_ == NodeKind::kElement; }
  bool is_text() const noexcept {
    return kind_ == NodeKind::kText || kind_ == NodeKind::kCData;
  }

  /// Element name or PI target; empty for text/comment nodes.
  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Text content for text/CDATA/comment/PI nodes; empty for elements.
  const std::string& text() const noexcept { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  Node* parent() const noexcept { return parent_; }

  /// 1-based source position of the node's start tag; 0 when the node was
  /// built programmatically rather than parsed.
  std::size_t line() const noexcept { return line_; }
  std::size_t column() const noexcept { return column_; }
  void set_position(std::size_t line, std::size_t column) noexcept {
    line_ = line;
    column_ = column;
  }

  // --- Attributes (elements only) -----------------------------------------

  const std::vector<Attribute>& attributes() const noexcept { return attrs_; }

  /// Value of the named attribute, or nullopt if absent.
  std::optional<std::string_view> attribute(std::string_view name) const;

  /// Value of the named attribute, or `fallback` if absent.
  std::string_view attribute_or(std::string_view name,
                                std::string_view fallback) const;

  void set_attribute(std::string name, std::string value);

  // --- Children (elements only) --------------------------------------------

  const std::vector<std::unique_ptr<Node>>& children() const noexcept {
    return children_;
  }

  /// Appends a child and returns a reference to it.
  Node& append_child(std::unique_ptr<Node> child);

  /// Convenience: creates and appends an element child.
  Node& append_element(std::string name);

  /// Convenience: creates and appends a text child.
  Node& append_text(std::string text);

  /// First element child with the given (qualified, as-written) name.
  const Node* first_child_element(std::string_view name) const;

  /// All element children with the given name.
  std::vector<const Node*> child_elements(std::string_view name) const;

  /// All element children regardless of name.
  std::vector<const Node*> child_elements() const;

  /// First element child whose *local* name (after any prefix) matches.
  const Node* first_child_local(std::string_view local_name) const;

  /// All element children whose local name matches.
  std::vector<const Node*> children_local(std::string_view local_name) const;

  /// Concatenated text of all descendant text/CDATA nodes.
  std::string text_content() const;

  /// Resolves a namespace prefix to its URI by walking xmlns declarations on
  /// this element and its ancestors. The empty prefix resolves the default
  /// namespace. Returns nullopt if the prefix is not in scope.
  std::optional<std::string_view> resolve_namespace(
      std::string_view prefix) const;

  /// Local part of this element's name.
  std::string_view local_name() const noexcept {
    return split_qname(name_).local;
  }

  /// Namespace URI of this element (resolving its prefix), empty if none.
  std::string_view namespace_uri() const;

private:
  NodeKind kind_;
  std::size_t line_ = 0;
  std::size_t column_ = 0;
  std::string name_;
  std::string text_;
  std::vector<Attribute> attrs_;
  std::vector<std::unique_ptr<Node>> children_;
  Node* parent_ = nullptr;
};

/// A parsed document: prolog information plus the single root element.
/// Comments and PIs outside the root are preserved in `prolog_nodes`.
struct Document {
  std::string version = "1.0";
  std::string encoding;  // empty if not declared
  bool standalone_declared = false;
  bool standalone = false;
  std::vector<std::unique_ptr<Node>> prolog_nodes;
  std::unique_ptr<Node> root;

  Node& root_element() { return *root; }
  const Node& root_element() const { return *root; }
};

/// Builds an element node (no parent) — the starting point for documents
/// constructed programmatically, e.g. by the schema generator.
std::unique_ptr<Node> make_element(std::string name);

}  // namespace omf::xml
