#include "xml/writer.hpp"

namespace omf::xml {

namespace {

void write_node(const Node& node, const WriteOptions& options, int depth,
                std::string& out) {
  auto newline_indent = [&](int d) {
    if (options.indent > 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(d) *
                     static_cast<std::size_t>(options.indent),
                 ' ');
    }
  };

  switch (node.kind()) {
    case NodeKind::kText:
      out += escape_text(node.text());
      return;
    case NodeKind::kCData:
      // A CDATA section cannot contain "]]>"; split if the data does.
      {
        std::string_view data = node.text();
        out += "<![CDATA[";
        std::size_t pos;
        while ((pos = data.find("]]>")) != std::string_view::npos) {
          out += std::string(data.substr(0, pos + 2));
          out += "]]><![CDATA[";
          data.remove_prefix(pos + 2);
        }
        out += std::string(data);
        out += "]]>";
      }
      return;
    case NodeKind::kComment:
      out += "<!--";
      out += node.text();
      out += "-->";
      return;
    case NodeKind::kProcessingInstruction:
      out += "<?";
      out += node.name();
      if (!node.text().empty()) {
        out += ' ';
        out += node.text();
      }
      out += "?>";
      return;
    case NodeKind::kElement:
      break;
  }

  out += '<';
  out += node.name();
  for (const Attribute& a : node.attributes()) {
    out += ' ';
    out += a.name;
    out += "=\"";
    out += escape_attribute(a.value);
    out += '"';
  }
  if (node.children().empty()) {
    out += " />";
    return;
  }
  out += '>';

  // Mixed content (any text child) is written inline to preserve the text
  // exactly; element-only content is pretty-printed.
  bool has_text_child = false;
  for (const auto& c : node.children()) {
    if (c->is_text()) {
      has_text_child = true;
      break;
    }
  }
  if (has_text_child || options.indent == 0) {
    for (const auto& c : node.children()) {
      write_node(*c, options, depth + 1, out);
    }
  } else {
    for (const auto& c : node.children()) {
      newline_indent(depth + 1);
      write_node(*c, options, depth + 1, out);
    }
    newline_indent(depth);
  }
  out += "</";
  out += node.name();
  out += '>';
}

}  // namespace

std::string escape_text(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string escape_attribute(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\t': out += "&#9;"; break;
      case '\n': out += "&#10;"; break;
      case '\r': out += "&#13;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string write(const Document& doc, const WriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out += "<?xml version=\"";
    out += doc.version;
    out += '"';
    if (!doc.encoding.empty()) {
      out += " encoding=\"";
      out += doc.encoding;
      out += '"';
    }
    if (doc.standalone_declared) {
      out += " standalone=\"";
      out += doc.standalone ? "yes" : "no";
      out += '"';
    }
    out += "?>";
    if (options.indent > 0) out += '\n';
  }
  if (doc.root) {
    write_node(*doc.root, options, 0, out);
    if (options.indent > 0) out += '\n';
  }
  return out;
}

std::string write(const Node& element, const WriteOptions& options) {
  std::string out;
  write_node(element, options, 0, out);
  return out;
}

}  // namespace omf::xml
