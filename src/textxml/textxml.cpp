#include "textxml/textxml.hpp"

#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace omf::textxml {

using pbio::ArrayKind;
using pbio::Field;
using pbio::FieldClass;
using pbio::Format;

namespace {

// --- Native memory helpers (duplicated narrowly; hot-path codecs keep
// their scalar access local rather than sharing a virtual interface) -------

std::uint64_t load_native_uint(const std::uint8_t* p, std::size_t size) {
  switch (size) {
    case 1: return *p;
    case 2: { std::uint16_t v; std::memcpy(&v, p, 2); return v; }
    case 4: { std::uint32_t v; std::memcpy(&v, p, 4); return v; }
    default: { std::uint64_t v; std::memcpy(&v, p, 8); return v; }
  }
}

std::int64_t load_native_int(const std::uint8_t* p, std::size_t size) {
  std::uint64_t v = load_native_uint(p, size);
  if (size < 8) {
    std::uint64_t sign_bit = 1ull << (size * 8 - 1);
    if (v & sign_bit) v |= ~((sign_bit << 1) - 1);
  }
  return static_cast<std::int64_t>(v);
}

void store_native_int(std::uint8_t* p, std::size_t size, std::uint64_t v) {
  switch (size) {
    case 1: { auto x = static_cast<std::uint8_t>(v); std::memcpy(p, &x, 1); break; }
    case 2: { auto x = static_cast<std::uint16_t>(v); std::memcpy(p, &x, 2); break; }
    case 4: { auto x = static_cast<std::uint32_t>(v); std::memcpy(p, &x, 4); break; }
    default: std::memcpy(p, &v, 8); break;
  }
}

std::int64_t read_count_field(const Format& format, const std::uint8_t* src,
                              const Field& array_field) {
  const Field& cf = format.fields()[array_field.count_field_index];
  return cf.type.cls == FieldClass::kInteger
             ? load_native_int(src + cf.offset, cf.size)
             : static_cast<std::int64_t>(
                   load_native_uint(src + cf.offset, cf.size));
}

// --- Encoding ---------------------------------------------------------------

void append_scalar_text(const Field& f, const std::uint8_t* elem,
                        std::string& out) {
  char buf[40];
  switch (f.type.cls) {
    case FieldClass::kInteger:
      std::snprintf(buf, sizeof(buf), "%" PRId64, load_native_int(elem, f.size));
      out += buf;
      break;
    case FieldClass::kUnsigned:
      std::snprintf(buf, sizeof(buf), "%" PRIu64, load_native_uint(elem, f.size));
      out += buf;
      break;
    case FieldClass::kFloat: {
      double v;
      if (f.size == 4) {
        float x;
        std::memcpy(&x, elem, 4);
        v = x;
      } else {
        std::memcpy(&v, elem, 8);
      }
      // %.17g preserves every double exactly through the text round-trip.
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      out += buf;
      break;
    }
    case FieldClass::kChar:
      std::snprintf(buf, sizeof(buf), "%d", static_cast<int>(
                        *reinterpret_cast<const std::int8_t*>(elem)));
      out += buf;
      break;
    default:
      throw EncodeError("append_scalar_text on non-scalar field");
  }
}

void encode_region(const Format& format, const std::uint8_t* src,
                   std::string& out);

void open_tag(std::string& out, const std::string& name) {
  out += '<';
  out += name;
  out += '>';
}

void close_tag(std::string& out, const std::string& name) {
  out += "</";
  out += name;
  out += '>';
}

void encode_field(const Format& format, const Field& f,
                  const std::uint8_t* src, std::string& out) {
  const std::uint8_t* base = src + f.offset;
  std::size_t count = 1;
  if (f.type.array == ArrayKind::kStatic) {
    count = f.type.static_count;
  } else if (f.type.array == ArrayKind::kDynamic) {
    std::int64_t n = read_count_field(format, src, f);
    if (n < 0) throw EncodeError("negative count for '" + f.name + "'");
    const std::uint8_t* ptr = nullptr;
    std::memcpy(&ptr, src + f.offset, sizeof(ptr));
    if (n > 0 && ptr == nullptr) {
      throw EncodeError("null dynamic array '" + f.name + "'");
    }
    base = ptr;
    count = static_cast<std::size_t>(n);
  }

  if (f.type.cls == FieldClass::kString) {
    const char* s = nullptr;
    std::memcpy(&s, src + f.offset, sizeof(s));
    if (s == nullptr) {
      // Null strings are marked explicitly (xsi:nil style) so a null and an
      // empty string stay distinguishable through the text format.
      out += '<';
      out += f.name;
      out += " nil=\"true\" />";
      return;
    }
    open_tag(out, f.name);
    out += xml::escape_text(s);
    close_tag(out, f.name);
    return;
  }

  std::size_t elem_size = f.type.cls == FieldClass::kNested
                              ? f.subformat->struct_size()
                              : f.size;
  for (std::size_t i = 0; i < count; ++i) {
    open_tag(out, f.name);
    if (f.type.cls == FieldClass::kNested) {
      encode_region(*f.subformat, base + i * elem_size, out);
    } else {
      append_scalar_text(f, base + i * elem_size, out);
    }
    close_tag(out, f.name);
  }
}

void encode_region(const Format& format, const std::uint8_t* src,
                   std::string& out) {
  for (const Field& f : format.fields()) {
    encode_field(format, f, src, out);
  }
}

// --- Decoding ---------------------------------------------------------------

void parse_scalar_text(const Field& f, std::string_view text,
                       std::uint8_t* elem) {
  text = trim(text);
  switch (f.type.cls) {
    case FieldClass::kInteger:
    case FieldClass::kChar: {
      auto v = parse_int(text);
      if (!v) {
        throw DecodeError("field '" + f.name + "': bad integer '" +
                          std::string(text) + "'");
      }
      store_native_int(elem, f.type.cls == FieldClass::kChar ? 1 : f.size,
                       static_cast<std::uint64_t>(*v));
      break;
    }
    case FieldClass::kUnsigned: {
      auto v = parse_uint(text);
      if (!v) {
        throw DecodeError("field '" + f.name + "': bad unsigned '" +
                          std::string(text) + "'");
      }
      store_native_int(elem, f.size, *v);
      break;
    }
    case FieldClass::kFloat: {
      auto v = parse_double(text);
      if (!v) {
        throw DecodeError("field '" + f.name + "': bad float '" +
                          std::string(text) + "'");
      }
      if (f.size == 4) {
        float x = static_cast<float>(*v);
        std::memcpy(elem, &x, 4);
      } else {
        double x = *v;
        std::memcpy(elem, &x, 8);
      }
      break;
    }
    default:
      throw DecodeError("parse_scalar_text on non-scalar field");
  }
}

void decode_region(const Format& format, const xml::Node& node,
                   std::uint8_t* dst, pbio::DecodeArena& arena) {
  for (const Field& f : format.fields()) {
    std::vector<const xml::Node*> elems = node.child_elements(f.name);

    if (f.type.cls == FieldClass::kString) {
      if (elems.empty()) {
        throw DecodeError("missing element '" + f.name + "'");
      }
      char* s = nullptr;
      if (elems[0]->attribute_or("nil", "false") != "true") {
        std::string text = elems[0]->text_content();
        s = arena.copy_string(text.data(), text.size());
      }
      std::memcpy(dst + f.offset, &s, sizeof(s));
      continue;
    }

    std::size_t elem_size = f.type.cls == FieldClass::kNested
                                ? f.subformat->struct_size()
                                : f.size;
    std::uint8_t* base = dst + f.offset;

    switch (f.type.array) {
      case ArrayKind::kNone:
        if (elems.empty()) {
          throw DecodeError("missing element '" + f.name + "'");
        }
        break;
      case ArrayKind::kStatic:
        if (elems.size() != f.type.static_count) {
          throw DecodeError("element '" + f.name + "': expected " +
                            std::to_string(f.type.static_count) +
                            " occurrences, got " +
                            std::to_string(elems.size()));
        }
        break;
      case ArrayKind::kDynamic: {
        std::size_t n = elems.size();
        void* mem = nullptr;
        if (n != 0) {
          mem = arena.allocate(n * elem_size,
                               f.type.cls == FieldClass::kNested
                                   ? f.subformat->alignment()
                                   : 8);
        }
        std::memcpy(dst + f.offset, &mem, sizeof(mem));
        base = static_cast<std::uint8_t*>(mem);
        // The companion count field may also appear as its own element;
        // the occurrence count is authoritative (it is the wire truth).
        const Field& cf = format.fields()[f.count_field_index];
        store_native_int(dst + cf.offset, cf.size, n);
        break;
      }
    }

    std::size_t n = f.type.array == ArrayKind::kNone
                        ? 1
                        : (f.type.array == ArrayKind::kStatic
                               ? f.type.static_count
                               : elems.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (f.type.cls == FieldClass::kNested) {
        decode_region(*f.subformat, *elems[i], base + i * elem_size, arena);
      } else {
        parse_scalar_text(f, elems[i]->text_content(), base + i * elem_size);
      }
    }
  }
}

}  // namespace

void encode(const Format& format, const void* data, Buffer& out) {
  std::string doc = encode_text(format, data);
  out.append(doc);
}

std::string encode_text(const Format& format, const void* data) {
  std::string out;
  out.reserve(format.struct_size() * 8);
  out += "<?xml version=\"1.0\"?>";
  open_tag(out, format.name());
  encode_region(format, static_cast<const std::uint8_t*>(data), out);
  close_tag(out, format.name());
  return out;
}

void decode(const Format& format, std::span<const std::uint8_t> bytes,
            void* out_struct, pbio::DecodeArena& arena) {
  std::string_view text(reinterpret_cast<const char*>(bytes.data()),
                        bytes.size());
  xml::Document doc = xml::parse(text);
  if (doc.root->name() != format.name()) {
    throw DecodeError("message root '" + doc.root->name() +
                      "' does not match format '" + format.name() + "'");
  }
  decode_region(format, *doc.root, static_cast<std::uint8_t*>(out_struct),
                arena);
}

}  // namespace omf::textxml
