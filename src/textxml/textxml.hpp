// Text-XML wire format — the "XML as transport" baseline (XML-RPC style).
//
// This codec does what 2000-era XML messaging systems did: every message is
// a self-describing ASCII XML document. Each record becomes an element
// named after its format; each field becomes a child element whose text is
// the printed value; arrays repeat the element; nested records nest the
// elements. Decoding parses the document and converts text back to binary.
//
// It exists to quantify the paper's two claims about XML-as-wire-format:
// the 6-8x size expansion and the ~order-of-magnitude processing cost of
// binary->ASCII->binary conversion, measured against the NDR path on
// identical data and identical field metadata.
#pragma once

#include <span>
#include <string>

#include "pbio/arena.hpp"
#include "pbio/format.hpp"
#include "util/buffer.hpp"

namespace omf::textxml {

/// Marshals `data` (native-profile struct per `format`) into an XML text
/// document appended to `out`.
void encode(const pbio::Format& format, const void* data, Buffer& out);

/// Convenience wrapper returning the document as a string.
std::string encode_text(const pbio::Format& format, const void* data);

/// Parses an XML text message and fills `out_struct` (native layout per
/// `format`), allocating variable-length data in `arena`. Throws ParseError
/// for malformed XML and DecodeError for structure/value mismatches.
void decode(const pbio::Format& format, std::span<const std::uint8_t> bytes,
            void* out_struct, pbio::DecodeArena& arena);

}  // namespace omf::textxml
