// Architecture profiles.
//
// NDR ships data in the *sender's* native layout, so every format is
// registered against a description of some machine: its byte order, its
// C-type sizes, and its alignment rules. On a real deployment the profile is
// always the host's; in this reproduction we also model classic foreign
// architectures (big-endian 64-bit SPARC, 32-bit x86, ...) so the receiver's
// conversion machinery — the part of PBIO the paper's performance argument
// rests on — is exercised end-to-end on a single laptop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace omf::arch {

/// Static description of a machine architecture as seen by a C compiler.
/// Scalar alignment follows the common ABI rule "aligned to min(size,
/// alignment_cap)": alignment_cap is 8 on most ABIs and 4 on System V i386,
/// where 8-byte scalars are only 4-byte aligned inside structs.
struct Profile {
  std::string name;
  ByteOrder byte_order = ByteOrder::kLittle;
  std::uint8_t pointer_size = 8;
  std::uint8_t int_size = 4;    ///< sizeof(int)
  std::uint8_t long_size = 8;   ///< sizeof(long)
  std::uint8_t alignment_cap = 8;

  /// Alignment of a scalar of the given width under this ABI.
  std::size_t scalar_align(std::size_t width) const noexcept {
    return width < alignment_cap ? width : alignment_cap;
  }

  bool operator==(const Profile& other) const noexcept {
    return byte_order == other.byte_order &&
           pointer_size == other.pointer_size && int_size == other.int_size &&
           long_size == other.long_size &&
           alignment_cap == other.alignment_cap;
  }

  /// Canonical short string ("le/p8/i4/l8/a8") — hashed into format ids so
  /// two hosts with identical ABIs produce identical ids.
  std::string canonical() const;
};

/// The architecture this process is actually running on, detected from the
/// compiler. All formats bound to real program structs use this profile.
const Profile& native();

/// Classic profiles for heterogeneity simulation.
const Profile& x86_64();   ///< LE, 64-bit pointers/longs
const Profile& i386();     ///< LE, 32-bit, alignment cap 4
const Profile& sparc64();  ///< BE, 64-bit (the paper-era heterogeneous peer)
const Profile& sparc32();  ///< BE, 32-bit pointers/longs, 8-byte double align
const Profile& arm32();    ///< LE, 32-bit pointers/longs, 8-byte double align

/// All built-in profiles (for parameterized tests).
const std::vector<const Profile*>& all_profiles();

/// Looks a built-in profile up by name; throws omf::Error if unknown.
const Profile& profile_by_name(const std::string& name);

// ---------------------------------------------------------------------------
// SIMD capability
// ---------------------------------------------------------------------------

/// Vector instruction tiers the fused decode kernels (pbio/run_kernels) are
/// compiled for. Ordered: a CPU at tier N can run every kernel of tier ≤ N.
enum class SimdTier : std::uint8_t {
  kScalar = 0,  ///< portable C++ loops only
  kSSE2 = 1,    ///< 16-byte lanes (x86-64 baseline)
  kAVX2 = 2,    ///< 32-byte lanes
};

/// Short stable name ("scalar" / "sse2" / "avx2") for logs and metrics.
const char* simd_tier_name(SimdTier tier) noexcept;

/// The tier this process dispatches run kernels at: the highest tier both
/// compiled in and reported by the CPU, detected once at first call.
/// A build with -DOMF_SIMD=OFF always reports kScalar. The OMF_SIMD_TIER
/// environment variable ("scalar"/"sse2"/"avx2") clamps the tier *downward*
/// — it can disable vector paths on a capable CPU (for ablations and the
/// scalar-fallback CI job) but never enables instructions the CPU lacks.
SimdTier simd_tier() noexcept;

/// What the CPU supports, ignoring the environment clamp (for diagnostics).
SimdTier detected_simd_tier() noexcept;

// ---------------------------------------------------------------------------
// C struct layout
// ---------------------------------------------------------------------------

/// Incremental C struct layout calculator for a given profile. Mirrors what
/// a C compiler does: each member goes at the next offset aligned to its
/// alignment, the struct's alignment is the max member alignment, and the
/// final size is rounded up to that alignment.
class StructLayout {
public:
  explicit StructLayout(const Profile& profile) : profile_(&profile) {}

  /// Places one member of `size` bytes with alignment `align` (arrays pass
  /// element alignment and total size). Returns its offset.
  std::size_t add_member(std::size_t size, std::size_t align);

  /// Places a scalar of the given width (alignment from the profile).
  std::size_t add_scalar(std::size_t width) {
    return add_member(width, profile_->scalar_align(width));
  }

  /// Final padded size of the struct laid out so far (0 members -> 0).
  std::size_t size() const noexcept;

  /// Alignment of the struct (max member alignment; 1 if empty).
  std::size_t alignment() const noexcept { return align_ == 0 ? 1 : align_; }

private:
  const Profile* profile_;
  std::size_t offset_ = 0;
  std::size_t align_ = 0;
};

}  // namespace omf::arch
