#include "arch/profile.hpp"

#include "util/error.hpp"

namespace omf::arch {

std::string Profile::canonical() const {
  std::string s;
  s += byte_order == ByteOrder::kLittle ? "le" : "be";
  s += "/p" + std::to_string(pointer_size);
  s += "/i" + std::to_string(int_size);
  s += "/l" + std::to_string(long_size);
  s += "/a" + std::to_string(alignment_cap);
  return s;
}

namespace {

Profile detect_native() {
  Profile p;
  p.name = "native";
  p.byte_order = host_byte_order();
  p.pointer_size = sizeof(void*);
  p.int_size = sizeof(int);
  p.long_size = sizeof(long);
  // Probe the compiler's struct alignment of an 8-byte scalar.
  struct Probe {
    char c;
    double d;
  };
  p.alignment_cap = static_cast<std::uint8_t>(offsetof(Probe, d));
  return p;
}

}  // namespace

const Profile& native() {
  static const Profile p = detect_native();
  return p;
}

const Profile& x86_64() {
  static const Profile p{"x86_64", ByteOrder::kLittle, 8, 4, 8, 8};
  return p;
}

const Profile& i386() {
  static const Profile p{"i386", ByteOrder::kLittle, 4, 4, 4, 4};
  return p;
}

const Profile& sparc64() {
  static const Profile p{"sparc64", ByteOrder::kBig, 8, 4, 8, 8};
  return p;
}

const Profile& sparc32() {
  static const Profile p{"sparc32", ByteOrder::kBig, 4, 4, 4, 8};
  return p;
}

const Profile& arm32() {
  static const Profile p{"arm32", ByteOrder::kLittle, 4, 4, 4, 8};
  return p;
}

const std::vector<const Profile*>& all_profiles() {
  static const std::vector<const Profile*> all = {
      &native(), &x86_64(), &i386(), &sparc64(), &sparc32(), &arm32()};
  return all;
}

const Profile& profile_by_name(const std::string& name) {
  for (const Profile* p : all_profiles()) {
    if (p->name == name) return *p;
  }
  throw Error("unknown architecture profile: " + name);
}

std::size_t StructLayout::add_member(std::size_t size, std::size_t align) {
  if (align == 0) align = 1;
  offset_ = align_up(offset_, align);
  std::size_t at = offset_;
  offset_ += size;
  if (align > align_) align_ = align;
  return at;
}

std::size_t StructLayout::size() const noexcept {
  if (offset_ == 0) return 0;
  return align_up(offset_, alignment());
}

}  // namespace omf::arch
