#include "arch/profile.hpp"

#include <cstdlib>
#include <cstring>

#include "util/error.hpp"

namespace omf::arch {

std::string Profile::canonical() const {
  std::string s;
  s += byte_order == ByteOrder::kLittle ? "le" : "be";
  s += "/p" + std::to_string(pointer_size);
  s += "/i" + std::to_string(int_size);
  s += "/l" + std::to_string(long_size);
  s += "/a" + std::to_string(alignment_cap);
  return s;
}

namespace {

Profile detect_native() {
  Profile p;
  p.name = "native";
  p.byte_order = host_byte_order();
  p.pointer_size = sizeof(void*);
  p.int_size = sizeof(int);
  p.long_size = sizeof(long);
  // Probe the compiler's struct alignment of an 8-byte scalar.
  struct Probe {
    char c;
    double d;
  };
  p.alignment_cap = static_cast<std::uint8_t>(offsetof(Probe, d));
  return p;
}

}  // namespace

const Profile& native() {
  static const Profile p = detect_native();
  return p;
}

const Profile& x86_64() {
  static const Profile p{"x86_64", ByteOrder::kLittle, 8, 4, 8, 8};
  return p;
}

const Profile& i386() {
  static const Profile p{"i386", ByteOrder::kLittle, 4, 4, 4, 4};
  return p;
}

const Profile& sparc64() {
  static const Profile p{"sparc64", ByteOrder::kBig, 8, 4, 8, 8};
  return p;
}

const Profile& sparc32() {
  static const Profile p{"sparc32", ByteOrder::kBig, 4, 4, 4, 8};
  return p;
}

const Profile& arm32() {
  static const Profile p{"arm32", ByteOrder::kLittle, 4, 4, 4, 8};
  return p;
}

const std::vector<const Profile*>& all_profiles() {
  static const std::vector<const Profile*> all = {
      &native(), &x86_64(), &i386(), &sparc64(), &sparc32(), &arm32()};
  return all;
}

const Profile& profile_by_name(const std::string& name) {
  for (const Profile* p : all_profiles()) {
    if (p->name == name) return *p;
  }
  throw Error("unknown architecture profile: " + name);
}

const char* simd_tier_name(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::kSSE2: return "sse2";
    case SimdTier::kAVX2: return "avx2";
    case SimdTier::kScalar: break;
  }
  return "scalar";
}

namespace {

SimdTier probe_cpu_tier() noexcept {
#if !defined(OMF_SIMD_DISABLED) && (defined(__x86_64__) || defined(__i386__))
  if (__builtin_cpu_supports("avx2")) return SimdTier::kAVX2;
  if (__builtin_cpu_supports("sse2")) return SimdTier::kSSE2;
#endif
  return SimdTier::kScalar;
}

SimdTier clamp_by_env(SimdTier detected) noexcept {
  // Read once at startup (from the simd_tier() static initializer), before
  // any thread could call setenv.
  const char* env = std::getenv("OMF_SIMD_TIER");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr || *env == '\0') return detected;
  SimdTier cap = SimdTier::kScalar;
  if (std::strcmp(env, "avx2") == 0) {
    cap = SimdTier::kAVX2;
  } else if (std::strcmp(env, "sse2") == 0) {
    cap = SimdTier::kSSE2;
  }  // anything else (including "scalar" and typos) clamps to scalar
  return cap < detected ? cap : detected;
}

}  // namespace

SimdTier detected_simd_tier() noexcept {
  static const SimdTier tier = probe_cpu_tier();
  return tier;
}

SimdTier simd_tier() noexcept {
  static const SimdTier tier = clamp_by_env(detected_simd_tier());
  return tier;
}

std::size_t StructLayout::add_member(std::size_t size, std::size_t align) {
  if (align == 0) align = 1;
  offset_ = align_up(offset_, align);
  std::size_t at = offset_;
  offset_ += size;
  if (align > align_) align_ = align;
  return at;
}

std::size_t StructLayout::size() const noexcept {
  if (offset_ == 0) return 0;
  return align_up(offset_, alignment());
}

}  // namespace omf::arch
