// Format evolution without recompilation.
//
// The scenario the paper's Section 3 argues for: a deployed consumer keeps
// running while the message format changes underneath it. Metadata lives in
// an XML document on a server; when the producer upgrades to v2 (new
// fields, reordered layout), the old consumer continues decoding v2
// messages (unknown fields skipped), and a new consumer reading v1 archive
// messages sees zero-filled defaults for the fields v1 lacked. Nobody
// recompiles anything — compare with an IDL-stub system, where every
// endpoint rebuilds.
//
// Build & run:  ./examples/format_evolution
#include <cstdio>

#include "core/context.hpp"
#include "http/http.hpp"

namespace {

const char* kV1 = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Departure">
    <xsd:element name="fltNum" type="xsd:int" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="offTime" type="xsd:unsignedLong" />
  </xsd:complexType>
</xsd:schema>
)";

// v2 inserts a field in the middle (shifting every later offset) and
// appends two more — the worst case for any fixed-layout assumption.
const char* kV2 = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Departure">
    <xsd:element name="fltNum" type="xsd:int" />
    <xsd:element name="gate" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="offTime" type="xsd:unsignedLong" />
    <xsd:element name="delayMin" type="xsd:int" />
    <xsd:element name="remote" type="xsd:boolean" />
  </xsd:complexType>
</xsd:schema>
)";

void show(const char* who, omf::pbio::DynamicRecord& rec) {
  std::printf("  %-22s %s\n", who, rec.to_string().c_str());
}

}  // namespace

int main() {
  using namespace omf;

  http::Server meta_server;
  meta_server.put_document("/departure.xml", kV1);
  std::string locator = meta_server.url_for("/departure.xml");

  // --- Day 1: everyone speaks v1. --------------------------------------------
  core::Context producer, old_consumer;
  auto producer_v1 = producer.discover_format(locator, "Departure");
  auto consumer_v1 = old_consumer.discover_format(locator, "Departure");
  std::printf("v1 format id %016llx (%zu fields)\n\n",
              static_cast<unsigned long long>(producer_v1->id()),
              producer_v1->fields().size());

  pbio::DynamicRecord day1(producer_v1);
  day1.set_int("fltNum", 204);
  day1.set_string("dest", "MCO");
  day1.set_uint("offTime", 955913600);
  Buffer wire_v1 = day1.encode();

  pbio::DynamicRecord got1(consumer_v1);
  got1.from_wire(old_consumer.decoder(), wire_v1.span());
  std::printf("day 1, v1 message -> v1 consumer:\n");
  show("old consumer:", got1);

  // --- Day 2: the metadata document changes; the producer re-discovers. ------
  meta_server.put_document("/departure.xml", kV2);
  producer.discovery().invalidate(locator);
  auto producer_v2 = producer.discover_format(locator, "Departure");
  std::printf("\nmetadata updated: v2 format id %016llx (%zu fields)\n",
              static_cast<unsigned long long>(producer_v2->id()),
              producer_v2->fields().size());

  pbio::DynamicRecord day2(producer_v2);
  day2.set_int("fltNum", 1549);
  day2.set_string("gate", "B7");
  day2.set_string("dest", "LGA");
  day2.set_uint("offTime", 955999999);
  day2.set_int("delayMin", 25);
  day2.set_uint("remote", 1);
  Buffer wire_v2 = day2.encode();

  // --- The OLD consumer receives a v2 message. --------------------------------
  // The wire id is unknown; in a deployment the consumer re-fetches the
  // metadata (or asks the format service). It keeps its OWN v1 native
  // format — no recompilation, no new struct — and decodes what it knows.
  pbio::FormatId v2_id = pbio::Decoder::peek_format_id(wire_v2.span());
  if (old_consumer.registry().by_id(v2_id) == nullptr) {
    std::printf("\nold consumer: unknown wire id %016llx -> re-discovering\n",
                static_cast<unsigned long long>(v2_id));
    old_consumer.discovery().invalidate(locator);
    old_consumer.discover_and_register(locator);  // learns v2 *metadata* only
  }
  pbio::DynamicRecord got2(consumer_v1);  // still binds its v1 view!
  got2.from_wire(old_consumer.decoder(), wire_v2.span());
  std::printf("day 2, v2 message -> v1 consumer (gate/delay invisible):\n");
  show("old consumer:", got2);

  // --- A NEW consumer replays the day-1 archive. -------------------------------
  core::Context new_consumer;
  new_consumer.discovery().invalidate(locator);
  auto consumer_v2 = new_consumer.discover_format(locator, "Departure");
  // It must also know the v1 metadata to decode archived v1 messages.
  core::Xml2Wire old_meta(new_consumer.registry());
  old_meta.register_text(kV1);
  pbio::DynamicRecord replay(consumer_v2);
  replay.from_wire(new_consumer.decoder(), wire_v1.span());
  std::printf("\nday 1 archive -> v2 consumer (new fields default to zero/null):\n");
  show("new consumer:", replay);

  std::printf("\nno process was recompiled; 2 metadata documents, 2 format "
              "versions, 4 decode paths.\n");
  return 0;
}
