// Distributed operational information system — the capstone example.
//
// Everything from the paper's deployment story in one program, with the
// backbone actually on the network:
//
//   * a hub process hosts the event backbone and exposes it over TCP
//     (RemoteBackboneServer);
//   * metadata lives on an HTTP server, served *scoped*: the ops audience
//     sees every field, gate displays only a slice (§4.4);
//   * a capture point attaches as a remote publisher; a second capture
//     point is a big-endian SPARC host (synthesized wire);
//   * consumers attach as remote subscribers with different audiences; the
//     gate display decodes full-format messages through its scoped view
//     (PBIO evolution machinery — nothing is re-encoded for it);
//   * a gateway re-encodes the SPARC feed into the local format once, so
//     thin displays could take the zero-copy path.
//
// Build & run:  ./examples/distributed_ois
#include <cstdio>
#include <thread>

#include "core/context.hpp"
#include "core/gateway.hpp"
#include "core/scoping.hpp"
#include "http/http.hpp"
#include "pbio/synth.hpp"
#include "schema/reader.hpp"
#include "transport/remote_backbone.hpp"

namespace {

const char* kOpsSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="FlightOps">
    <xsd:element name="fltNum" type="xsd:int" />
    <xsd:element name="gate" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="fuelKg" type="xsd:double" />
    <xsd:element name="crewNames" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>
)";

}  // namespace

int main() {
  using namespace omf;

  // ---- Hub: backbone + TCP bridge + scoped metadata server -------------------
  transport::EventBackbone backbone;
  transport::RemoteBackboneServer hub(backbone);

  http::Server meta_server;
  core::ScopePolicy policy;
  policy.allow_all("ops", "FlightOps");
  policy.allow("gate", "FlightOps", "fltNum");
  policy.allow("gate", "FlightOps", "gate");
  policy.allow("gate", "FlightOps", "dest");
  core::ScopedMetadataServer scoped(meta_server, policy);
  scoped.add_document("/flightops.xml", kOpsSchema);
  std::printf("[hub] backbone on tcp:%u, metadata on http:%u\n", hub.port(),
              meta_server.port());

  constexpr int kEvents = 4;

  // ---- Consumers first (so nothing is missed) ---------------------------------
  transport::RemoteSubscription ops_feed(hub.port(), "flight.ops");
  transport::RemoteSubscription gate_feed(hub.port(), "flight.ops");
  while (backbone.subscriber_count("flight.ops") < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // ---- Capture point: remote publisher, full-format events -------------------
  std::thread capture([&] {
    core::Context ctx;
    auto format = ctx.discover_format(
        scoped.url_for("/flightops.xml", "ops"), "FlightOps");
    transport::RemotePublisher pub(hub.port());
    const char* gates[] = {"A1", "B7", "C3", "T9"};
    for (int i = 0; i < kEvents; ++i) {
      pbio::DynamicRecord ev(format);
      ev.set_int("fltNum", 1500 + i);
      ev.set_string("gate", gates[i % 4]);
      ev.set_string("dest", i % 2 == 0 ? "MCO" : "LGA");
      ev.set_float("fuelKg", 17500.0 + 250.0 * i);
      ev.set_string("crewNames", "Haynes; Fitch");
      pub.publish("flight.ops", ev.encode());
    }
    std::printf("[capture] published %d full-format events\n", kEvents);
  });
  capture.join();

  // ---- Ops console: full visibility -------------------------------------------
  {
    core::Context ctx;
    auto format = ctx.discover_format(
        scoped.url_for("/flightops.xml", "ops"), "FlightOps");
    std::printf("\n[ops] full view (%zu fields):\n", format->fields().size());
    for (int i = 0; i < kEvents; ++i) {
      auto msg = ops_feed.receive();
      if (!msg) break;
      pbio::DynamicRecord rec(format);
      rec.from_wire(ctx.decoder(), msg->span());
      std::printf("  DL%lld gate %s -> %s, fuel %.0fkg, crew: %s\n",
                  static_cast<long long>(rec.get_int("fltNum")),
                  rec.get_string("gate"), rec.get_string("dest"),
                  rec.get_float("fuelKg"), rec.get_string("crewNames"));
    }
  }

  // ---- Gate display: scoped view, same wire messages --------------------------
  {
    core::Context ctx;
    auto scoped_format = ctx.discover_format(
        scoped.url_for("/flightops.xml", "gate"), "FlightOps");
    // It needs the full format's metadata to decode (id lookup), which the
    // ops metadata URL provides; the fields stay invisible regardless.
    ctx.discover_and_register(scoped.url_for("/flightops.xml", "ops"));
    std::printf("\n[gate] scoped view (%zu fields — fuel and crew withheld):\n",
                scoped_format->fields().size());
    for (int i = 0; i < kEvents; ++i) {
      auto msg = gate_feed.receive();
      if (!msg) break;
      pbio::DynamicRecord rec(scoped_format);
      rec.from_wire(ctx.decoder(), msg->span());
      std::printf("  DL%lld gate %s -> %s\n",
                  static_cast<long long>(rec.get_int("fltNum")),
                  rec.get_string("gate"), rec.get_string("dest"));
    }
  }

  // ---- Gateway: re-encode a SPARC feed for homogeneous thin clients -----------
  {
    core::Context ctx;
    auto native = ctx.discover_format(
        scoped.url_for("/flightops.xml", "ops"), "FlightOps");
    core::Xml2Wire sparc_meta(ctx.registry(), arch::sparc64());
    auto sparc =
        sparc_meta.register_schema(schema::read_schema_text(kOpsSchema))[0];

    pbio::DynamicRecord ev(native);
    ev.set_int("fltNum", 1999);
    ev.set_string("gate", "E2");
    ev.set_string("dest", "SEA");
    ev.set_float("fuelKg", 21000);
    ev.set_string("crewNames", "Sullenberger; Skiles");
    Buffer foreign_wire = pbio::synthesize_wire(*sparc, ev);

    core::Gateway gateway(ctx.registry(), native, native);
    Buffer local_wire = gateway.convert(foreign_wire.span());
    auto in_hdr = pbio::Decoder::peek_header(foreign_wire.span());
    auto out_hdr = pbio::Decoder::peek_header(local_wire.span());
    std::printf("\n[gateway] sparc64 wire (%s, %zu B) -> native wire (%s, %zu B); "
                "thin clients now decode zero-copy\n",
                in_hdr.byte_order == ByteOrder::kBig ? "BE" : "LE",
                foreign_wire.size(),
                out_hdr.byte_order == ByteOrder::kBig ? "BE" : "LE",
                local_wire.size());
    auto* p = static_cast<const void*>(pbio::Decoder::decode_in_place(
        *native, local_wire.data(), local_wire.size()));
    std::printf("[gateway] zero-copy check: struct at %p inside the buffer\n",
                p);
  }

  std::printf("\n[hub] metadata server answered %zu requests; shutting down\n",
              meta_server.request_count());
  return 0;
}
