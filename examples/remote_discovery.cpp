// Remote metadata discovery with fault-tolerant fallback (paper §3.3).
//
// The discovery chain is HTTP -> local file -> compiled-in. This program
// walks all three: it discovers a format from a live intranet server, then
// kills the server and shows the same locator being served by the
// compiled-in fallback ("a useful, if degraded, level of functionality"),
// and finally demonstrates the format service resolving a wire id whose
// XML metadata was never seen at all.
//
// Build & run:  ./examples/remote_discovery
#include <cstdio>
#include <memory>
#include <optional>

#include "core/context.hpp"
#include "http/http.hpp"
#include "transport/format_service.hpp"
#include "util/logging.hpp"

namespace {

const char* kTelemetrySchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="EngineTelemetry">
    <xsd:element name="tailNum" type="xsd:string" />
    <xsd:element name="engine" type="xsd:int" />
    <xsd:element name="egtC" type="xsd:double" />
    <xsd:element name="n1Pct" type="xsd:double" />
  </xsd:complexType>
</xsd:schema>
)";

struct EngineTelemetry {
  char* tailNum;
  int engine;
  double egtC;
  double n1Pct;
};

}  // namespace

int main() {
  using namespace omf;
  set_log_level(LogLevel::kInfo);  // show the discovery chain's decisions

  core::Context ctx;
  std::string locator;

  // --- Phase 1: remote discovery from a live server ---------------------------
  {
    http::Server meta_server;
    meta_server.put_document("/telemetry.xml", kTelemetrySchema);
    locator = meta_server.url_for("/telemetry.xml");
    std::printf("== phase 1: server up, discovering %s\n", locator.c_str());

    auto format = ctx.discover_format(locator, "EngineTelemetry");
    auto channel = ctx.bind<EngineTelemetry>(format);
    EngineTelemetry t{};
    t.tailNum = const_cast<char*>("N901DL");
    t.engine = 2;
    t.egtC = 612.5;
    t.n1Pct = 94.2;
    Buffer wire = channel.encode(&t);
    std::printf("   discovered + bound + encoded %zu bytes\n\n", wire.size());
  }  // server destroyed: the network is now "down"

  // --- Phase 2: server gone; compiled-in fallback ------------------------------
  std::printf("== phase 2: server down, same locator, fallback chain\n");
  ctx.compiled_in().add(locator, kTelemetrySchema);
  ctx.discovery().invalidate(locator);  // force a re-fetch
  auto format = ctx.discover_format(locator, "EngineTelemetry");
  auto stats = ctx.discovery().stats();
  std::printf("   served by fallback (fallbacks so far: %zu; fetch attempts: %zu)\n\n",
              stats.fallbacks, stats.fetches);

  // --- Phase 3: no XML at all — binary metadata from the format service --------
  std::printf("== phase 3: unknown wire id resolved via the format service\n");
  transport::FormatServiceServer service;
  service.publish(*format);

  EngineTelemetry t{};
  t.tailNum = const_cast<char*>("N302FR");
  t.engine = 1;
  t.egtC = 598.0;
  t.n1Pct = 91.7;
  Buffer wire = ctx.bind<EngineTelemetry>(format).encode(&t);

  core::Context stranger;  // has never seen any telemetry metadata
  pbio::FormatId id = pbio::Decoder::peek_format_id(wire.span());
  std::printf("   stranger sees unknown id %016llx, asking service on port %u\n",
              static_cast<unsigned long long>(id), service.port());
  transport::FormatServiceClient client(service.port());
  auto fetched = client.fetch(stranger.registry(), id);
  if (!fetched) {
    std::printf("   service did not know the format\n");
    return 1;
  }
  EngineTelemetry out{};
  pbio::DecodeArena arena;
  stranger.decoder().decode(wire.span(), *fetched, &out, arena);
  std::printf("   decoded: %s engine %d EGT %.1fC N1 %.1f%%\n", out.tailNum,
              out.engine, out.egtC, out.n1Pct);
  return 0;
}
