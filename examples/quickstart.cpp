// Quickstart: the whole xml2wire pipeline in one page.
//
//   1. Metadata: describe the message format in XML Schema (open, readable,
//      no compiled-in structure definition).
//   2. Discovery: hand the document to the runtime (here: compiled-in text;
//      see remote_discovery.cpp for the HTTP version).
//   3. Binding: associate the discovered format with a C struct.
//   4. Marshaling: encode to NDR binary, decode back — including the
//      zero-copy in-place decode used when sender and receiver match.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/context.hpp"

namespace {

// The compiled application structure...
struct StockQuote {
  char* symbol;
  double price;
  int volume;
  char* exchange;
};

// ...and its open metadata. In a deployment this text lives on a metadata
// server; nothing about the struct layout is encoded in it — field sizes
// and offsets are computed at discovery time for THIS machine.
const char* kQuoteSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="StockQuote">
    <xsd:element name="symbol" type="xsd:string" />
    <xsd:element name="price" type="xsd:double" />
    <xsd:element name="volume" type="xsd:int" />
    <xsd:element name="exchange" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>
)";

}  // namespace

int main() {
  omf::core::Context ctx;

  // -- Discovery -------------------------------------------------------------
  ctx.compiled_in().add("quote-metadata", kQuoteSchema);
  auto format = ctx.discover_format("quote-metadata", "StockQuote");
  std::printf("discovered format '%s': %zu fields, struct size %zu, id %016llx\n",
              format->name().c_str(), format->fields().size(),
              format->struct_size(),
              static_cast<unsigned long long>(format->id()));

  // -- Binding ---------------------------------------------------------------
  // bind<T> cross-checks the compiled struct against the metadata.
  auto channel = ctx.bind<StockQuote>(format);

  // -- Marshaling: encode ----------------------------------------------------
  StockQuote quote{};
  quote.symbol = const_cast<char*>("HAL");
  quote.price = 2001.25;
  quote.volume = 90210;
  quote.exchange = const_cast<char*>("NYSE");

  omf::Buffer wire = channel.encode(&quote);
  std::printf("\nencoded %zu bytes (16-byte header + %zu-byte struct + strings):\n%s\n",
              wire.size(), format->struct_size(), wire.hex(96).c_str());

  // -- Marshaling: copying decode ---------------------------------------------
  StockQuote decoded{};
  omf::pbio::DecodeArena arena;
  channel.decode(wire.span(), &decoded, arena);
  std::printf("\ndecoded (copying): %s %.2f x%d on %s\n", decoded.symbol,
              decoded.price, decoded.volume, decoded.exchange);

  // -- Marshaling: zero-copy decode -------------------------------------------
  // Same machine, same format: no conversion, no copy; the struct lives
  // inside the receive buffer and strings point into it.
  auto* in_place = static_cast<StockQuote*>(
      channel.decode_in_place(wire.data(), wire.size()));
  std::printf("decoded (in-place): %s %.2f x%d on %s\n", in_place->symbol,
              in_place->price, in_place->volume, in_place->exchange);

  // -- Bonus: no compiled struct at all ---------------------------------------
  // DynamicRecord builds messages from metadata alone — what a generic
  // monitoring tool (or a non-programmer's dashboard) would use.
  auto record = channel.make_record();
  record.set_string("symbol", "OMF");
  record.set_float("price", 0.31);
  record.set_int("volume", 1);
  record.set_string("exchange", "GIT");
  auto record_wire = record.encode();
  auto received = channel.make_record();
  received.from_wire(ctx.decoder(), record_wire.span());
  std::printf("\ndynamic record round-trip: %s\n",
              received.to_string().c_str());
  return 0;
}
