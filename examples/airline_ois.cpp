// The paper's motivating application (Figures 1 and 3): an airline
// operational information system.
//
// Capture points (FAA radar feed, weather feed, a data-mining job) publish
// structured events on an event backbone. Display points and access points
// subscribe. Every stream's format is discovered at run time from XML
// metadata on an intranet HTTP server — no format is compiled into any
// consumer. The weather feed arrives from a simulated big-endian SPARC
// host, so the display point exercises the heterogeneous receive path.
//
// Build & run:  ./examples/airline_ois
#include <atomic>
#include <cstdio>
#include <thread>

#include "core/context.hpp"
#include "http/http.hpp"
#include "pbio/synth.hpp"
#include "schema/reader.hpp"
#include "transport/backbone.hpp"

namespace {

const char* kPositionSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:annotation><xsd:documentation>
    Aircraft Situation Display feed, per the FAA ASD format.
  </xsd:documentation></xsd:annotation>
  <xsd:complexType name="ASDPosition">
    <xsd:element name="cntrId" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:int" />
    <xsd:element name="lat" type="xsd:double" />
    <xsd:element name="lon" type="xsd:double" />
    <xsd:element name="altFt" type="xsd:int" />
  </xsd:complexType>
</xsd:schema>
)";

const char* kWeatherSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Metar">
    <xsd:element name="station" type="xsd:string" />
    <xsd:element name="tempC" type="xsd:float" />
    <xsd:element name="windKt" type="xsd:int" />
    <xsd:element name="gustsKt" type="xsd:int" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>
)";

const char* kMiningSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="LoadFactorTrend">
    <xsd:element name="route" type="xsd:string" />
    <xsd:element name="days" type="xsd:int" />
    <xsd:element name="loadFactor" type="xsd:double" maxOccurs="days" />
  </xsd:complexType>
</xsd:schema>
)";

struct ASDPosition {
  char* cntrId;
  char* arln;
  int fltNum;
  double lat;
  double lon;
  int altFt;
};

}  // namespace

int main() {
  using namespace omf;

  // ---- Infrastructure: metadata server + event backbone ---------------------
  http::Server meta_server;
  meta_server.put_document("/schemas/asd-position.xml", kPositionSchema);
  meta_server.put_document("/schemas/metar.xml", kWeatherSchema);
  meta_server.put_document("/schemas/load-factor.xml", kMiningSchema);
  std::printf("[infra] metadata server on port %u\n", meta_server.port());

  transport::EventBackbone backbone;
  backbone.announce("faa.positions",
                    meta_server.url_for("/schemas/asd-position.xml"));
  backbone.announce("noaa.metar", meta_server.url_for("/schemas/metar.xml"));
  backbone.announce("mining.load-factor",
                    meta_server.url_for("/schemas/load-factor.xml"));

  constexpr int kPositionEvents = 5;
  constexpr int kWeatherEvents = 3;
  constexpr int kMiningEvents = 2;

  // Subscribe before producers start so nothing is missed.
  auto display_positions = backbone.subscribe("faa.positions");
  auto display_weather = backbone.subscribe("noaa.metar");
  auto gate_positions = backbone.subscribe("faa.positions");
  auto analytics = backbone.subscribe("mining.load-factor");

  // ---- Capture point 1: FAA radar (this machine's architecture) -------------
  std::thread faa_feed([&] {
    core::Context ctx;
    auto format = ctx.discover_format(
        *backbone.metadata_locator("faa.positions"), "ASDPosition");
    auto channel = ctx.bind<ASDPosition>(format);
    const char* airlines[] = {"DL", "UA", "WN", "AA", "F9"};
    for (int i = 0; i < kPositionEvents; ++i) {
      ASDPosition p{};
      p.cntrId = const_cast<char*>("ZTL");
      p.arln = const_cast<char*>(airlines[i % 5]);
      p.fltNum = 1000 + i;
      p.lat = 33.64 + i * 0.01;
      p.lon = -84.43 - i * 0.02;
      p.altFt = 31000 + 500 * i;
      backbone.publish("faa.positions", channel.encode(&p));
    }
    std::printf("[faa] published %d position events\n", kPositionEvents);
  });

  // ---- Capture point 2: NOAA weather from a big-endian SPARC host -----------
  std::thread noaa_feed([&] {
    core::Context ctx;
    auto native = ctx.discover_format(
        *backbone.metadata_locator("noaa.metar"), "Metar");
    // The remote host registered the same schema for ITS architecture; we
    // synthesize the byte-exact messages it would send.
    core::Xml2Wire sparc(ctx.registry(), arch::sparc64());
    auto foreign =
        sparc.register_schema(schema::read_schema_text(kWeatherSchema))[0];
    const char* stations[] = {"KATL", "KBOS", "KORD"};
    for (int i = 0; i < kWeatherEvents; ++i) {
      pbio::DynamicRecord report(native);
      report.set_string("station", stations[i % 3]);
      report.set_float("tempC", 18.5 + i);
      report.set_int("windKt", 8 + 2 * i);
      report.set_int_array("gustsKt",
                           std::vector<std::int64_t>{15 + i, 19 + i});
      backbone.publish("noaa.metar", pbio::synthesize_wire(*foreign, report));
    }
    std::printf("[noaa] published %d METARs (big-endian sender)\n",
                kWeatherEvents);
  });

  // ---- Capture point 3: data-mining job, dynamic-length payloads ------------
  std::thread mining_job([&] {
    core::Context ctx;
    auto format = ctx.discover_format(
        *backbone.metadata_locator("mining.load-factor"), "LoadFactorTrend");
    auto channel = ctx.bind_dynamic(format);
    for (int i = 0; i < kMiningEvents; ++i) {
      auto trend = channel.make_record();
      trend.set_string("route", i == 0 ? "ATL-MCO" : "ATL-LGA");
      std::vector<double> factors;
      for (int d = 0; d < 4 + i; ++d) factors.push_back(0.71 + 0.03 * d);
      trend.set_float_array("loadFactor", factors);
      backbone.publish("mining.load-factor", trend.encode());
    }
    std::printf("[mining] published %d trend reports\n", kMiningEvents);
  });

  faa_feed.join();
  noaa_feed.join();
  mining_job.join();

  // ---- Display point: positions (zero-copy) + weather (converted) -----------
  {
    core::Context ctx;
    auto pos_format = ctx.discover_format(
        *backbone.metadata_locator("faa.positions"), "ASDPosition");
    auto pos_channel = ctx.bind<ASDPosition>(pos_format);
    std::printf("\n[display] aircraft positions (decoded in place):\n");
    while (auto msg = display_positions.try_receive()) {
      auto* p = static_cast<ASDPosition*>(
          pos_channel.decode_in_place(msg->data(), msg->size()));
      std::printf("  %s%d  %.2fN %.2fW  FL%d\n", p->arln, p->fltNum, p->lat,
                  -p->lon, p->altFt / 100);
    }

    auto wx_format =
        ctx.discover_format(*backbone.metadata_locator("noaa.metar"), "Metar");
    // The wire format id belongs to the SPARC sender's layout. A receiver
    // must hold that metadata too — normally fetched from the format
    // service by id (see remote_discovery.cpp); here we register it from
    // the same schema, as the sender's machine did.
    core::Xml2Wire sparc_meta(ctx.registry(), arch::sparc64());
    sparc_meta.register_schema(schema::read_schema_text(kWeatherSchema));
    std::printf("[display] weather (converted from big-endian wire):\n");
    while (auto msg = display_weather.try_receive()) {
      auto hdr = pbio::Decoder::peek_header(msg->span());
      pbio::DynamicRecord metar(wx_format);
      metar.from_wire(ctx.decoder(), msg->span());
      std::printf("  %s %+.1fC wind %lldkt (wire order: %s)\n",
                  metar.get_string("station"), metar.get_float("tempC"),
                  static_cast<long long>(metar.get_int("windKt")),
                  hdr.byte_order == ByteOrder::kBig ? "big-endian"
                                                    : "little-endian");
    }
  }

  // ---- Access point: gate agent terminal, metadata-only ---------------------
  {
    core::Context ctx;
    auto format = ctx.discover_format(
        *backbone.metadata_locator("faa.positions"), "ASDPosition");
    std::printf("[gate-agent] flights seen: ");
    int n = 0;
    while (auto msg = gate_positions.try_receive()) {
      pbio::DynamicRecord rec(format);
      rec.from_wire(ctx.decoder(), msg->span());
      std::printf("%s%lld ", rec.get_string("arln"),
                  static_cast<long long>(rec.get_int("fltNum")));
      ++n;
    }
    std::printf("(%d events)\n", n);
  }

  // ---- Analytics consumer ----------------------------------------------------
  {
    core::Context ctx;
    auto format = ctx.discover_format(
        *backbone.metadata_locator("mining.load-factor"), "LoadFactorTrend");
    std::printf("[analytics] load-factor trends:\n");
    while (auto msg = analytics.try_receive()) {
      pbio::DynamicRecord rec(format);
      rec.from_wire(ctx.decoder(), msg->span());
      auto factors = rec.get_float_array("loadFactor");
      std::printf("  %s over %zu days:", rec.get_string("route"),
                  factors.size());
      for (double f : factors) std::printf(" %.0f%%", f * 100);
      std::printf("\n");
    }
  }

  std::printf("\n[infra] metadata server answered %zu discovery requests\n",
              meta_server.request_count());
  return 0;
}
