// Flight recorder: persistent NDR message archives.
//
// PBIO encodes structures "so that they may be transmitted in binary form
// over computer networks or written to data files in a heterogeneous
// computing environment". This example records a mixed event stream —
// including events captured on a (simulated) big-endian SPARC host — into
// a self-contained archive file, then replays it in a second "process"
// that starts with an empty format registry: every format it needs travels
// inside the file as a metadata bundle.
//
// Build & run:  ./examples/flight_recorder [archive-path]
#include <cstdio>

#include "core/xml2wire.hpp"
#include "pbio/decode.hpp"
#include "pbio/file.hpp"
#include "pbio/record.hpp"
#include "pbio/synth.hpp"
#include "schema/reader.hpp"

namespace {

const char* kPositionSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Position">
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:int" />
    <xsd:element name="lat" type="xsd:double" />
    <xsd:element name="lon" type="xsd:double" />
  </xsd:complexType>
</xsd:schema>
)";

const char* kMetarSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Metar">
    <xsd:element name="station" type="xsd:string" />
    <xsd:element name="tempC" type="xsd:double" />
    <xsd:element name="gustsKt" type="xsd:int" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace omf;
  std::string path = argc > 1 ? argv[1] : "/tmp/omf_flight_recorder.omf";

  // ---- Recording process -----------------------------------------------------
  {
    pbio::FormatRegistry registry;
    core::Xml2Wire native_meta(registry);
    auto position = native_meta.register_text(kPositionSchema)[0];
    auto metar = native_meta.register_text(kMetarSchema)[0];
    // The weather feed comes from a big-endian SPARC capture point.
    core::Xml2Wire sparc_meta(registry, arch::sparc64());
    auto metar_sparc = sparc_meta.register_text(kMetarSchema)[0];

    pbio::MessageFileWriter recorder(path);
    for (int i = 0; i < 3; ++i) {
      pbio::DynamicRecord p(position);
      p.set_string("arln", "DL");
      p.set_int("fltNum", 1500 + i);
      p.set_float("lat", 33.64 + 0.05 * i);
      p.set_float("lon", -84.43 - 0.05 * i);
      recorder.write(*position, p.encode());

      pbio::DynamicRecord w(metar);
      w.set_string("station", i % 2 == 0 ? "KATL" : "KBOS");
      w.set_float("tempC", 17.0 + i);
      w.set_int_array("gustsKt", std::vector<std::int64_t>{14 + i, 19 + i});
      // As the SPARC host would have written it: foreign layout, big-endian.
      recorder.write(*metar_sparc, pbio::synthesize_wire(*metar_sparc, w));
    }
    std::printf("recorded %zu messages (2 formats, one big-endian) to %s\n\n",
                recorder.messages_written(), path.c_str());
  }

  // ---- Replaying process: fresh registry, everything from the file ------------
  {
    pbio::FormatRegistry registry;
    // The replayer knows the schemas (its native views); the *wire* formats
    // (including the SPARC layout) come from the archive itself.
    core::Xml2Wire native_meta(registry);
    auto position = native_meta.register_text(kPositionSchema)[0];
    auto metar = native_meta.register_text(kMetarSchema)[0];

    pbio::MessageFileReader replay(path, registry);
    pbio::Decoder decoder(registry);
    while (auto msg = replay.next()) {
      auto header = pbio::Decoder::peek_header(msg->span());
      auto wire_format = registry.by_id(header.format_id);
      if (!wire_format) {
        std::printf("  !! unknown format %016llx\n",
                    static_cast<unsigned long long>(header.format_id));
        continue;
      }
      const bool is_position = wire_format->name() == "Position";
      pbio::DynamicRecord rec(is_position ? position : metar);
      rec.from_wire(decoder, msg->span());
      if (is_position) {
        std::printf("  position  %s%lld at %.2fN %.2fW\n",
                    rec.get_string("arln"),
                    static_cast<long long>(rec.get_int("fltNum")),
                    rec.get_float("lat"), -rec.get_float("lon"));
      } else {
        auto gusts = rec.get_int_array("gustsKt");
        std::printf("  metar     %s %+.1fC gusts %lld/%lldkt  (wire: %s)\n",
                    rec.get_string("station"), rec.get_float("tempC"),
                    static_cast<long long>(gusts[0]),
                    static_cast<long long>(gusts[1]),
                    header.byte_order == ByteOrder::kBig ? "big-endian"
                                                         : "little-endian");
      }
    }
    std::printf("\nreplayed %zu messages from a cold start — all metadata "
                "came from the archive\n",
                replay.messages_read());
  }
  std::remove(path.c_str());
  return 0;
}
