// omfc — the OMF metadata compiler / inspector CLI.
//
// The tooling face of open metadata: everything here operates on XML
// documents a non-programmer can read and edit, no recompilation anywhere.
//
//   omfc layout  <schema.xml> [profile]   field table (sizes/offsets) for a
//                                         target architecture profile
//   omfc header  <schema.xml> [type]      generate the C++ struct header
//   omfc ids     <schema.xml>             per-profile format ids (shows
//                                         which ABIs are wire-compatible)
//   omfc check   <schema.xml> <msg.xml>   classify a text message against
//                                         the document's types
//   omfc profiles                         list built-in architecture profiles
//
// Exit status: 0 on success, 1 on usage error, 2 on processing error.
#include <cstdio>
#include <cstring>

#include "core/classify.hpp"
#include "core/codegen.hpp"
#include "core/xml2wire.hpp"
#include "schema/reader.hpp"
#include "util/error.hpp"
#include "xml/parser.hpp"

namespace {

using namespace omf;

int usage() {
  std::fprintf(stderr,
               "usage: omfc layout  <schema.xml> [profile]\n"
               "       omfc header  <schema.xml> [type]\n"
               "       omfc ids     <schema.xml>\n"
               "       omfc check   <schema.xml> <message.xml>\n"
               "       omfc profiles\n");
  return 1;
}

std::vector<pbio::FormatHandle> register_all(pbio::FormatRegistry& registry,
                                             const std::string& path,
                                             const arch::Profile& profile) {
  core::Xml2Wire x2w(registry, profile);
  return x2w.register_document(xml::parse_file(path));
}

int cmd_layout(const std::string& path, const std::string& profile_name) {
  const arch::Profile& profile = arch::profile_by_name(profile_name);
  pbio::FormatRegistry registry;
  for (const auto& format : register_all(registry, path, profile)) {
    std::printf("format %-24s profile %-8s struct %4zu bytes  align %zu  id %016llx\n",
                format->name().c_str(), profile.name.c_str(),
                format->struct_size(), format->alignment(),
                static_cast<unsigned long long>(format->id()));
    std::printf("  %-20s %-24s %6s %8s\n", "field", "type", "size", "offset");
    for (const pbio::Field& f : format->fields()) {
      std::printf("  %-20s %-24s %6zu %8zu\n", f.name.c_str(),
                  pbio::type_string(f.type).c_str(), f.size, f.offset);
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_header(const std::string& path, const std::string& type_name) {
  pbio::FormatRegistry registry;
  auto formats = register_all(registry, path, arch::native());
  const pbio::FormatHandle* chosen = &formats.back();
  if (!type_name.empty()) {
    for (const auto& f : formats) {
      if (f->name() == type_name) {
        chosen = &f;
        break;
      }
    }
    if ((*chosen)->name() != type_name) {
      std::fprintf(stderr, "omfc: no complexType named '%s'\n",
                   type_name.c_str());
      return 2;
    }
  }
  std::fputs(core::generate_cpp_header(**chosen).c_str(), stdout);
  return 0;
}

int cmd_ids(const std::string& path) {
  std::printf("%-24s %-10s %-22s %10s %16s\n", "format", "profile", "abi",
              "struct", "id");
  for (const arch::Profile* profile : arch::all_profiles()) {
    pbio::FormatRegistry registry;
    for (const auto& format : register_all(registry, path, *profile)) {
      std::printf("%-24s %-10s %-22s %9zuB %016llx\n", format->name().c_str(),
                  profile->name.c_str(), profile->canonical().c_str(),
                  format->struct_size(),
                  static_cast<unsigned long long>(format->id()));
    }
  }
  std::printf("\nidentical ids = wire-compatible without conversion\n");
  return 0;
}

int cmd_check(const std::string& schema_path, const std::string& msg_path) {
  schema::SchemaDocument candidates =
      schema::read_schema(xml::parse_file(schema_path));
  xml::Document message = xml::parse_file(msg_path);
  auto scores = core::classify_text_message(*message.root, candidates);
  std::printf("%-24s %7s %8s %8s %11s\n", "complexType", "score", "matched",
              "missing", "unexpected");
  for (const auto& s : scores) {
    std::printf("%-24s %6.2f%% %8zu %8zu %11zu\n", s.type_name.c_str(),
                s.score * 100.0, s.matched, s.missing, s.unexpected);
  }
  if (!scores.empty() && scores.front().score == 1.0) {
    std::printf("\nmessage conforms to '%s'\n",
                scores.front().type_name.c_str());
  }
  return 0;
}

int cmd_profiles() {
  std::printf("%-10s %-6s %8s %6s %6s %10s\n", "name", "order", "pointer",
              "int", "long", "align-cap");
  for (const arch::Profile* p : arch::all_profiles()) {
    std::printf("%-10s %-6s %7uB %5uB %5uB %9uB\n", p->name.c_str(),
                p->byte_order == ByteOrder::kBig ? "BE" : "LE",
                p->pointer_size, p->int_size, p->long_size, p->alignment_cap);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string command = argv[1];
  try {
    if (command == "profiles") {
      return cmd_profiles();
    }
    if (command == "layout" && argc >= 3) {
      return cmd_layout(argv[2], argc >= 4 ? argv[3] : "native");
    }
    if (command == "header" && argc >= 3) {
      return cmd_header(argv[2], argc >= 4 ? argv[3] : "");
    }
    if (command == "ids" && argc >= 3) {
      return cmd_ids(argv[2]);
    }
    if (command == "check" && argc >= 4) {
      return cmd_check(argv[2], argv[3]);
    }
  } catch (const omf::Error& e) {
    std::fprintf(stderr, "omfc: %s\n", e.what());
    return 2;
  }
  return usage();
}
