// wire2xml: the inverse tool — open up compiled-in metadata.
//
// A legacy application defined its formats the PBIO-native way (IOField
// lists with sizeof/offsetof). This tool republishes them as open XML
// Schema metadata, and also generates the C++ struct header a *new*
// endpoint would compile against — the paper's future-work item of
// generating language-level message representations.
//
// Build & run:  ./examples/wire2xml
#include <cstddef>
#include <cstdio>

#include "core/codegen.hpp"
#include "core/xml2wire.hpp"
#include "pbio/format.hpp"
#include "schema/generator.hpp"

namespace {

// The legacy compiled-in definitions (the paper's Appendix A, structures
// B and C/D).
struct AsdOff {
  char* cntrId;
  char* arln;
  int fltNum;
  char* equip;
  char* org;
  char* dest;
  unsigned long off[5];
  unsigned long* eta;
  int eta_count;
};

struct ThreeAsdOffs {
  AsdOff one;
  double bart;
  AsdOff two;
  double lisa;
  AsdOff three;
};

}  // namespace

int main() {
  using namespace omf;

  pbio::FormatRegistry registry;
  std::vector<pbio::IOField> asdoff_fields = {
      {"cntrId", "string", sizeof(char*), offsetof(AsdOff, cntrId)},
      {"arln", "string", sizeof(char*), offsetof(AsdOff, arln)},
      {"fltNum", "integer", sizeof(int), offsetof(AsdOff, fltNum)},
      {"equip", "string", sizeof(char*), offsetof(AsdOff, equip)},
      {"org", "string", sizeof(char*), offsetof(AsdOff, org)},
      {"dest", "string", sizeof(char*), offsetof(AsdOff, dest)},
      {"off", "unsigned[5]", sizeof(unsigned long), offsetof(AsdOff, off)},
      {"eta", "unsigned[eta_count]", sizeof(unsigned long),
       offsetof(AsdOff, eta)},
      {"eta_count", "integer", sizeof(int), offsetof(AsdOff, eta_count)},
  };
  registry.register_format("ASDOffEvent", asdoff_fields, sizeof(AsdOff));

  std::vector<pbio::IOField> three_fields = {
      {"one", "ASDOffEvent", sizeof(AsdOff), offsetof(ThreeAsdOffs, one)},
      {"bart", "float", sizeof(double), offsetof(ThreeAsdOffs, bart)},
      {"two", "ASDOffEvent", sizeof(AsdOff), offsetof(ThreeAsdOffs, two)},
      {"lisa", "float", sizeof(double), offsetof(ThreeAsdOffs, lisa)},
      {"three", "ASDOffEvent", sizeof(AsdOff), offsetof(ThreeAsdOffs, three)},
  };
  auto format = registry.register_format("threeASDOffs", three_fields,
                                         sizeof(ThreeAsdOffs));

  // --- Compiled metadata -> open XML Schema document --------------------------
  schema::GenerateOptions opts;
  opts.documentation =
      "Republished from compiled-in PBIO metadata by wire2xml.";
  std::string schema_text = schema::generate_schema_text(*format, opts);
  std::printf("=== XML Schema metadata ===\n%s\n", schema_text.c_str());

  // --- Verify the round trip: schema -> xml2wire -> identical format ----------
  pbio::FormatRegistry verify;
  core::Xml2Wire x2w(verify);
  auto reborn = x2w.register_text(schema_text);
  bool identical = reborn.back()->id() == format->id();
  std::printf("=== round-trip check ===\nregenerated format id %s the "
              "compiled one (%016llx)\n\n",
              identical ? "MATCHES" : "DOES NOT MATCH",
              static_cast<unsigned long long>(format->id()));

  // --- Open metadata -> C++ struct definitions for a new endpoint -------------
  std::string header = core::generate_cpp_header(*reborn.back());
  std::printf("=== generated C++ header ===\n%s", header.c_str());
  return identical ? 0 : 1;
}
