// Property tests: randomly generated message formats and values must
// round-trip through every codec (NDR homogeneous, NDR heterogeneous via
// synthesized foreign messages, XDR, text-XML), and xml2wire registration
// must agree with itself across independent registries.
#include <gtest/gtest.h>

#include "cdr/cdr.hpp"
#include "core/xml2wire.hpp"
#include "pbio/decode.hpp"
#include "pbio/record.hpp"
#include "pbio/synth.hpp"
#include "schema/generator.hpp"
#include "textxml/textxml.hpp"
#include "util/rng.hpp"
#include "xdr/xdr.hpp"

namespace omf {
namespace {

using pbio::ArrayKind;
using pbio::DecodeArena;
using pbio::Decoder;
using pbio::DynamicRecord;
using pbio::Field;
using pbio::FieldClass;
using pbio::FormatHandle;
using pbio::FormatRegistry;

/// Generates a random schema document with `n_types` complexTypes; later
/// types may nest earlier ones. Char fields are excluded (the synthesizer
/// does not support char arrays, and chars add nothing over byte ints).
std::string make_random_schema(Rng& rng, int n_types) {
  static const char* kScalarTypes[] = {
      "xsd:int",          "xsd:long",          "xsd:short",
      "xsd:byte",         "xsd:unsignedInt",   "xsd:unsignedLong",
      "xsd:unsignedShort", "xsd:unsignedByte", "xsd:float",
      "xsd:double",       "xsd:boolean",       "xsd:string",
      "omf:char",
  };
  std::string out =
      "<?xml version=\"1.0\"?>\n"
      "<xsd:schema xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\"\n"
      "            xmlns:omf=\"http://omf.example.org/schema-ext\">\n";
  std::vector<std::string> earlier_types;
  for (int t = 0; t < n_types; ++t) {
    std::string type_name = "T" + std::to_string(t) + "_" + rng.identifier(4);
    out += "  <xsd:complexType name=\"" + type_name + "\">\n";
    int n_fields = static_cast<int>(rng.range(1, 6));
    for (int i = 0; i < n_fields; ++i) {
      std::string field_name = "f" + std::to_string(i) + rng.identifier(3);
      bool use_nested = !earlier_types.empty() && rng.chance(0.25);
      std::string type =
          use_nested ? earlier_types[rng.below(earlier_types.size())]
                     : kScalarTypes[rng.below(std::size(kScalarTypes))];
      bool is_string = type == "xsd:string";
      std::string occurs;
      if (!is_string) {
        double roll = rng.uniform();
        if (roll < 0.15) {
          auto n = rng.range(2, 5);
          occurs = " minOccurs=\"" + std::to_string(n) + "\" maxOccurs=\"" +
                   std::to_string(n) + "\"";
        } else if (roll < 0.30) {
          occurs = " maxOccurs=\"*\"";
        }
      }
      out += "    <xsd:element name=\"" + field_name + "\" type=\"" + type +
             "\"" + occurs + " />\n";
    }
    out += "  </xsd:complexType>\n";
    earlier_types.push_back(type_name);
  }
  out += "</xsd:schema>\n";
  return out;
}

/// Is this field the count field of some dynamic array in the format?
bool is_count_field(const pbio::Format& f, std::size_t index) {
  for (const Field& field : f.fields()) {
    if (field.count_field_index == index) return true;
  }
  return false;
}

std::int64_t random_value_for_width(Rng& rng, std::size_t size, bool is_signed) {
  // Values always fit the field so round-trips are exact.
  std::int64_t lo, hi;
  switch (size) {
    case 1: lo = is_signed ? -128 : 0; hi = is_signed ? 127 : 255; break;
    case 2: lo = is_signed ? -32768 : 0; hi = is_signed ? 32767 : 65535; break;
    case 4:
      lo = is_signed ? -2147483648ll : 0;
      hi = is_signed ? 2147483647ll : 4294967295ll;
      break;
    default:
      lo = is_signed ? -(1ll << 62) : 0;
      hi = (1ll << 62);
      break;
  }
  return rng.range(lo, hi);
}

double random_float_for_width(Rng& rng, std::size_t size) {
  // Keep float32 values exactly representable.
  if (size == 4) {
    return static_cast<float>(rng.range(-1000000, 1000000)) / 64.0f;
  }
  return static_cast<double>(rng.range(-1'000'000'000, 1'000'000'000)) /
         4096.0;
}

/// `width_clamp` bounds the integer widths values are generated for: the
/// heterogeneous sweep sends through 32-bit profiles where C long is 4
/// bytes, so values must fit the narrowest architecture in play.
/// `null_strings` allows leaving some strings null; XDR has no null-string
/// representation (RFC 1014), so its round-trip test turns this off.
void fill_random(DynamicRecord& rec, Rng& rng, int depth = 0,
                 std::size_t width_clamp = 8, bool null_strings = true);

void fill_random_field(DynamicRecord& rec, const pbio::Format& format,
                       std::size_t index, Rng& rng, int depth,
                       std::size_t width_clamp, bool null_strings) {
  const Field& f = format.fields()[index];
  std::size_t width = f.size < width_clamp ? f.size : width_clamp;
  bool is_signed = f.type.cls == FieldClass::kInteger;
  std::size_t static_n =
      f.type.array == ArrayKind::kStatic ? f.type.static_count : 0;
  std::size_t dyn_n = static_cast<std::size_t>(rng.range(0, 4));

  switch (f.type.cls) {
    case FieldClass::kString: {
      if (null_strings && rng.chance(0.15)) break;  // leave null sometimes
      rec.set_string(f.name, rng.identifier(rng.below(24)));
      break;
    }
    case FieldClass::kChar:
      if (f.type.array == ArrayKind::kNone) {
        rec.set_char(f.name, static_cast<char>('a' + rng.below(26)));
      } else {
        std::size_t n = static_n != 0 ? static_n : dyn_n;
        std::string bytes;
        for (std::size_t i = 0; i < n; ++i) {
          bytes.push_back(static_cast<char>(rng.below(256)));
        }
        rec.set_char_array(f.name, bytes);
      }
      break;
    case FieldClass::kFloat: {
      if (f.type.array == ArrayKind::kNone) {
        rec.set_float(f.name, random_float_for_width(rng, f.size));
      } else {
        std::size_t n = static_n != 0 ? static_n : dyn_n;
        std::vector<double> vals(n);
        for (auto& v : vals) v = random_float_for_width(rng, f.size);
        rec.set_float_array(f.name, vals);
      }
      break;
    }
    case FieldClass::kInteger:
    case FieldClass::kUnsigned: {
      if (f.type.array == ArrayKind::kNone) {
        rec.set_int(f.name, random_value_for_width(rng, width, is_signed));
      } else {
        std::size_t n = static_n != 0 ? static_n : dyn_n;
        std::vector<std::int64_t> vals(n);
        for (auto& v : vals) {
          v = random_value_for_width(rng, width, is_signed);
        }
        rec.set_int_array(f.name, vals);
      }
      break;
    }
    case FieldClass::kNested: {
      std::size_t n = 1;
      if (f.type.array == ArrayKind::kStatic) {
        n = static_n;
      } else if (f.type.array == ArrayKind::kDynamic) {
        n = dyn_n;
        rec.resize_nested_array(f.name, n);
      }
      for (std::size_t i = 0; i < n; ++i) {
        auto sub = rec.nested(f.name, i);
        fill_random(sub, rng, depth + 1, width_clamp, null_strings);
      }
      break;
    }
  }
}

void fill_random(DynamicRecord& rec, Rng& rng, int depth,
                 std::size_t width_clamp, bool null_strings) {
  const pbio::Format& format = rec.format();
  // Arrays after scalars so count fields set by array setters stay intact.
  for (std::size_t i = 0; i < format.fields().size(); ++i) {
    if (is_count_field(format, i)) continue;
    if (format.fields()[i].type.array == ArrayKind::kDynamic) continue;
    fill_random_field(rec, format, i, rng, depth, width_clamp, null_strings);
  }
  for (std::size_t i = 0; i < format.fields().size(); ++i) {
    if (format.fields()[i].type.array == ArrayKind::kDynamic) {
      fill_random_field(rec, format, i, rng, depth, width_clamp,
                        null_strings);
    }
  }
}

class RandomFormats : public ::testing::TestWithParam<int> {};

TEST_P(RandomFormats, NdrHomogeneousRoundTrip) {
  Rng rng(1000 + GetParam());
  FormatRegistry reg;
  core::Xml2Wire x2w(reg);
  auto handles = x2w.register_text(make_random_schema(rng, 3));
  Decoder dec(reg);
  for (const FormatHandle& f : handles) {
    DynamicRecord in(f);
    fill_random(in, rng);
    Buffer wire = in.encode();
    DynamicRecord out(f);
    out.from_wire(dec, wire.span());
    EXPECT_TRUE(in.deep_equals(out))
        << "format " << f->name() << "\nin:  " << in.to_string()
        << "\nout: " << out.to_string();
  }
}

TEST_P(RandomFormats, NdrHeterogeneousRoundTrip) {
  Rng rng(2000 + GetParam());
  std::string schema = make_random_schema(rng, 3);
  FormatRegistry reg;
  core::Xml2Wire native_side(reg, arch::native());
  auto native_handles = native_side.register_text(schema);

  for (const char* profile_name : {"i386", "sparc64", "sparc32", "arm32"}) {
    core::Xml2Wire foreign_side(reg, arch::profile_by_name(profile_name));
    auto foreign_handles = foreign_side.register_text(schema);
    Decoder dec(reg);
    for (std::size_t i = 0; i < native_handles.size(); ++i) {
      DynamicRecord in(native_handles[i]);
      fill_random(in, rng, 0, /*width_clamp=*/4);
      Buffer wire = pbio::synthesize_wire(*foreign_handles[i], in);
      DynamicRecord out(native_handles[i]);
      out.from_wire(dec, wire.span());
      EXPECT_TRUE(in.deep_equals(out))
          << "format " << native_handles[i]->name() << " from "
          << profile_name << "\nin:  " << in.to_string()
          << "\nout: " << out.to_string();
    }
  }
}

TEST_P(RandomFormats, KernelAndInterpreterPlansAgree) {
  // The type-specialized conversion kernels must be observationally
  // identical to the interpreted per-element dispatch on arbitrary formats
  // and senders.
  Rng rng(8000 + GetParam());
  std::string schema = make_random_schema(rng, 3);
  FormatRegistry reg;
  core::Xml2Wire native_side(reg, arch::native());
  auto native_handles = native_side.register_text(schema);

  for (const char* profile_name : {"i386", "sparc64", "sparc32", "arm32"}) {
    core::Xml2Wire foreign_side(reg, arch::profile_by_name(profile_name));
    auto foreign_handles = foreign_side.register_text(schema);
    Decoder with_kernels(reg, nullptr, pbio::PlanOptions{true, true});
    Decoder interpreted(reg, nullptr, pbio::PlanOptions{true, false});
    for (std::size_t i = 0; i < native_handles.size(); ++i) {
      DynamicRecord in(native_handles[i]);
      fill_random(in, rng, 0, /*width_clamp=*/4);
      Buffer wire = pbio::synthesize_wire(*foreign_handles[i], in);
      DynamicRecord a(native_handles[i]);
      a.from_wire(with_kernels, wire.span());
      DynamicRecord b(native_handles[i]);
      b.from_wire(interpreted, wire.span());
      EXPECT_TRUE(a.deep_equals(b))
          << "format " << native_handles[i]->name() << " from "
          << profile_name << "\nkernels:     " << a.to_string()
          << "\ninterpreted: " << b.to_string();
      EXPECT_TRUE(in.deep_equals(a))
          << "format " << native_handles[i]->name() << " from "
          << profile_name << "\nin:  " << in.to_string()
          << "\nout: " << a.to_string();
    }
  }
}

TEST_P(RandomFormats, XdrRoundTrip) {
  Rng rng(3000 + GetParam());
  FormatRegistry reg;
  core::Xml2Wire x2w(reg);
  auto handles = x2w.register_text(make_random_schema(rng, 3));
  for (const FormatHandle& f : handles) {
    DynamicRecord in(f);
    fill_random(in, rng, 0, 8, /*null_strings=*/false);
    Buffer wire = xdr::encode_buffer(*f, in.data());
    DynamicRecord out(f);
    DecodeArena arena;
    xdr::decode(*f, wire.span(), out.data(), arena);
    EXPECT_TRUE(in.deep_equals(out))
        << "format " << f->name() << "\nin:  " << in.to_string()
        << "\nout: " << out.to_string();
  }
}

TEST_P(RandomFormats, CdrRoundTrip) {
  Rng rng(7000 + GetParam());
  FormatRegistry reg;
  core::Xml2Wire x2w(reg);
  auto handles = x2w.register_text(make_random_schema(rng, 3));
  for (const FormatHandle& f : handles) {
    DynamicRecord in(f);
    fill_random(in, rng);
    Buffer wire = cdr::encode_buffer(*f, in.data());
    DynamicRecord out(f);
    DecodeArena arena;
    cdr::decode(*f, wire.span(), out.data(), arena);
    EXPECT_TRUE(in.deep_equals(out))
        << "format " << f->name() << "\nin:  " << in.to_string()
        << "\nout: " << out.to_string();
  }
}

TEST_P(RandomFormats, TextXmlRoundTrip) {
  Rng rng(4000 + GetParam());
  FormatRegistry reg;
  core::Xml2Wire x2w(reg);
  auto handles = x2w.register_text(make_random_schema(rng, 3));
  for (const FormatHandle& f : handles) {
    DynamicRecord in(f);
    fill_random(in, rng);
    std::string doc = textxml::encode_text(*f, in.data());
    DynamicRecord out(f);
    DecodeArena arena;
    textxml::decode(*f,
                    {reinterpret_cast<const std::uint8_t*>(doc.data()),
                     doc.size()},
                    out.data(), arena);
    EXPECT_TRUE(in.deep_equals(out))
        << "format " << f->name() << "\nin:  " << in.to_string()
        << "\nout: " << out.to_string() << "\ndoc: " << doc;
  }
}

TEST_P(RandomFormats, IndependentRegistrationsAgree) {
  Rng rng(5000 + GetParam());
  std::string schema = make_random_schema(rng, 3);
  FormatRegistry r1, r2;
  core::Xml2Wire a(r1), b(r2);
  auto h1 = a.register_text(schema);
  auto h2 = b.register_text(schema);
  ASSERT_EQ(h1.size(), h2.size());
  for (std::size_t i = 0; i < h1.size(); ++i) {
    EXPECT_EQ(h1[i]->id(), h2[i]->id());
    EXPECT_EQ(h1[i]->struct_size(), h2[i]->struct_size());
  }
}

TEST_P(RandomFormats, SchemaGeneratorRoundTrip) {
  Rng rng(6000 + GetParam());
  std::string schema = make_random_schema(rng, 3);
  FormatRegistry r1;
  core::Xml2Wire a(r1);
  auto originals = a.register_text(schema);

  // Format -> generated schema -> re-registration must reproduce the id.
  FormatRegistry r2;
  core::Xml2Wire b(r2);
  for (const FormatHandle& f : originals) {
    std::string text = schema::generate_schema_text(*f);
    auto again = b.register_text(text);
    EXPECT_EQ(again.back()->id(), f->id()) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFormats, ::testing::Range(0, 12));

}  // namespace
}  // namespace omf
