// xml2wire registration: XML metadata -> PBIO formats, layout agreement
// with the compiler, implicit count synthesis, codegen.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "core/codegen.hpp"
#include "core/xml2wire.hpp"
#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "test_structs.hpp"

namespace omf {
namespace {

using namespace omf::testing;
using core::Xml2Wire;
using pbio::FormatRegistry;

TEST(Xml2Wire, StructureALayoutMatchesCompiler) {
  FormatRegistry reg;
  Xml2Wire x2w(reg);
  auto handles = x2w.register_text(kAsdOffSchema);
  ASSERT_EQ(handles.size(), 1u);
  const pbio::Format& f = *handles[0];
  EXPECT_EQ(f.struct_size(), sizeof(AsdOff));
  EXPECT_EQ(f.field_named("cntrId")->offset, offsetof(AsdOff, cntrId));
  EXPECT_EQ(f.field_named("fltNum")->offset, offsetof(AsdOff, fltNum));
  EXPECT_EQ(f.field_named("fltNum")->size, sizeof(int));
  EXPECT_EQ(f.field_named("off")->offset, offsetof(AsdOff, off));
  EXPECT_EQ(f.field_named("off")->size, sizeof(unsigned long));
  EXPECT_EQ(f.field_named("eta")->offset, offsetof(AsdOff, eta));
}

TEST(Xml2Wire, StructureBLayoutMatchesCompiler) {
  FormatRegistry reg;
  Xml2Wire x2w(reg);
  const pbio::Format& f = *x2w.register_text(kAsdOffBSchema)[0];
  EXPECT_EQ(f.struct_size(), sizeof(AsdOffB));
  EXPECT_EQ(f.field_named("off")->offset, offsetof(AsdOffB, off));
  EXPECT_EQ(f.field_named("eta")->offset, offsetof(AsdOffB, eta));
  EXPECT_EQ(f.field_named("eta_count")->offset, offsetof(AsdOffB, eta_count));
  EXPECT_EQ(f.field_named("eta")->type.array, pbio::ArrayKind::kDynamic);
  EXPECT_EQ(f.field_named("eta")->type.size_field, "eta_count");
}

TEST(Xml2Wire, StructureCDLayoutMatchesCompiler) {
  FormatRegistry reg;
  Xml2Wire x2w(reg);
  auto handles = x2w.register_text(kThreeAsdOffsSchema);
  ASSERT_EQ(handles.size(), 2u);
  const pbio::Format& c = *handles[1];
  EXPECT_EQ(c.struct_size(), sizeof(ThreeAsdOffs));
  EXPECT_EQ(c.field_named("one")->offset, offsetof(ThreeAsdOffs, one));
  EXPECT_EQ(c.field_named("bart")->offset, offsetof(ThreeAsdOffs, bart));
  EXPECT_EQ(c.field_named("two")->offset, offsetof(ThreeAsdOffs, two));
  EXPECT_EQ(c.field_named("three")->offset, offsetof(ThreeAsdOffs, three));
}

TEST(Xml2Wire, MatchesPbioNativeRegistrationExactly) {
  // Headline Table-1 property: xml2wire registration produces the *same*
  // formats (same ids, hence identical wire compatibility) as compiled-in
  // IOField registration — only the discovery method differs.
  FormatRegistry reg_native, reg_xml;
  auto [nb, nc] = register_nested_pair(reg_native);

  Xml2Wire x2w(reg_xml);
  auto handles = x2w.register_text(kThreeAsdOffsSchema);
  EXPECT_EQ(handles[0]->id(), nb->id());
  EXPECT_EQ(handles[1]->id(), nc->id());
}

TEST(Xml2Wire, RoundTripWithCompiledStruct) {
  FormatRegistry reg;
  Xml2Wire x2w(reg);
  auto f = x2w.register_text(kAsdOffBSchema)[0];

  unsigned long etas[4];
  AsdOffB in;
  fill_asdoffb(in, etas, 4, 9);
  Buffer wire = pbio::encode(*f, &in);

  pbio::Decoder dec(reg);
  AsdOffB out{};
  pbio::DecodeArena arena;
  dec.decode(wire.span(), *f, &out, arena);
  EXPECT_TRUE(asdoffb_equal(in, out));
}

TEST(Xml2Wire, UnboundedArraySynthesizesCountField) {
  const char* schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="T">
    <xsd:element name="vals" type="xsd:double" maxOccurs="*" />
    <xsd:element name="tag" type="xsd:int" />
  </xsd:complexType>
</xsd:schema>)";
  FormatRegistry reg;
  Xml2Wire x2w(reg);
  const pbio::Format& f = *x2w.register_text(schema)[0];
  ASSERT_EQ(f.fields().size(), 3u);
  EXPECT_EQ(f.fields()[0].name, "vals");
  EXPECT_EQ(f.fields()[1].name, "vals_count");  // synthesized, right after
  EXPECT_EQ(f.fields()[2].name, "tag");
  EXPECT_EQ(f.fields()[0].type.size_field, "vals_count");

  // Matches: struct T { double* vals; int vals_count; int tag; };
  struct T {
    double* vals;
    int vals_count;
    int tag;
  };
  EXPECT_EQ(f.struct_size(), sizeof(T));
  EXPECT_EQ(f.fields()[1].offset, offsetof(T, vals_count));
}

TEST(Xml2Wire, UnboundedArrayReusesDeclaredCountField) {
  const char* schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="T">
    <xsd:element name="vals" type="xsd:int" maxOccurs="*" />
    <xsd:element name="vals_count" type="xsd:int" />
  </xsd:complexType>
</xsd:schema>)";
  FormatRegistry reg;
  Xml2Wire x2w(reg);
  const pbio::Format& f = *x2w.register_text(schema)[0];
  ASSERT_EQ(f.fields().size(), 2u);  // no duplicate synthesized
}

TEST(Xml2Wire, ForwardReferenceToNestedTypeFails) {
  const char* schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Outer">
    <xsd:element name="in" type="Inner" />
  </xsd:complexType>
  <xsd:complexType name="Inner">
    <xsd:element name="x" type="xsd:int" />
  </xsd:complexType>
</xsd:schema>)";
  FormatRegistry reg;
  Xml2Wire x2w(reg);
  EXPECT_THROW(x2w.register_text(schema), FormatError);
}

TEST(Xml2Wire, ArrayOfStringsRejected) {
  const char* schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="T">
    <xsd:element name="names" type="xsd:string" maxOccurs="4" />
  </xsd:complexType>
</xsd:schema>)";
  FormatRegistry reg;
  Xml2Wire x2w(reg);
  EXPECT_THROW(x2w.register_text(schema), FormatError);
}

TEST(Xml2Wire, ForeignProfileChangesLayout) {
  FormatRegistry reg;
  Xml2Wire native_side(reg, arch::native());
  Xml2Wire i386_side(reg, arch::i386());
  auto n = native_side.register_text(kAsdOffSchema)[0];
  auto f = i386_side.register_text(kAsdOffSchema)[0];
  // Six pointers shrink from 8 to 4 bytes; unsigned long from 8 to 4.
  EXPECT_LT(f->struct_size(), n->struct_size());
  EXPECT_EQ(f->field_named("cntrId")->size, 4u);
  EXPECT_EQ(f->field_named("off")->size, 4u);
}

TEST(Xml2Wire, BooleanAndShortAndByteWidths) {
  const char* schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="T">
    <xsd:element name="flag" type="xsd:boolean" />
    <xsd:element name="s" type="xsd:short" />
    <xsd:element name="b" type="xsd:byte" />
    <xsd:element name="us" type="xsd:unsignedShort" />
    <xsd:element name="ub" type="xsd:unsignedByte" />
  </xsd:complexType>
</xsd:schema>)";
  FormatRegistry reg;
  Xml2Wire x2w(reg);
  const pbio::Format& f = *x2w.register_text(schema)[0];
  EXPECT_EQ(f.field_named("flag")->size, 1u);
  EXPECT_EQ(f.field_named("s")->size, 2u);
  EXPECT_EQ(f.field_named("s")->type.cls, pbio::FieldClass::kInteger);
  EXPECT_EQ(f.field_named("b")->size, 1u);
  EXPECT_EQ(f.field_named("us")->type.cls, pbio::FieldClass::kUnsigned);
  EXPECT_EQ(f.field_named("ub")->size, 1u);
  struct T {
    unsigned char flag;
    short s;
    signed char b;
    unsigned short us;
    unsigned char ub;
  };
  EXPECT_EQ(f.struct_size(), sizeof(T));
}

// --- Codegen ---------------------------------------------------------------------

TEST(Codegen, EmitsCompilableLookingHeader) {
  FormatRegistry reg;
  auto [b, c] = register_nested_pair(reg);
  std::string header = core::generate_cpp_header(*c);
  // Nested struct first, then the outer one.
  std::size_t pos_b = header.find("struct ASDOffEventB {");
  std::size_t pos_c = header.find("struct threeASDOffs {");
  ASSERT_NE(pos_b, std::string::npos);
  ASSERT_NE(pos_c, std::string::npos);
  EXPECT_LT(pos_b, pos_c);
  EXPECT_NE(header.find("char* cntrId;"), std::string::npos);
  EXPECT_NE(header.find("unsigned long off[5];"), std::string::npos);
  EXPECT_NE(header.find("unsigned long* eta;"), std::string::npos);
  EXPECT_NE(header.find("static_assert(sizeof(ASDOffEventB) == " +
                        std::to_string(sizeof(AsdOffB))),
            std::string::npos);
  EXPECT_NE(header.find("offsetof(threeASDOffs, lisa)"), std::string::npos);
}

TEST(Codegen, GeneratedHeaderActuallyCompiles) {
  // Strongest possible layout proof: compile the generated header and let
  // its static_asserts check sizeof/offsetof against the metadata.
  FormatRegistry reg;
  core::Xml2Wire x2w(reg);
  auto f = x2w.register_text(kThreeAsdOffsSchema)[1];
  std::string header = core::generate_cpp_header(*f);

  std::string dir = ::testing::TempDir();
  std::string hpath = dir + "/omf_codegen_test.hpp";
  std::string cpath = dir + "/omf_codegen_test.cpp";
  {
    std::ofstream h(hpath);
    h << header;
    std::ofstream c(cpath);
    c << "#include \"omf_codegen_test.hpp\"\n"
      << "int main() { threeASDOffs t{}; (void)t; return 0; }\n";
  }
  std::string cmd = "c++ -std=c++20 -fsyntax-only -I" + dir + " " + cpath +
                    " 2>/dev/null";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << header;
}

TEST(Codegen, RejectsForeignProfiles) {
  FormatRegistry reg;
  std::vector<pbio::FieldSpec> specs = {{"x", "integer", 4}};
  auto f = reg.register_computed("T", specs, arch::sparc64());
  EXPECT_THROW(core::generate_cpp_header(*f), FormatError);
}

TEST(Codegen, IncludeGuardOption) {
  FormatRegistry reg;
  std::vector<pbio::FieldSpec> specs = {{"x", "integer", 4}};
  auto f = reg.register_computed("T", specs);
  core::CodegenOptions opts;
  opts.include_guard = "OMF_T_H";
  std::string header = core::generate_cpp_header(*f, opts);
  EXPECT_NE(header.find("#ifndef OMF_T_H"), std::string::npos);
  EXPECT_NE(header.find("#endif"), std::string::npos);
  EXPECT_EQ(header.find("#pragma once"), std::string::npos);
}

}  // namespace
}  // namespace omf
