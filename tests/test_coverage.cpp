// Deep-coverage tests: the gateway re-encoder plus corners of pbio/util
// the main suites exercise only incidentally.
#include <gtest/gtest.h>

#include "core/gateway.hpp"
#include "core/xml2wire.hpp"
#include "pbio/arena.hpp"
#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "pbio/record.hpp"
#include "pbio/synth.hpp"
#include "pbio/wire.hpp"
#include "test_structs.hpp"

namespace omf {
namespace {

using namespace omf::testing;

// --- Gateway -------------------------------------------------------------------

const char* kGatewaySchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Reading">
    <xsd:element name="sensor" type="xsd:string" />
    <xsd:element name="value" type="xsd:double" />
    <xsd:element name="samples" type="xsd:int" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>)";

class GatewayTest : public ::testing::Test {
protected:
  void SetUp() override {
    core::Xml2Wire native_x2w(reg, arch::native());
    core::Xml2Wire sparc_x2w(reg, arch::sparc64());
    core::Xml2Wire arm_x2w(reg, arch::arm32());
    native_f = native_x2w.register_text(kGatewaySchema)[0];
    sparc_f = sparc_x2w.register_text(kGatewaySchema)[0];
    arm_f = arm_x2w.register_text(kGatewaySchema)[0];
  }

  pbio::DynamicRecord sample() {
    pbio::DynamicRecord r(native_f);
    r.set_string("sensor", "egt-2");
    r.set_float("value", 612.25);
    r.set_int_array("samples", std::vector<std::int64_t>{601, 612, 618});
    return r;
  }

  pbio::FormatRegistry reg;
  pbio::FormatHandle native_f, sparc_f, arm_f;
};

TEST_F(GatewayTest, ConvertsForeignWireToClientWire) {
  // Producer on sparc64, client fleet on arm32.
  pbio::DynamicRecord values = sample();
  Buffer from_producer = pbio::synthesize_wire(*sparc_f, values);

  core::Gateway gateway(reg, native_f, arm_f);
  Buffer for_client = gateway.convert(from_producer.span());
  EXPECT_EQ(gateway.converted(), 1u);

  // The client sees a message in ITS native format id and byte order.
  auto header = pbio::Decoder::peek_header(for_client.span());
  EXPECT_EQ(header.format_id, arm_f->id());
  EXPECT_EQ(header.byte_order, ByteOrder::kLittle);

  // And this machine (as a stand-in decoder) recovers identical values.
  pbio::Decoder dec(reg);
  pbio::DynamicRecord got(native_f);
  got.from_wire(dec, for_client.span());
  EXPECT_TRUE(values.deep_equals(got));
}

TEST_F(GatewayTest, PassThroughWhenAlreadyTargetFormat) {
  pbio::DynamicRecord values = sample();
  Buffer already = pbio::synthesize_wire(*arm_f, values);
  core::Gateway gateway(reg, native_f, arm_f);
  Buffer out = gateway.convert(already.span());
  EXPECT_EQ(gateway.passed_through(), 1u);
  EXPECT_EQ(gateway.converted(), 0u);
  EXPECT_EQ(out, already);
}

TEST_F(GatewayTest, NativeTargetUsesPlainEncoder) {
  pbio::DynamicRecord values = sample();
  Buffer from_producer = pbio::synthesize_wire(*sparc_f, values);
  core::Gateway gateway(reg, native_f, native_f);
  Buffer out = gateway.convert(from_producer.span());
  EXPECT_EQ(pbio::Decoder::peek_format_id(out.span()), native_f->id());
  // Zero-copy decodable by a homogeneous client.
  auto* p = pbio::Decoder::decode_in_place(*native_f, out.data(), out.size());
  EXPECT_NE(p, nullptr);
}

TEST_F(GatewayTest, StagingMustBeNative) {
  EXPECT_THROW(core::Gateway(reg, sparc_f, native_f), FormatError);
}

// --- DynamicRecord corners ---------------------------------------------------------

class RecordCornerTest : public ::testing::Test {
protected:
  void SetUp() override {
    const char* schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Inner">
    <xsd:element name="name" type="xsd:string" />
    <xsd:element name="weights" type="xsd:double" maxOccurs="*" />
  </xsd:complexType>
  <xsd:complexType name="Outer">
    <xsd:element name="inners" type="Inner" maxOccurs="*" />
    <xsd:element name="tags" type="xsd:unsignedShort" minOccurs="3" maxOccurs="3" />
  </xsd:complexType>
</xsd:schema>)";
    core::Xml2Wire x2w(reg);
    auto handles = x2w.register_text(schema);
    inner = handles[0];
    outer = handles[1];
  }
  pbio::FormatRegistry reg;
  pbio::FormatHandle inner, outer;
};

TEST_F(RecordCornerTest, DynamicNestedArraysWithInnerDynamicArrays) {
  pbio::DynamicRecord r(outer);
  r.resize_nested_array("inners", 3);
  for (std::size_t i = 0; i < 3; ++i) {
    auto sub = r.nested("inners", i);
    sub.set_string("name", "n" + std::to_string(i));
    std::vector<double> w(i + 1, 0.5 * static_cast<double>(i));
    sub.set_float_array("weights", w);
  }
  r.set_uint_array("tags", std::vector<std::uint64_t>{7, 8, 9});

  Buffer wire = r.encode();
  pbio::Decoder dec(reg);
  pbio::DynamicRecord out(outer);
  out.from_wire(dec, wire.span());
  EXPECT_TRUE(r.deep_equals(out));
  EXPECT_EQ(out.array_length("inners"), 3u);
  EXPECT_EQ(out.nested("inners", 2).get_float_array("weights").size(), 3u);
}

TEST_F(RecordCornerTest, InPlaceDecodeOfNestedDynamicArrays) {
  pbio::DynamicRecord r(outer);
  r.resize_nested_array("inners", 2);
  r.nested("inners", 0).set_string("name", "alpha");
  r.nested("inners", 1).set_string("name", "beta");
  r.nested("inners", 1)
      .set_float_array("weights", std::vector<double>{1.0, 2.0});
  r.set_uint_array("tags", std::vector<std::uint64_t>{1, 2, 3});
  Buffer wire = r.encode();

  void* p = pbio::Decoder::decode_in_place(*outer, wire.data(), wire.size());
  ASSERT_NE(p, nullptr);
  // Walk via the raw layout the metadata describes.
  const pbio::Field* inners_field = outer->field_named("inners");
  const std::uint8_t* base = static_cast<const std::uint8_t*>(p);
  const std::uint8_t* elems = nullptr;
  std::memcpy(&elems, base + inners_field->offset, sizeof(elems));
  ASSERT_NE(elems, nullptr);
  const pbio::Field* name_field = inner->field_named("name");
  const char* name1 = nullptr;
  std::memcpy(&name1, elems + inner->struct_size() + name_field->offset,
              sizeof(name1));
  EXPECT_STREQ(name1, "beta");
}

TEST_F(RecordCornerTest, NestedIndexOutOfRangeThrows) {
  pbio::DynamicRecord r(outer);
  r.resize_nested_array("inners", 2);
  EXPECT_NO_THROW(r.nested("inners", 1));
  EXPECT_THROW(r.nested("inners", 2), FormatError);
  pbio::DynamicRecord fresh(outer);
  EXPECT_THROW(fresh.nested("inners", 0), FormatError);  // not sized yet
}

TEST_F(RecordCornerTest, ReceiveLoopDoesNotAccumulateArenaMemory) {
  pbio::DynamicRecord sender(outer);
  sender.resize_nested_array("inners", 1);
  sender.nested("inners", 0).set_string("name", "x");
  sender.nested("inners", 0)
      .set_float_array("weights", std::vector<double>(64, 1.0));
  sender.set_uint_array("tags", std::vector<std::uint64_t>{1, 2, 3});
  Buffer wire = sender.encode();

  pbio::Decoder dec(reg);
  pbio::DynamicRecord receiver(outer);
  receiver.from_wire(dec, wire.span());
  // Arena reuse: after thousands of receives, footprint must stay flat.
  for (int i = 0; i < 5000; ++i) {
    receiver.from_wire(dec, wire.span());
  }
  EXPECT_TRUE(sender.deep_equals(receiver));
}

// --- Char arrays (byte blocks) across every codec --------------------------------

class CharArrayTest : public ::testing::Test {
protected:
  void SetUp() override {
    const char* schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
            xmlns:omf="http://omf.example.org/schema-ext">
  <xsd:complexType name="Blob">
    <xsd:element name="magic" type="omf:char" minOccurs="4" maxOccurs="4" />
    <xsd:element name="payload" type="omf:char" maxOccurs="*" />
    <xsd:element name="kind" type="xsd:int" />
  </xsd:complexType>
</xsd:schema>)";
    core::Xml2Wire x2w(reg);
    blob = x2w.register_text(schema)[0];
  }

  pbio::DynamicRecord sample() {
    pbio::DynamicRecord r(blob);
    r.set_char_array("magic", std::string_view("OMF1", 4));
    std::string payload;
    for (int i = 0; i < 19; ++i) payload.push_back(static_cast<char>(i * 13));
    r.set_char_array("payload", payload);
    r.set_int("kind", 3);
    return r;
  }

  pbio::FormatRegistry reg;
  pbio::FormatHandle blob;
};

TEST_F(CharArrayTest, AccessorsAndNdrRoundTrip) {
  pbio::DynamicRecord in = sample();
  EXPECT_EQ(in.get_char_array("magic"), "OMF1");
  EXPECT_EQ(in.array_length("payload"), 19u);

  Buffer wire = in.encode();
  pbio::Decoder dec(reg);
  pbio::DynamicRecord out(blob);
  out.from_wire(dec, wire.span());
  EXPECT_TRUE(in.deep_equals(out));
}

TEST_F(CharArrayTest, StaticLengthEnforced) {
  pbio::DynamicRecord r(blob);
  EXPECT_THROW(r.set_char_array("magic", "TOOLONG"), FormatError);
  EXPECT_THROW(r.set_char_array("kind", "x"), FormatError);  // not char
}

TEST_F(CharArrayTest, SynthesizedAcrossArchitectures) {
  core::Xml2Wire sparc_x2w(reg, arch::sparc32());
  auto foreign = reg.by_name_profile("Blob", arch::sparc32());
  if (!foreign) {
    const char* schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
            xmlns:omf="http://omf.example.org/schema-ext">
  <xsd:complexType name="Blob">
    <xsd:element name="magic" type="omf:char" minOccurs="4" maxOccurs="4" />
    <xsd:element name="payload" type="omf:char" maxOccurs="*" />
    <xsd:element name="kind" type="xsd:int" />
  </xsd:complexType>
</xsd:schema>)";
    foreign = sparc_x2w.register_text(schema)[0];
  }
  pbio::DynamicRecord in = sample();
  Buffer wire = pbio::synthesize_wire(*foreign, in);
  pbio::Decoder dec(reg);
  pbio::DynamicRecord out(blob);
  out.from_wire(dec, wire.span());
  EXPECT_TRUE(in.deep_equals(out));
}

// --- Arena ----------------------------------------------------------------------

TEST(Arena, AlignmentAndStability) {
  pbio::DecodeArena arena;
  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(1, 1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  std::memset(a, 0xAA, 3);
  std::memset(c, 0xCC, 1);
  // Large allocation triggers a fresh chunk; earlier pointers stay valid.
  void* big = arena.allocate(1 << 16, 8);
  std::memset(big, 0xBB, 1 << 16);
  EXPECT_EQ(*static_cast<std::uint8_t*>(a), 0xAA);
  EXPECT_EQ(*static_cast<std::uint8_t*>(c), 0xCC);
  EXPECT_GT(arena.reserved_bytes(), std::size_t{1} << 16);
  arena.clear();
  EXPECT_EQ(arena.reserved_bytes(), 0u);
}

TEST(Arena, ManySmallStringsShareChunks) {
  pbio::DecodeArena arena;
  std::vector<char*> strings;
  for (int i = 0; i < 1000; ++i) {
    strings.push_back(arena.copy_string("abcdefg", 7));
  }
  for (char* s : strings) EXPECT_STREQ(s, "abcdefg");
  // 1000 * 8 bytes must not consume 1000 chunks.
  EXPECT_LT(arena.reserved_bytes(), std::size_t{64} << 10);
}

// --- Wire header edge cases ----------------------------------------------------------

TEST(WireHeader, BigEndianFlagRoundTrips) {
  Buffer out;
  pbio::WireHeader h;
  h.byte_order = ByteOrder::kBig;
  h.format_id = 0xABCDEF;
  h.body_length = 99;
  std::size_t at = h.write(out);
  out.patch_int<std::uint32_t>(at, 99, ByteOrder::kBig);
  BufferReader in(out);
  pbio::WireHeader g = pbio::WireHeader::read(in);
  EXPECT_EQ(g.byte_order, ByteOrder::kBig);
  EXPECT_EQ(g.format_id, 0xABCDEFu);
  EXPECT_EQ(g.body_length, 99u);
}

TEST(WireHeader, RejectsWrongVersionAndSize) {
  pbio::FormatRegistry reg;
  auto f = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  AsdOff a;
  fill_asdoff(a);
  Buffer wire = pbio::encode(*f, &a);
  {
    Buffer bad = wire;
    bad.data()[1] = 9;  // version
    BufferReader in(bad);
    EXPECT_THROW(pbio::WireHeader::read(in), DecodeError);
  }
  {
    Buffer bad = wire;
    bad.data()[3] = 8;  // header size
    BufferReader in(bad);
    EXPECT_THROW(pbio::WireHeader::read(in), DecodeError);
  }
}

// --- Registry corners ------------------------------------------------------------------

TEST(RegistryCorners, ByNameProfileSeparatesAbis) {
  pbio::FormatRegistry reg;
  core::Xml2Wire native_x2w(reg, arch::native());
  core::Xml2Wire sparc_x2w(reg, arch::sparc64());
  auto n = native_x2w.register_text(kAsdOffSchema)[0];
  auto s = sparc_x2w.register_text(kAsdOffSchema)[0];

  EXPECT_EQ(reg.by_name("ASDOffEvent"), n);  // native view unscathed
  EXPECT_EQ(reg.by_name_profile("ASDOffEvent", arch::sparc64()), s);
  EXPECT_EQ(reg.by_name_profile("ASDOffEvent", arch::i386()), nullptr);
}

TEST(RegistryCorners, AllPreservesRegistrationOrder) {
  pbio::FormatRegistry reg;
  auto [b, c] = register_nested_pair(reg);
  auto all = reg.all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], b);
  EXPECT_EQ(all[1], c);
}

TEST(RegistryCorners, SentinelTerminatedFieldArrays) {
  // C-style IOField lists end with an empty-name sentinel (paper Figure 5).
  pbio::FormatRegistry reg;
  std::vector<pbio::IOField> fields = {
      {"a", "integer", 4, 0},
      {"", "", 0, 0},             // sentinel
      {"ignored", "integer", 4, 4},  // must never be reached
  };
  auto f = reg.register_format("S", fields, 4);
  EXPECT_EQ(f->fields().size(), 1u);
}

// --- Encoded-size exactness -------------------------------------------------------------

TEST(EncodedSize, ExactForPointerFreeFormats) {
  pbio::FormatRegistry reg;
  std::vector<pbio::FieldSpec> specs = {
      {"a", "integer", 4}, {"b", "float", 8}, {"c", "integer[7]", 2}};
  auto f = reg.register_computed("Plain", specs);
  pbio::DynamicRecord r(f);
  r.set_int("a", 1);
  EXPECT_EQ(pbio::encoded_size(*f, r.data()),
            pbio::WireHeader::kSize + f->struct_size());
  EXPECT_EQ(r.encode().size(), pbio::WireHeader::kSize + f->struct_size());
}

}  // namespace
}  // namespace omf
