// CDR/IIOP-style codec, in-band format negotiation (NdrConnection), and
// schema default values.
#include <gtest/gtest.h>

#include <thread>

#include "cdr/cdr.hpp"
#include "core/xml2wire.hpp"
#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "pbio/metaserde.hpp"
#include "pbio/record.hpp"
#include "schema/reader.hpp"
#include "test_structs.hpp"
#include "transport/ndr_connection.hpp"

namespace omf {
namespace {

using namespace omf::testing;

// --- CDR ---------------------------------------------------------------------

class CdrTest : public ::testing::Test {
protected:
  void SetUp() override {
    format_a =
        reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
    auto [b, c] = register_nested_pair(reg);
    format_b = b;
    format_c = c;
  }
  pbio::FormatRegistry reg;
  pbio::FormatHandle format_a, format_b, format_c;
};

TEST_F(CdrTest, RoundTripStructureA) {
  AsdOff in;
  fill_asdoff(in, 3);
  Buffer wire = cdr::encode_buffer(*format_a, &in);
  AsdOff out{};
  pbio::DecodeArena arena;
  std::size_t consumed = cdr::decode(*format_a, wire.span(), &out, arena);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_TRUE(asdoff_equal(in, out));
}

TEST_F(CdrTest, RoundTripStructureBAndNested) {
  unsigned long etas[3];
  AsdOffB b;
  fill_asdoffb(b, etas, 3, 4);
  Buffer wire_b = cdr::encode_buffer(*format_b, &b);
  AsdOffB out_b{};
  pbio::DecodeArena arena;
  cdr::decode(*format_b, wire_b.span(), &out_b, arena);
  EXPECT_TRUE(asdoffb_equal(b, out_b));

  unsigned long e1[1], e2[2], e3[1];
  ThreeAsdOffs c{};
  fill_asdoffb(c.one, e1, 1, 1);
  c.bart = 7.5;
  fill_asdoffb(c.two, e2, 2, 2);
  c.lisa = -0.125;
  fill_asdoffb(c.three, e3, 1, 3);
  Buffer wire_c = cdr::encode_buffer(*format_c, &c);
  ThreeAsdOffs out_c{};
  cdr::decode(*format_c, wire_c.span(), &out_c, arena);
  EXPECT_TRUE(three_asdoffs_equal(c, out_c));
}

TEST_F(CdrTest, SenderOrderIsNative) {
  struct One {
    int v;
  };
  std::vector<pbio::IOField> fields = {{"v", "integer", 4, 0}};
  auto f = reg.register_format("One", fields, sizeof(One));
  One in{0x01020304};
  Buffer wire = cdr::encode_buffer(*f, &in);
  // Alignment is relative to the stream start (just after the flag octet).
  ASSERT_EQ(wire.size(), 1u + 4u);
  // Reader-makes-right: flag says little-endian, payload is native order.
  EXPECT_EQ(wire.data()[0], 1);
  EXPECT_EQ(wire.data()[1], 0x04);  // little-endian native bytes, unswapped
}

TEST_F(CdrTest, ReaderMakesRightSwapsForeignOrder) {
  struct S {
    int v;
    double d;
  };
  std::vector<pbio::IOField> fields = {
      {"v", "integer", 4, offsetof(S, v)},
      {"d", "float", 8, offsetof(S, d)},
  };
  auto f = reg.register_format("S", fields, sizeof(S));
  S in{77, 2.5};
  Buffer wire = cdr::encode_buffer(*f, &in);
  // Forge a big-endian sender: flip the flag and swap every scalar.
  // Stream positions (post-flag): v at 0..4, d aligned to 8 at 8..16;
  // buffer offsets are one higher (the flag octet).
  wire.data()[0] = 0;
  byteswap_inplace(wire.data() + 1, 4);
  byteswap_inplace(wire.data() + 1 + 8, 8);
  S out{};
  pbio::DecodeArena arena;
  cdr::decode(*f, wire.span(), &out, arena);
  EXPECT_EQ(out.v, 77);
  EXPECT_DOUBLE_EQ(out.d, 2.5);
}

TEST_F(CdrTest, NullAndEmptyStringsAreDistinct) {
  AsdOff in;
  fill_asdoff(in);
  in.equip = nullptr;
  in.dest = const_cast<char*>("");
  Buffer wire = cdr::encode_buffer(*format_a, &in);
  AsdOff out{};
  pbio::DecodeArena arena;
  cdr::decode(*format_a, wire.span(), &out, arena);
  EXPECT_EQ(out.equip, nullptr);
  ASSERT_NE(out.dest, nullptr);
  EXPECT_STREQ(out.dest, "");
}

TEST_F(CdrTest, EncodedSizeIsExact) {
  unsigned long etas[5];
  AsdOffB in;
  fill_asdoffb(in, etas, 5, 9);
  Buffer wire = cdr::encode_buffer(*format_b, &in);
  EXPECT_EQ(cdr::encoded_size(*format_b, &in), wire.size());
}

TEST_F(CdrTest, TruncationThrows) {
  AsdOff in;
  fill_asdoff(in);
  Buffer wire = cdr::encode_buffer(*format_a, &in);
  AsdOff out{};
  pbio::DecodeArena arena;
  for (std::size_t len : {std::size_t{0}, std::size_t{5}, wire.size() - 2}) {
    EXPECT_THROW(cdr::decode(*format_a, {wire.data(), len}, &out, arena),
                 DecodeError);
  }
}

TEST_F(CdrTest, HugeSequenceCountRejected) {
  unsigned long etas[1];
  AsdOffB in;
  fill_asdoffb(in, etas, 1);
  Buffer wire = cdr::encode_buffer(*format_b, &in);
  AsdOffB zero = in;
  zero.eta_count = 0;
  zero.eta = nullptr;
  Buffer wire0 = cdr::encode_buffer(*format_b, &zero);
  std::size_t prefix_at = 0;
  for (std::size_t i = 0; i < wire0.size(); ++i) {
    if (wire.data()[i] != wire0.data()[i]) {
      prefix_at = i & ~std::size_t{3};
      break;
    }
  }
  std::uint32_t huge = 0x7FFFFFFF;
  std::memcpy(wire.data() + prefix_at, &huge, 4);
  AsdOffB out{};
  pbio::DecodeArena arena;
  EXPECT_THROW(cdr::decode(*format_b, wire.span(), &out, arena), DecodeError);
}

TEST_F(CdrTest, CdrIsSmallerThanItLooksButCopiesAnyway) {
  // Documentation-by-test of the design-space placement: for bulk doubles
  // the CDR stream is about the payload size (like NDR), yet both ends
  // still marshal element-wise (unlike NDR) — the performance benches
  // quantify the CPU consequence.
  struct Arr {
    double vals[64];
  };
  std::vector<pbio::IOField> fields = {
      {"vals", "float[64]", sizeof(double), 0}};
  auto f = reg.register_format("Arr", fields, sizeof(Arr));
  Arr in;
  for (int i = 0; i < 64; ++i) in.vals[i] = i * 0.5;
  EXPECT_LE(cdr::encoded_size(*f, &in), sizeof(Arr) + 8);
}

// --- NdrConnection ---------------------------------------------------------------

TEST(NdrConnection, FormatsTravelInBand) {
  pbio::FormatRegistry sender_reg, receiver_reg;
  auto f = sender_reg.register_format("ASDOffEvent", asdoff_fields(),
                                      sizeof(AsdOff));

  transport::TcpListener listener(0);
  std::vector<AsdOff> received;
  pbio::DecodeArena arena;
  std::thread receiver_thread([&] {
    transport::NdrConnection conn(listener.accept(), receiver_reg);
    pbio::Decoder dec(receiver_reg);
    while (auto msg = conn.receive()) {
      // The wire format arrived in-band; look it up by id.
      auto wire_format = receiver_reg.by_id(
          pbio::Decoder::peek_format_id(msg->span()));
      ASSERT_NE(wire_format, nullptr);
      AsdOff out{};
      dec.decode(msg->span(), *wire_format, &out, arena);
      received.push_back(out);
    }
    EXPECT_EQ(conn.formats_received(), 1u);
  });

  {
    transport::NdrConnection conn(transport::tcp_connect(listener.port()),
                                  sender_reg);
    for (int i = 0; i < 5; ++i) {
      AsdOff event;
      fill_asdoff(event, i);
      conn.send_struct(*f, &event);
    }
    EXPECT_EQ(conn.formats_sent(), 1u);  // bundle sent exactly once
  }
  receiver_thread.join();

  ASSERT_EQ(received.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    AsdOff expected;
    fill_asdoff(expected, i);
    // Strings in `received` point into the arena; still valid here.
    EXPECT_TRUE(asdoff_equal(expected, received[static_cast<std::size_t>(i)]));
  }
}

TEST(NdrConnection, MultipleFormatsEachAnnouncedOnce) {
  pbio::FormatRegistry sender_reg, receiver_reg;
  auto fa = sender_reg.register_format("ASDOffEvent", asdoff_fields(),
                                       sizeof(AsdOff));
  auto [fb, fc] = register_nested_pair(sender_reg);

  transport::TcpListener listener(0);
  std::size_t messages = 0, formats = 0;
  std::thread receiver_thread([&] {
    transport::NdrConnection conn(listener.accept(), receiver_reg);
    while (conn.receive()) ++messages;
    formats = conn.formats_received();
  });
  {
    transport::NdrConnection conn(transport::tcp_connect(listener.port()),
                                  sender_reg);
    AsdOff a;
    fill_asdoff(a);
    unsigned long etas[1];
    AsdOffB b;
    fill_asdoffb(b, etas, 1);
    conn.send_struct(*fa, &a);
    conn.send_struct(*fb, &b);
    conn.send_struct(*fa, &a);
    conn.send_struct(*fb, &b);
    EXPECT_EQ(conn.formats_sent(), 2u);
  }
  receiver_thread.join();
  EXPECT_EQ(messages, 4u);
  EXPECT_EQ(formats, 2u);
  EXPECT_NE(receiver_reg.by_id(fa->id()), nullptr);
  EXPECT_NE(receiver_reg.by_id(fb->id()), nullptr);
}

// --- Schema defaults ----------------------------------------------------------------

TEST(Defaults, AppliedWhenWireFormatLacksField) {
  const char* v1 = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Leg">
    <xsd:element name="fltNum" type="xsd:int" />
  </xsd:complexType>
</xsd:schema>)";
  const char* v2 = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Leg">
    <xsd:element name="fltNum" type="xsd:int" />
    <xsd:element name="paxCount" type="xsd:int" default="-1" />
    <xsd:element name="loadFactor" type="xsd:double" default="0.85" />
    <xsd:element name="cabin" type="omf:char" xmlns:omf="http://omf.example.org/schema-ext" default="Y" />
    <xsd:element name="codeshare" type="xsd:boolean" default="true" />
  </xsd:complexType>
</xsd:schema>)";

  pbio::FormatRegistry reg;
  core::Xml2Wire x2w(reg);
  auto f1 = x2w.register_text(v1)[0];
  auto f2 = x2w.register_text(v2)[0];
  EXPECT_EQ(f2->field_named("paxCount")->default_text, "-1");

  pbio::DynamicRecord old_msg(f1);
  old_msg.set_int("fltNum", 11);
  Buffer wire = old_msg.encode();

  pbio::Decoder dec(reg);
  pbio::DynamicRecord out(f2);
  out.from_wire(dec, wire.span());
  EXPECT_EQ(out.get_int("fltNum"), 11);
  EXPECT_EQ(out.get_int("paxCount"), -1);          // default, not zero
  EXPECT_DOUBLE_EQ(out.get_float("loadFactor"), 0.85);
  EXPECT_EQ(out.get_char("cabin"), 'Y');
  EXPECT_EQ(out.get_uint("codeshare"), 1u);
}

TEST(Defaults, PresentWireFieldsBeatDefaults) {
  std::vector<pbio::FieldSpec> specs = {
      {"a", "integer", 4, ""},
      {"b", "integer", 4, "42"},
  };
  pbio::FormatRegistry reg;
  auto f = reg.register_computed("T", specs);
  pbio::DynamicRecord in(f);
  in.set_int("a", 1);
  in.set_int("b", 7);
  Buffer wire = in.encode();
  pbio::Decoder dec(reg);
  pbio::DynamicRecord out(f);
  out.from_wire(dec, wire.span());
  EXPECT_EQ(out.get_int("b"), 7);  // wire value wins
}

TEST(Defaults, InvalidDefaultsRejected) {
  pbio::FormatRegistry reg;
  std::vector<pbio::FieldSpec> bad_value = {{"a", "integer", 4, "abc"}};
  EXPECT_THROW(reg.register_computed("T", bad_value), FormatError);
  std::vector<pbio::FieldSpec> on_string = {{"s", "string", 0, "x"}};
  EXPECT_THROW(reg.register_computed("T", on_string), FormatError);
  std::vector<pbio::FieldSpec> on_array = {{"a", "integer[3]", 4, "1"}};
  EXPECT_THROW(reg.register_computed("T", on_array), FormatError);
}

TEST(Defaults, SchemaRejectsDefaultsOnStringsAndArrays) {
  EXPECT_THROW(schema::read_schema_text(R"(
<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema">
  <s:complexType name="T"><s:element name="x" type="s:string" default="y"/></s:complexType>
</s:schema>)"),
               FormatError);
  EXPECT_THROW(schema::read_schema_text(R"(
<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema">
  <s:complexType name="T"><s:element name="x" type="s:int" maxOccurs="3" default="1"/></s:complexType>
</s:schema>)"),
               FormatError);
}

TEST(Defaults, DefaultsChangeFormatIdentity) {
  pbio::FormatRegistry reg;
  std::vector<pbio::FieldSpec> without = {{"a", "integer", 4, ""}};
  std::vector<pbio::FieldSpec> with = {{"a", "integer", 4, "5"}};
  auto f1 = reg.register_computed("T", without);
  auto f2 = reg.register_computed("T", with);
  EXPECT_NE(f1->id(), f2->id());
}

TEST(Defaults, SurviveBundleSerde) {
  pbio::FormatRegistry reg, reg2;
  std::vector<pbio::FieldSpec> specs = {{"a", "integer", 4, "123"}};
  auto f = reg.register_computed("T", specs);
  Buffer bundle = pbio::serialize_format_bundle(*f);
  auto g = pbio::deserialize_format_bundle(reg2, bundle.span());
  EXPECT_EQ(g->id(), f->id());
  EXPECT_EQ(g->field_named("a")->default_text, "123");
}

}  // namespace
}  // namespace omf
