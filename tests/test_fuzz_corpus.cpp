// Replays the committed fuzz seed corpus through the harness bodies under
// the normal test matrix (and its sanitizer configurations), so the seeds
// are exercised even in builds where libFuzzer is unavailable. A crash or
// sanitizer report here is the same finding the fuzzer would file.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harnesses.hpp"

namespace omf {
namespace {

namespace fs = std::filesystem;

using Harness = int (*)(const std::uint8_t*, std::size_t);

const std::map<std::string, Harness>& harnesses() {
  static const std::map<std::string, Harness> table = {
      {"descriptor", fuzz::descriptor_one},
      {"bundle", fuzz::bundle_one},
      {"schema", fuzz::schema_one},
      {"ndr_frame", fuzz::ndr_frame_one},
      {"decode_batch", fuzz::decode_batch_one},
  };
  return table;
}

std::vector<std::uint8_t> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(FuzzCorpus, EveryTargetHasSeeds) {
  fs::path root(OMF_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(root)) << root;
  for (const auto& [target, harness] : harnesses()) {
    (void)harness;
    EXPECT_TRUE(fs::is_directory(root / target))
        << "no seed directory for fuzz target " << target;
  }
}

TEST(FuzzCorpus, ReplaysCleanly) {
  fs::path root(OMF_FUZZ_CORPUS_DIR);
  std::size_t replayed = 0;
  for (const auto& [target, harness] : harnesses()) {
    fs::path dir = root / target;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      std::vector<std::uint8_t> bytes = slurp(entry.path());
      EXPECT_EQ(harness(bytes.data(), bytes.size()), 0) << entry.path();
      ++replayed;
    }
  }
  EXPECT_GE(replayed, 14u) << "seed corpus unexpectedly small";
}

TEST(FuzzCorpus, HarnessesSurviveDegenerateInputs) {
  // The empty input and single bytes never appear in the corpus but are the
  // first things libFuzzer tries.
  for (const auto& [target, harness] : harnesses()) {
    SCOPED_TRACE(target);
    EXPECT_EQ(harness(nullptr, 0), 0);
    for (int b = 0; b < 256; ++b) {
      std::uint8_t byte = static_cast<std::uint8_t>(b);
      EXPECT_EQ(harness(&byte, 1), 0);
    }
  }
}

}  // namespace
}  // namespace omf
