// End-to-end integration: the airline operational information system of the
// paper's Figures 1 and 3 — capture points publishing on an event backbone,
// consumers discovering metadata via xml2wire (HTTP + fallbacks), decoding
// homogeneous and heterogeneous messages, format evolution mid-stream, and
// the format service resolving unknown wire ids.
#include <gtest/gtest.h>

#include <thread>

#include "core/context.hpp"
#include "http/http.hpp"
#include "pbio/synth.hpp"
#include "schema/reader.hpp"
#include "test_structs.hpp"
#include "transport/backbone.hpp"
#include "transport/format_service.hpp"

namespace omf {
namespace {

using namespace omf::testing;

TEST(Airline, FullScenario) {
  // --- The metadata server (the "publicly known intranet server").
  http::Server meta_server;
  meta_server.put_document("/schemas/asdoff.xml", kAsdOffSchema);
  std::string locator = meta_server.url_for("/schemas/asdoff.xml");

  // --- The event backbone, with the channel announcing its metadata.
  transport::EventBackbone backbone;
  backbone.announce("aircraft.positions", locator);

  // --- A capture point: discovers its own format, publishes events.
  core::Context producer;
  auto producer_format =
      producer.discover_format(*backbone.metadata_locator("aircraft.positions"),
                               "ASDOffEvent");
  auto producer_channel = producer.bind<AsdOff>(producer_format);

  // --- Two consumers subscribe, each with its own context, discovering
  // the format independently (independent registration, same ids).
  core::Context display, gate_agent;
  auto display_format = display.discover_format(locator, "ASDOffEvent");
  auto gate_format = gate_agent.discover_format(locator, "ASDOffEvent");
  EXPECT_EQ(display_format->id(), producer_format->id());

  auto display_sub = backbone.subscribe("aircraft.positions");
  auto gate_sub = backbone.subscribe("aircraft.positions");

  // --- Publish a burst of events.
  constexpr int kEvents = 50;
  for (int i = 0; i < kEvents; ++i) {
    AsdOff event;
    fill_asdoff(event, i);
    EXPECT_EQ(backbone.publish("aircraft.positions",
                               producer_channel.encode(&event)),
              2u);
  }

  // --- Consumers decode every event correctly.
  auto drain = [&](core::Context& ctx, const pbio::FormatHandle& format,
                   transport::EventBackbone::Subscription& sub) {
    auto channel = ctx.bind<AsdOff>(format);
    int n = 0;
    while (auto msg = sub.try_receive()) {
      AsdOff expected;
      fill_asdoff(expected, n);
      AsdOff got{};
      pbio::DecodeArena arena;
      channel.decode(msg->span(), &got, arena);
      EXPECT_TRUE(asdoff_equal(expected, got)) << "event " << n;
      ++n;
    }
    return n;
  };
  EXPECT_EQ(drain(display, display_format, display_sub), kEvents);
  EXPECT_EQ(drain(gate_agent, gate_format, gate_sub), kEvents);
}

TEST(Airline, HeterogeneousFeedThroughBackbone) {
  // A weather feed arrives from a big-endian 64-bit SPARC capture point;
  // the x86 display decodes it via a conversion plan.
  const char* weather_schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Metar">
    <xsd:element name="station" type="xsd:string" />
    <xsd:element name="tempC" type="xsd:float" />
    <xsd:element name="windKt" type="xsd:int" />
    <xsd:element name="gusts" type="xsd:int" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>)";

  core::Context consumer;
  consumer.compiled_in().add("weather-meta", weather_schema);
  auto native_format = consumer.discover_format("weather-meta", "Metar");

  // The sender side (simulated SPARC): same schema, foreign layout.
  core::Xml2Wire foreign_x2w(consumer.registry(), arch::sparc64());
  auto foreign_format =
      foreign_x2w.register_schema(schema::read_schema_text(weather_schema))[0];

  transport::EventBackbone backbone;
  auto sub = backbone.subscribe("weather.metar");

  pbio::DynamicRecord report(native_format);
  report.set_string("station", "KATL");
  report.set_float("tempC", 31.5);
  report.set_int("windKt", 12);
  report.set_int_array("gusts", std::vector<std::int64_t>{18, 22, 19});
  backbone.publish("weather.metar",
                   pbio::synthesize_wire(*foreign_format, report));

  auto msg = sub.try_receive();
  ASSERT_TRUE(msg);
  // The wire format is the foreign one...
  EXPECT_EQ(pbio::Decoder::peek_format_id(msg->span()), foreign_format->id());
  EXPECT_EQ(pbio::Decoder::peek_header(msg->span()).byte_order,
            ByteOrder::kBig);
  // ...and still decodes into the native record.
  pbio::DynamicRecord got(native_format);
  got.from_wire(consumer.decoder(), msg->span());
  EXPECT_TRUE(report.deep_equals(got));
}

TEST(Airline, NewStreamFormatDiscoveredAtRuntime) {
  // A consumer that has never seen a stream's format learns it at
  // subscription time from the channel announcement — no recompilation.
  http::Server meta_server;
  const char* baggage_schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="BagScan">
    <xsd:element name="tag" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:int" />
    <xsd:element name="location" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>)";
  meta_server.put_document("/schemas/bagscan.xml", baggage_schema);

  transport::EventBackbone backbone;
  std::string locator = meta_server.url_for("/schemas/bagscan.xml");
  backbone.announce("baggage.scans", locator);

  // Producer.
  core::Context producer;
  auto pformat = producer.discover_format(locator, "BagScan");
  auto prec = pbio::DynamicRecord(pformat);
  prec.set_string("tag", "DL123456");
  prec.set_int("fltNum", 204);
  prec.set_string("location", "ATL-T4");
  auto sub = backbone.subscribe("baggage.scans");
  backbone.publish("baggage.scans", prec.encode());

  // Consumer: knows nothing about BagScan until now.
  core::Context consumer;
  auto announced = backbone.metadata_locator("baggage.scans");
  ASSERT_TRUE(announced);
  auto cformat = consumer.discover_format(*announced, "BagScan");
  auto msg = sub.try_receive();
  ASSERT_TRUE(msg);
  pbio::DynamicRecord got(cformat);
  got.from_wire(consumer.decoder(), msg->span());
  EXPECT_STREQ(got.get_string("tag"), "DL123456");
  EXPECT_STREQ(got.get_string("location"), "ATL-T4");
}

TEST(Airline, MetadataChangeMidStreamWithoutRecompilation) {
  // The stream's metadata document is updated (v2 adds a field). Old
  // in-flight messages and new messages both decode on a consumer that
  // re-discovers after an unknown-id signal.
  http::Server meta_server;
  const char* v1 = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Gate">
    <xsd:element name="fltNum" type="xsd:int" />
    <xsd:element name="gate" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>)";
  const char* v2 = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Gate">
    <xsd:element name="fltNum" type="xsd:int" />
    <xsd:element name="gate" type="xsd:string" />
    <xsd:element name="remote" type="xsd:boolean" />
  </xsd:complexType>
</xsd:schema>)";
  meta_server.put_document("/gate.xml", v1);
  std::string locator = meta_server.url_for("/gate.xml");

  core::Context producer, consumer;
  auto pv1 = producer.discover_format(locator, "Gate");
  auto cv1 = consumer.discover_format(locator, "Gate");

  pbio::DynamicRecord m1(pv1);
  m1.set_int("fltNum", 88);
  m1.set_string("gate", "B2");
  Buffer w1 = m1.encode();

  // Metadata changes on the server; the producer re-discovers and sends v2.
  meta_server.put_document("/gate.xml", v2);
  producer.discovery().invalidate(locator);
  auto pv2 = producer.discover_format(locator, "Gate");
  ASSERT_NE(pv1->id(), pv2->id());
  pbio::DynamicRecord m2(pv2);
  m2.set_int("fltNum", 89);
  m2.set_string("gate", "T9");
  m2.set_uint("remote", 1);
  Buffer w2 = m2.encode();

  // Consumer decodes the old message fine.
  pbio::DynamicRecord out1(cv1);
  out1.from_wire(consumer.decoder(), w1.span());
  EXPECT_EQ(out1.get_int("fltNum"), 88);

  // The new message has an unknown id; the consumer re-discovers (the
  // paper's runtime reaction to format change) and decodes.
  pbio::FormatId id2 = pbio::Decoder::peek_format_id(w2.span());
  EXPECT_EQ(consumer.registry().by_id(id2), nullptr);
  consumer.discovery().invalidate(locator);
  auto cv2 = consumer.discover_format(locator, "Gate");
  EXPECT_EQ(cv2->id(), id2);
  pbio::DynamicRecord out2(cv2);
  out2.from_wire(consumer.decoder(), w2.span());
  EXPECT_EQ(out2.get_int("fltNum"), 89);
  EXPECT_STREQ(out2.get_string("gate"), "T9");
  EXPECT_EQ(out2.get_uint("remote"), 1u);
}

TEST(Airline, FormatServiceResolvesUnknownWireIds) {
  // Alternative to re-discovering the XML: fetch the binary metadata
  // bundle from the format service keyed by the wire id itself.
  core::Context producer, consumer;
  producer.compiled_in().add("m", kAsdOffBSchema);
  auto pformat = producer.discover_format("m", "ASDOffEventB");

  transport::FormatServiceServer service;
  service.publish(*pformat);

  unsigned long etas[2];
  AsdOffB event;
  fill_asdoffb(event, etas, 2, 6);
  Buffer wire = producer.bind<AsdOffB>(pformat).encode(&event);

  pbio::FormatId id = pbio::Decoder::peek_format_id(wire.span());
  ASSERT_EQ(consumer.registry().by_id(id), nullptr);
  transport::FormatServiceClient client(service.port());
  auto fetched = client.fetch(consumer.registry(), id);
  ASSERT_NE(fetched, nullptr);

  AsdOffB out{};
  pbio::DecodeArena arena;
  consumer.decoder().decode(wire.span(), *fetched, &out, arena);
  EXPECT_TRUE(asdoffb_equal(event, out));
}

TEST(Airline, ConcurrentProducersAndConsumersOverTcp) {
  // Three producers stream over TCP to one receiver thread; the receiver
  // decodes in place (homogeneous) and tallies.
  core::Context ctx;
  ctx.compiled_in().add("m", kAsdOffSchema);
  auto format = ctx.discover_format("m", "ASDOffEvent");
  auto channel = ctx.bind<AsdOff>(format);

  constexpr int kProducers = 3, kEach = 40;
  transport::TcpListener listener(0);

  std::atomic<int> decoded{0};
  std::atomic<long> flt_sum{0};
  std::vector<std::thread> handlers;
  std::thread acceptor([&] {
    for (int i = 0; i < kProducers; ++i) {
      auto conn = listener.accept();
      handlers.emplace_back(
          [&, c = std::make_shared<transport::TcpConnection>(
                  std::move(conn))]() mutable {
            while (auto msg = c->receive()) {
              auto* event = static_cast<AsdOff*>(
                  channel.decode_in_place(msg->data(), msg->size()));
              flt_sum += event->fltNum;
              ++decoded;
            }
          });
    }
  });

  long expected_sum = 0;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kEach; ++i) expected_sum += 1000 + p * 100 + i;
    producers.emplace_back([&, p] {
      auto conn = transport::tcp_connect(listener.port());
      for (int i = 0; i < kEach; ++i) {
        AsdOff event;
        fill_asdoff(event, p * 100 + i);
        conn.send(channel.encode(&event));
      }
    });
  }
  for (auto& t : producers) t.join();
  acceptor.join();
  for (auto& t : handlers) t.join();

  EXPECT_EQ(decoded.load(), kProducers * kEach);
  EXPECT_EQ(flt_sum.load(), expected_sum);
}

}  // namespace
}  // namespace omf
