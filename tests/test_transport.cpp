// Transport: message queue, TCP framing, event backbone, format service.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "test_structs.hpp"
#include "transport/backbone.hpp"
#include "transport/format_service.hpp"
#include "transport/net_io.hpp"
#include "transport/queue.hpp"
#include "transport/tcp.hpp"
#include "util/bytes.hpp"
#include "util/hash.hpp"

namespace omf::transport {
namespace {

using namespace omf::testing;

Buffer make_buffer(std::string_view text) {
  Buffer b;
  b.append(text);
  return b;
}

std::string as_text(const Buffer& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

// --- MessageQueue -------------------------------------------------------------

TEST(Queue, FifoOrder) {
  MessageQueue q;
  q.push(make_buffer("one"));
  q.push(make_buffer("two"));
  EXPECT_EQ(as_text(*q.pop()), "one");
  EXPECT_EQ(as_text(*q.pop()), "two");
  EXPECT_FALSE(q.try_pop());
}

TEST(Queue, CloseDrainsThenSignals) {
  MessageQueue q;
  q.push(make_buffer("last"));
  q.close();
  EXPECT_FALSE(q.push(make_buffer("rejected")));
  EXPECT_EQ(as_text(*q.pop()), "last");
  EXPECT_FALSE(q.pop());  // closed and empty
}

TEST(Queue, BlockingPopWakesOnPush) {
  MessageQueue q;
  std::string got;
  std::thread consumer([&] { got = as_text(*q.pop()); });
  q.push(make_buffer("wake"));
  consumer.join();
  EXPECT_EQ(got, "wake");
}

TEST(Queue, BlockingPopWakesOnClose) {
  MessageQueue q;
  std::optional<Buffer> got = make_buffer("sentinel");
  std::thread consumer([&] { got = q.pop(); });
  q.close();
  consumer.join();
  EXPECT_FALSE(got);
}

TEST(Queue, ManyProducersOneConsumer) {
  MessageQueue q;
  constexpr int kProducers = 4, kEach = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kEach; ++i) {
        q.push(make_buffer("p" + std::to_string(p)));
      }
    });
  }
  int received = 0;
  std::thread consumer([&] {
    while (received < kProducers * kEach) {
      if (q.pop()) ++received;
    }
  });
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(received, kProducers * kEach);
}

// --- TCP ------------------------------------------------------------------------

TEST(Tcp, FramedRoundTrip) {
  TcpListener listener(0);
  std::optional<Buffer> received;
  std::thread server([&] {
    TcpConnection conn = listener.accept();
    received = conn.receive();
    conn.send(make_buffer("pong"));
  });
  TcpConnection client = tcp_connect(listener.port());
  client.send(make_buffer("ping"));
  auto reply = client.receive();
  server.join();
  ASSERT_TRUE(received);
  EXPECT_EQ(as_text(*received), "ping");
  ASSERT_TRUE(reply);
  EXPECT_EQ(as_text(*reply), "pong");
}

TEST(Tcp, EmptyFrame) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpConnection conn = listener.accept();
    conn.send(Buffer());
  });
  TcpConnection client = tcp_connect(listener.port());
  auto msg = client.receive();
  server.join();
  ASSERT_TRUE(msg);
  EXPECT_EQ(msg->size(), 0u);
}

TEST(Tcp, OrderlyCloseYieldsNullopt) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpConnection conn = listener.accept();
    conn.close();
  });
  TcpConnection client = tcp_connect(listener.port());
  EXPECT_FALSE(client.receive());
  server.join();
}

TEST(Tcp, ManyMessagesOverOneConnection) {
  TcpListener listener(0);
  constexpr int kN = 500;
  std::thread server([&] {
    TcpConnection conn = listener.accept();
    for (int i = 0; i < kN; ++i) {
      auto msg = conn.receive();
      ASSERT_TRUE(msg);
      conn.send(*msg);  // echo
    }
  });
  TcpConnection client = tcp_connect(listener.port());
  for (int i = 0; i < kN; ++i) {
    client.send(make_buffer("msg" + std::to_string(i)));
    auto echo = client.receive();
    ASSERT_TRUE(echo);
    EXPECT_EQ(as_text(*echo), "msg" + std::to_string(i));
  }
  server.join();
}

TEST(Tcp, ConnectToClosedPortThrows) {
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
  }
  EXPECT_THROW(tcp_connect(dead_port), TransportError);
}

TEST(Tcp, NdrMessageAcrossSocket) {
  pbio::FormatRegistry reg;
  auto f = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  AsdOff in;
  fill_asdoff(in, 21);

  TcpListener listener(0);
  AsdOff out{};
  pbio::DecodeArena arena;
  std::thread receiver([&] {
    TcpConnection conn = listener.accept();
    auto msg = conn.receive();
    ASSERT_TRUE(msg);
    pbio::Decoder dec(reg);
    dec.decode(msg->span(), *f, &out, arena);
  });
  TcpConnection sender = tcp_connect(listener.port());
  sender.send(pbio::encode(*f, &in));
  receiver.join();
  EXPECT_TRUE(asdoff_equal(in, out));
}

TEST(Tcp, TruncatedFrameThrowsMidFrameError) {
  // A peer that dies after the header leaves the receiver mid-frame; that
  // must surface as a TransportError, not a hang or a short read.
  TcpListener listener(0);
  std::thread server([&] {
    TcpConnection conn = listener.accept();
    int fd = conn.release_fd();
    std::uint8_t header[4];
    store_le<std::uint32_t>(header, 100);  // claim 100 bytes...
    netio::write_all(fd, header, 4, Deadline::never(), "test write");
    std::uint8_t partial[10] = {};
    netio::write_all(fd, partial, 10, Deadline::never(), "test write");
    ::close(fd);  // ...deliver 10
  });
  TcpConnection client = tcp_connect(listener.port());
  EXPECT_THROW(client.receive(), TransportError);
  server.join();
}

TEST(Tcp, OversizedHeaderRejectedBeforeAllocation) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpConnection conn = listener.accept();
    int fd = conn.release_fd();
    std::uint8_t header[4];
    store_le<std::uint32_t>(header, 512u << 20);  // over the 64 MiB default
    netio::write_all(fd, header, 4, Deadline::never(), "test write");
    ::close(fd);
  });
  TcpConnection client = tcp_connect(listener.port());
  try {
    client.receive();
    FAIL() << "oversized frame accepted";
  } catch (const TransportError& e) {
    EXPECT_NE(std::string(e.what()).find("oversized"), std::string::npos);
  }
  server.join();
}

TEST(Tcp, MaxMessageSizeIsPerConnectionConfigurable) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpConnection conn = listener.accept();
    conn.send(make_buffer("0123456789abcdef"));  // 16 bytes
  });
  TcpConnection client = tcp_connect(listener.port());
  client.set_max_message_size(8);
  EXPECT_THROW(client.receive(), TransportError);
  server.join();
}

TEST(Tcp, CorruptedPayloadRejectedByChecksum) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpConnection conn = listener.accept();
    int fd = conn.release_fd();
    // Hand-build a frame whose CRC was computed before a payload byte got
    // flipped — what a fault on the wire looks like.
    std::uint8_t payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    std::uint8_t frame[16];
    store_le<std::uint32_t>(frame, 8);
    std::memcpy(frame + 4, payload, 8);
    store_le<std::uint32_t>(frame + 12, crc32(payload, 8));
    frame[6] ^= 0x40;  // corruption after the CRC was stamped
    netio::write_all(fd, frame, sizeof(frame), Deadline::never(), "test");
    ::close(fd);
  });
  TcpConnection client = tcp_connect(listener.port());
  try {
    client.receive();
    FAIL() << "corrupted frame delivered";
  } catch (const TransportError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
  server.join();
}

TEST(Tcp, ReceiveDeadlineThrowsTimeoutError) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpConnection conn = listener.accept();
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  });
  TcpConnection client = tcp_connect(listener.port());
  client.set_timeouts({.connect = {},
                       .send = {},
                       .recv = std::chrono::milliseconds(50)});
  auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(client.receive(), TimeoutError);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::milliseconds(250));  // no overshoot
  server.join();
}

TEST(Tcp, SendToResetPeerThrowsInsteadOfSigpipe) {
  // Connect before accepting: the loopback handshake completes via the
  // listen backlog, so the client connection is fully established before
  // the RST below can exist. (Accepting + resetting from a thread raced
  // the RST against the client's own connect and could kill tcp_connect
  // instead of the send this test is about.)
  TcpListener listener(0);
  TcpConnection client = tcp_connect(listener.port());
  TcpConnection server_side = listener.accept();
  netio::arm_reset_on_close(server_side.native_handle());
  server_side.close();  // RST
  // The first sends may land in the kernel buffer before the RST is
  // processed; keep sending — with SIGPIPE the process would die here.
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) {
          client.send(make_buffer("into the void"));
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      },
      TransportError);
}

TEST(Tcp, AcceptDeadlineThrowsTimeoutError) {
  TcpListener listener(0);
  EXPECT_THROW(listener.accept(Deadline::after(std::chrono::milliseconds(30))),
               TimeoutError);
}

TEST(Tcp, ConnectDeadlineToBlackholePort) {
  // A bound-but-unaccepted listener still completes the TCP handshake, so
  // use a dead port: connect must fail or time out, never hang.
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
  }
  auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(
      tcp_connect(dead_port, Deadline::after(std::chrono::milliseconds(200))),
      TransportError);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(1000));
}

// --- Event backbone ---------------------------------------------------------------

TEST(Backbone, PublishReachesAllSubscribers) {
  EventBackbone bb;
  auto s1 = bb.subscribe("weather");
  auto s2 = bb.subscribe("weather");
  auto other = bb.subscribe("positions");
  EXPECT_EQ(bb.publish("weather", make_buffer("sunny")), 2u);
  EXPECT_EQ(as_text(*s1.receive()), "sunny");
  EXPECT_EQ(as_text(*s2.receive()), "sunny");
  EXPECT_FALSE(other.try_receive());
}

TEST(Backbone, PublishWithoutSubscribersDeliversNowhere) {
  EventBackbone bb;
  EXPECT_EQ(bb.publish("void", make_buffer("x")), 0u);
}

TEST(Backbone, UnsubscribeStopsDelivery) {
  EventBackbone bb;
  auto s = bb.subscribe("ch");
  EXPECT_EQ(bb.subscriber_count("ch"), 1u);
  s.unsubscribe();
  EXPECT_EQ(bb.subscriber_count("ch"), 0u);
  EXPECT_EQ(bb.publish("ch", make_buffer("x")), 0u);
}

TEST(Backbone, SubscriptionDestructorUnsubscribes) {
  EventBackbone bb;
  {
    auto s = bb.subscribe("ch");
    EXPECT_EQ(bb.subscriber_count("ch"), 1u);
  }
  EXPECT_EQ(bb.subscriber_count("ch"), 0u);
}

TEST(Backbone, MoveTransfersOwnership) {
  EventBackbone bb;
  auto s1 = bb.subscribe("ch");
  auto s2 = std::move(s1);
  EXPECT_FALSE(s1.active());
  EXPECT_TRUE(s2.active());
  EXPECT_EQ(bb.subscriber_count("ch"), 1u);
  bb.publish("ch", make_buffer("m"));
  EXPECT_EQ(as_text(*s2.receive()), "m");
}

TEST(Backbone, MetadataAnnouncements) {
  EventBackbone bb;
  bb.announce("weather", "http://meta/weather.xml");
  EXPECT_EQ(bb.metadata_locator("weather"), "http://meta/weather.xml");
  EXPECT_FALSE(bb.metadata_locator("positions"));
  auto channels = bb.channels();
  ASSERT_EQ(channels.size(), 1u);
  EXPECT_EQ(channels[0], "weather");
}

TEST(Backbone, CloseWakesSubscribers) {
  EventBackbone bb;
  auto s = bb.subscribe("ch");
  std::optional<Buffer> got = make_buffer("sentinel");
  std::thread consumer([&] { got = s.receive(); });
  bb.close();
  consumer.join();
  EXPECT_FALSE(got);
}

TEST(Backbone, ConcurrentPublishersAndSubscribers) {
  EventBackbone bb;
  constexpr int kMessages = 200;
  auto s1 = bb.subscribe("ch");
  auto s2 = bb.subscribe("ch");
  std::thread pub1([&] {
    for (int i = 0; i < kMessages; ++i) bb.publish("ch", make_buffer("a"));
  });
  std::thread pub2([&] {
    for (int i = 0; i < kMessages; ++i) bb.publish("ch", make_buffer("b"));
  });
  pub1.join();
  pub2.join();
  int got1 = 0, got2 = 0;
  while (s1.try_receive()) ++got1;
  while (s2.try_receive()) ++got2;
  EXPECT_EQ(got1, 2 * kMessages);
  EXPECT_EQ(got2, 2 * kMessages);
}

// --- Format service ------------------------------------------------------------------

TEST(FormatService, FetchUnknownIdReturnsNull) {
  FormatServiceServer server;
  FormatServiceClient client(server.port());
  pbio::FormatRegistry reg;
  EXPECT_EQ(client.fetch(reg, 0xDEADBEEF), nullptr);
}

TEST(FormatService, PublishThenFetch) {
  pbio::FormatRegistry sender_reg;
  auto f = sender_reg.register_format("ASDOffEvent", asdoff_fields(),
                                      sizeof(AsdOff));
  FormatServiceServer server;
  server.publish(*f);
  EXPECT_EQ(server.published(), 1u);

  pbio::FormatRegistry receiver_reg;
  FormatServiceClient client(server.port());
  auto fetched = client.fetch(receiver_reg, f->id());
  ASSERT_NE(fetched, nullptr);
  EXPECT_EQ(fetched->id(), f->id());
  EXPECT_EQ(receiver_reg.by_id(f->id()), fetched);
}

TEST(FormatService, PushFromClient) {
  pbio::FormatRegistry sender_reg;
  auto [b, c] = register_nested_pair(sender_reg);
  FormatServiceServer server;
  FormatServiceClient client(server.port());
  client.push(*c);
  EXPECT_EQ(server.published(), 2u);  // nested dependency travels too

  pbio::FormatRegistry receiver_reg;
  auto fetched = client.fetch(receiver_reg, c->id());
  ASSERT_NE(fetched, nullptr);
  EXPECT_NE(receiver_reg.by_id(b->id()), nullptr);
}

TEST(FormatService, UnknownFormatFlowEndToEnd) {
  // Receiver sees a message with an unknown id, fetches metadata from the
  // format service, then decodes — the full PBIO discovery story.
  pbio::FormatRegistry sender_reg;
  auto f = sender_reg.register_format("ASDOffEvent", asdoff_fields(),
                                      sizeof(AsdOff));
  FormatServiceServer server;
  server.publish(*f);

  AsdOff in;
  fill_asdoff(in, 31);
  Buffer wire = pbio::encode(*f, &in);

  pbio::FormatRegistry receiver_reg;
  // The receiver knows the format *name* via its own registration (same
  // metadata → same id here, so make its registry empty to force a fetch).
  pbio::FormatId id = pbio::Decoder::peek_format_id(wire.span());
  ASSERT_EQ(receiver_reg.by_id(id), nullptr);
  FormatServiceClient client(server.port());
  auto fetched = client.fetch(receiver_reg, id);
  ASSERT_NE(fetched, nullptr);

  pbio::Decoder dec(receiver_reg);
  AsdOff out{};
  pbio::DecodeArena arena;
  dec.decode(wire.span(), *fetched, &out, arena);
  EXPECT_TRUE(asdoff_equal(in, out));
}

}  // namespace
}  // namespace omf::transport
