// Extension features built on the paper's §4.4 and future-work sections:
// format scoping, HTTP format publication/resolution, live-message
// classification, and the schema-model writer they rest on.
#include <gtest/gtest.h>

#include "core/classify.hpp"
#include "core/context.hpp"
#include "core/http_formats.hpp"
#include "core/scoping.hpp"
#include "pbio/record.hpp"
#include "schema/generator.hpp"
#include "schema/reader.hpp"
#include "test_structs.hpp"
#include "textxml/textxml.hpp"

namespace omf {
namespace {

using namespace omf::testing;

const char* kFlightOps = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="CrewInfo">
    <xsd:element name="captain" type="xsd:string" />
    <xsd:element name="dutyHours" type="xsd:double" />
  </xsd:complexType>
  <xsd:complexType name="FlightOps">
    <xsd:element name="fltNum" type="xsd:int" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="crew" type="CrewInfo" />
    <xsd:element name="fuelKg" type="xsd:double" />
    <xsd:element name="delays" type="xsd:int" maxOccurs="delay_count" />
    <xsd:element name="delay_count" type="xsd:int" />
  </xsd:complexType>
</xsd:schema>)";

// --- Schema model writer -------------------------------------------------------

TEST(SchemaWriter, RoundTripsThroughReader) {
  schema::SchemaDocument doc = schema::read_schema_text(kFlightOps);
  std::string text = schema::write_schema_text(doc);
  schema::SchemaDocument again = schema::read_schema_text(text);
  ASSERT_EQ(again.types.size(), doc.types.size());
  for (std::size_t i = 0; i < doc.types.size(); ++i) {
    EXPECT_EQ(again.types[i].name, doc.types[i].name);
    ASSERT_EQ(again.types[i].elements.size(), doc.types[i].elements.size());
    for (std::size_t j = 0; j < doc.types[i].elements.size(); ++j) {
      EXPECT_EQ(again.types[i].elements[j].name, doc.types[i].elements[j].name);
      EXPECT_EQ(again.types[i].elements[j].occurs,
                doc.types[i].elements[j].occurs);
    }
  }
}

TEST(SchemaWriter, PreservesSimpleTypes) {
  const char* text = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:simpleType name="Knots"><xsd:restriction base="xsd:int"/></xsd:simpleType>
  <xsd:complexType name="T"><xsd:element name="v" type="Knots"/></xsd:complexType>
</xsd:schema>)";
  schema::SchemaDocument doc = schema::read_schema_text(text);
  schema::SchemaDocument again =
      schema::read_schema_text(schema::write_schema_text(doc));
  ASSERT_EQ(again.simple_types.size(), 1u);
  EXPECT_EQ(again.simple_types[0].name, "Knots");
}

// --- Scope policy ---------------------------------------------------------------

TEST(Scoping, PolicyVisibility) {
  core::ScopePolicy policy;
  policy.allow("gate", "FlightOps", "fltNum");
  policy.allow_all("ops", "FlightOps");
  EXPECT_TRUE(policy.visible("gate", "FlightOps", "fltNum"));
  EXPECT_FALSE(policy.visible("gate", "FlightOps", "fuelKg"));
  EXPECT_TRUE(policy.visible("ops", "FlightOps", "fuelKg"));
  // Unknown audience under a default-deny policy sees nothing.
  EXPECT_FALSE(policy.visible("public", "FlightOps", "fltNum"));
  // Default-allow policy.
  core::ScopePolicy open(true);
  EXPECT_TRUE(open.visible("anyone", "FlightOps", "fuelKg"));
}

TEST(Scoping, SliceKeepsOnlyVisibleElements) {
  schema::SchemaDocument doc = schema::read_schema_text(kFlightOps);
  core::ScopePolicy policy;
  policy.allow("gate", "FlightOps", "fltNum");
  policy.allow("gate", "FlightOps", "dest");

  schema::SchemaDocument sliced = core::scope_schema(doc, policy, "gate");
  ASSERT_EQ(sliced.types.size(), 1u);  // CrewInfo dropped entirely
  EXPECT_EQ(sliced.types[0].elements.size(), 2u);
  EXPECT_NE(sliced.types[0].element_named("fltNum"), nullptr);
  EXPECT_EQ(sliced.types[0].element_named("fuelKg"), nullptr);
}

TEST(Scoping, DynamicArrayDragsInItsCountField) {
  schema::SchemaDocument doc = schema::read_schema_text(kFlightOps);
  core::ScopePolicy policy;
  policy.allow("dispatch", "FlightOps", "delays");  // not delay_count

  schema::SchemaDocument sliced = core::scope_schema(doc, policy, "dispatch");
  EXPECT_NE(sliced.types[0].element_named("delays"), nullptr);
  EXPECT_NE(sliced.types[0].element_named("delay_count"), nullptr);
}

TEST(Scoping, ElementsOfHiddenNestedTypesAreDropped) {
  schema::SchemaDocument doc = schema::read_schema_text(kFlightOps);
  core::ScopePolicy policy;
  policy.allow("gate", "FlightOps", "fltNum");
  policy.allow("gate", "FlightOps", "crew");  // but nothing in CrewInfo

  schema::SchemaDocument sliced = core::scope_schema(doc, policy, "gate");
  // crew references a type with no visible elements -> dropped with it.
  EXPECT_EQ(sliced.types[0].element_named("crew"), nullptr);
  EXPECT_EQ(sliced.type_named("CrewInfo"), nullptr);
}

TEST(Scoping, NoVisibleElementsThrows) {
  schema::SchemaDocument doc = schema::read_schema_text(kFlightOps);
  core::ScopePolicy policy;  // default deny, no rules
  EXPECT_THROW(core::scope_schema(doc, policy, "nobody"), FormatError);
}

TEST(Scoping, ScopedMessagesDecodeViaEvolution) {
  // Full-format messages decode for a scoped subscriber: the hidden
  // fields are simply invisible (no republish, no re-encode).
  core::Context full_ctx;
  full_ctx.compiled_in().add("ops-meta", kFlightOps);
  auto full = full_ctx.discover_format("ops-meta", "FlightOps");

  schema::SchemaDocument doc = schema::read_schema_text(kFlightOps);
  core::ScopePolicy policy;
  policy.allow("gate", "FlightOps", "fltNum");
  policy.allow("gate", "FlightOps", "dest");
  std::string sliced_text =
      schema::write_schema_text(core::scope_schema(doc, policy, "gate"));

  core::Context gate_ctx;
  gate_ctx.compiled_in().add("gate-meta", sliced_text);
  auto scoped = gate_ctx.discover_format("gate-meta", "FlightOps");
  // The gate context must know the full format's metadata (normally via
  // format service); the values stay invisible regardless.
  core::Xml2Wire full_meta(gate_ctx.registry());
  full_meta.register_text(kFlightOps);

  pbio::DynamicRecord msg(full);
  msg.set_int("fltNum", 204);
  msg.set_string("dest", "MCO");
  msg.set_float("fuelKg", 18000);
  msg.nested("crew").set_string("captain", "Haynes");
  Buffer wire = msg.encode();

  pbio::DynamicRecord view(scoped);
  view.from_wire(gate_ctx.decoder(), wire.span());
  EXPECT_EQ(view.get_int("fltNum"), 204);
  EXPECT_STREQ(view.get_string("dest"), "MCO");
  EXPECT_THROW(view.get_float("fuelKg"), FormatError);
  EXPECT_THROW(view.nested("crew"), FormatError);
}

TEST(Scoping, HttpServerServesAudienceSlices) {
  http::Server server;
  core::ScopePolicy policy;
  policy.allow_all("ops", "FlightOps");
  policy.allow_all("ops", "CrewInfo");
  policy.allow("gate", "FlightOps", "fltNum");
  core::ScopedMetadataServer scoped(server, policy);
  scoped.add_document("/flightops.xml", kFlightOps);

  core::Context ops_ctx, gate_ctx, public_ctx;
  auto ops = ops_ctx.discover_format(scoped.url_for("/flightops.xml", "ops"),
                                     "FlightOps");
  auto gate = gate_ctx.discover_format(
      scoped.url_for("/flightops.xml", "gate"), "FlightOps");
  EXPECT_EQ(ops->fields().size(), 6u);
  EXPECT_EQ(gate->fields().size(), 1u);
  // An audience with no grants gets a 404 -> discovery fails.
  EXPECT_THROW(public_ctx.discover_format(
                   scoped.url_for("/flightops.xml", "nobody"), "FlightOps"),
               DiscoveryError);
}

// --- HTTP format publication / resolution ----------------------------------------

TEST(HttpFormats, IdHexFormatting) {
  EXPECT_EQ(core::format_id_hex(0), "0000000000000000");
  EXPECT_EQ(core::format_id_hex(0xDEADBEEFull), "00000000deadbeef");
  EXPECT_EQ(core::format_id_hex(0xFFFFFFFFFFFFFFFFull), "ffffffffffffffff");
}

TEST(HttpFormats, PublishAndResolve) {
  pbio::FormatRegistry sender_reg;
  auto [b, c] = register_nested_pair(sender_reg);

  http::Server server;
  core::HttpFormatPublisher publisher(server);
  std::string url = publisher.publish(*c);
  EXPECT_NE(url.find(core::format_id_hex(c->id())), std::string::npos);

  pbio::FormatRegistry receiver_reg;
  core::HttpFormatResolver resolver(server.url_for("/formats/"));
  auto fetched = resolver.resolve(receiver_reg, c->id());
  ASSERT_NE(fetched, nullptr);
  EXPECT_EQ(fetched->id(), c->id());
  EXPECT_NE(receiver_reg.by_id(b->id()), nullptr);  // bundle carried deps
}

TEST(HttpFormats, UnknownIdIsNull) {
  http::Server server;
  core::HttpFormatPublisher publisher(server);
  pbio::FormatRegistry reg;
  core::HttpFormatResolver resolver(server.url_for("/formats/"));
  EXPECT_EQ(resolver.resolve(reg, 0x1234), nullptr);
}

TEST(HttpFormats, XmlRenditionIsServedForNativeFormats) {
  pbio::FormatRegistry reg;
  auto f = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  http::Server server;
  core::HttpFormatPublisher publisher(server);
  publisher.publish(*f);

  auto resp = http::get(
      server.url_for("/formats/" + core::format_id_hex(f->id()) + ".xml"));
  EXPECT_EQ(resp.status, 200);
  // The rendition round-trips to the identical format.
  pbio::FormatRegistry reg2;
  core::Xml2Wire x2w(reg2);
  EXPECT_EQ(x2w.register_text(resp.body)[0]->id(), f->id());
}

TEST(HttpFormats, DecodeResolvingFetchesThenDecodes) {
  pbio::FormatRegistry sender_reg;
  auto f = sender_reg.register_format("ASDOffEvent", asdoff_fields(),
                                      sizeof(AsdOff));
  http::Server server;
  core::HttpFormatPublisher publisher(server);
  publisher.publish(*f);

  AsdOff in;
  fill_asdoff(in, 17);
  Buffer wire = pbio::encode(*f, &in);

  // Receiver registers the same schema independently (same id), but we
  // drop its copy to force HTTP resolution of the *wire* format:
  pbio::FormatRegistry receiver_reg;
  auto native =
      receiver_reg.register_format("ASDOffEvent2", asdoff_fields(),
                                   sizeof(AsdOff));  // different name -> id
  pbio::Decoder dec(receiver_reg);
  core::HttpFormatResolver resolver(server.url_for("/formats/"));

  AsdOff out{};
  pbio::DecodeArena arena;
  resolver.decode_resolving(dec, receiver_reg, wire.span(), *native, &out,
                            arena);
  EXPECT_TRUE(asdoff_equal(in, out));
  EXPECT_NE(receiver_reg.by_id(f->id()), nullptr);
}

// --- Classification ------------------------------------------------------------------

TEST(Classify, WireMessagesClassifyById) {
  pbio::FormatRegistry reg;
  auto f = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  AsdOff in;
  fill_asdoff(in);
  Buffer wire = pbio::encode(*f, &in);
  EXPECT_EQ(core::classify_wire_message(reg, wire.span()), f);

  pbio::FormatRegistry empty;
  EXPECT_EQ(core::classify_wire_message(empty, wire.span()), nullptr);
}

TEST(Classify, TextMessagePicksTheRightType) {
  schema::SchemaDocument candidates = schema::read_schema_text(kFlightOps);

  pbio::FormatRegistry reg;
  core::Xml2Wire x2w(reg);
  auto formats = x2w.register_text(kFlightOps);
  pbio::DynamicRecord msg(formats[1]);  // FlightOps
  msg.set_int("fltNum", 42);
  msg.set_string("dest", "LGA");
  msg.nested("crew").set_string("captain", "S");
  std::string text = textxml::encode_text(*formats[1], msg.data());

  auto scores = core::classify_text_message(text, candidates);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_EQ(scores[0].type_name, "FlightOps");
  EXPECT_GT(scores[0].score, scores[1].score);
  EXPECT_EQ(scores[0].missing, 0u);
  EXPECT_EQ(scores[0].unexpected, 0u);
}

TEST(Classify, PartialMessagesStillRankSensibly) {
  schema::SchemaDocument candidates = schema::read_schema_text(kFlightOps);
  // A hand-written fragment missing most fields but clearly FlightOps-ish.
  const char* text =
      "<record><fltNum>9</fltNum><dest>BOS</dest><bogus>1</bogus></record>";
  auto scores = core::classify_text_message(text, candidates);
  EXPECT_EQ(scores[0].type_name, "FlightOps");
  EXPECT_GT(scores[0].matched, 0u);
  EXPECT_GT(scores[0].missing, 0u);
  EXPECT_EQ(scores[0].unexpected, 1u);
}

TEST(Classify, AmbiguousTieBreaksTowardRootName) {
  const char* two = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="A"><xsd:element name="x" type="xsd:int"/></xsd:complexType>
  <xsd:complexType name="B"><xsd:element name="x" type="xsd:int"/></xsd:complexType>
</xsd:schema>)";
  schema::SchemaDocument candidates = schema::read_schema_text(two);
  auto scores = core::classify_text_message("<B><x>1</x></B>", candidates);
  EXPECT_EQ(scores[0].type_name, "B");
  EXPECT_DOUBLE_EQ(scores[0].score, scores[1].score);
}

}  // namespace
}  // namespace omf
