// Heterogeneous receive: conversion plans across architecture profiles,
// format evolution, plan caching, and the coalescing optimization.
//
// Foreign-sender messages are synthesized byte-exactly (see pbio/synth.hpp);
// everything from the message bytes onward is the production decode path.
#include <gtest/gtest.h>

#include "core/xml2wire.hpp"
#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "pbio/record.hpp"
#include "pbio/synth.hpp"
#include "test_structs.hpp"

namespace omf {
namespace {

using namespace omf::testing;
using pbio::ConversionPlan;
using pbio::ConvOp;
using pbio::DecodeArena;
using pbio::Decoder;
using pbio::DynamicRecord;
using pbio::FormatHandle;
using pbio::FormatRegistry;

/// Registers the B-structure schema for both the native profile and a
/// foreign one, fills a record, and returns everything a test needs.
class HeterogeneousTest : public ::testing::TestWithParam<const char*> {
protected:
  void SetUp() override {
    const arch::Profile& foreign = arch::profile_by_name(GetParam());
    core::Xml2Wire native_side(reg, arch::native());
    core::Xml2Wire foreign_side(reg, foreign);
    native_b = native_side.register_text(kAsdOffBSchema)[0];
    foreign_b = foreign_side.register_text(kAsdOffBSchema)[0];
  }

  DynamicRecord sample_record() {
    DynamicRecord r(native_b);
    r.set_string("cntrId", "ZTL");
    r.set_string("arln", "DL");
    r.set_int("fltNum", -204);  // negative: sign extension must be correct
    r.set_string("equip", "MD88");
    r.set_string("org", "ATL");
    r.set_string("dest", "BOS");
    std::vector<std::int64_t> off = {10, 20, 30, 40, 1u << 20};
    r.set_int_array("off", off);
    std::vector<std::int64_t> eta = {955913600, 955917200};
    r.set_int_array("eta", eta);
    return r;
  }

  FormatRegistry reg;
  FormatHandle native_b, foreign_b;
};

TEST_P(HeterogeneousTest, ForeignMessageDecodesToNativeValues) {
  DynamicRecord in = sample_record();
  Buffer wire = pbio::synthesize_wire(*foreign_b, in);

  Decoder dec(reg);
  DynamicRecord out(native_b);
  out.from_wire(dec, wire.span());
  EXPECT_TRUE(in.deep_equals(out)) << "foreign profile " << GetParam()
                                   << "\nin:  " << in.to_string()
                                   << "\nout: " << out.to_string();
}

TEST_P(HeterogeneousTest, ForeignFormatIdDiffersUnlessAbiIdentical) {
  const arch::Profile& foreign = arch::profile_by_name(GetParam());
  if (foreign == arch::native()) {
    EXPECT_EQ(native_b->id(), foreign_b->id());
  } else {
    EXPECT_NE(native_b->id(), foreign_b->id());
  }
}

TEST_P(HeterogeneousTest, EmptyDynamicArrayAcrossArchitectures) {
  DynamicRecord in(native_b);
  in.set_string("cntrId", "ZME");
  in.set_int("fltNum", 7);
  std::vector<std::int64_t> off = {1, 2, 3, 4, 5};
  in.set_int_array("off", off);
  in.set_int_array("eta", {});

  Buffer wire = pbio::synthesize_wire(*foreign_b, in);
  Decoder dec(reg);
  DynamicRecord out(native_b);
  out.from_wire(dec, wire.span());
  EXPECT_EQ(out.array_length("eta"), 0u);
  EXPECT_EQ(out.get_int("fltNum"), 7);
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, HeterogeneousTest,
                         ::testing::Values("x86_64", "i386", "sparc64",
                                           "sparc32", "arm32"),
                         [](const auto& info) { return info.param; });

// --- Nested structures across architectures ---------------------------------

class NestedHeterogeneousTest : public ::testing::TestWithParam<const char*> {
protected:
  void SetUp() override {
    const arch::Profile& foreign = arch::profile_by_name(GetParam());
    core::Xml2Wire native_side(reg, arch::native());
    core::Xml2Wire foreign_side(reg, foreign);
    native_c = native_side.register_text(kThreeAsdOffsSchema)[1];
    foreign_c = foreign_side.register_text(kThreeAsdOffsSchema)[1];
    native_b = reg.by_name("ASDOffEventB");
  }

  FormatRegistry reg;
  FormatHandle native_b, native_c, foreign_c;
};

TEST_P(NestedHeterogeneousTest, NestedRecordsConvert) {
  DynamicRecord in(native_c);
  in.set_float("bart", 3.25);
  in.set_float("lisa", -0.5);
  int flt = 100;
  for (const char* which : {"one", "two", "three"}) {
    auto sub = in.nested(which);
    sub.set_string("cntrId", "ZTL");
    sub.set_string("arln", "DL");
    sub.set_int("fltNum", flt++);
    sub.set_string("equip", "B737");
    sub.set_string("org", "ATL");
    sub.set_string("dest", "DCA");
    std::vector<std::int64_t> off = {9, 8, 7, 6, 5};
    sub.set_int_array("off", off);
    std::vector<std::int64_t> eta = {11, 22, 33};
    sub.set_int_array("eta", eta);
  }

  Buffer wire = pbio::synthesize_wire(*foreign_c, in);
  Decoder dec(reg);
  DynamicRecord out(native_c);
  out.from_wire(dec, wire.span());
  EXPECT_TRUE(in.deep_equals(out)) << "foreign profile " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, NestedHeterogeneousTest,
                         ::testing::Values("i386", "sparc64", "sparc32"),
                         [](const auto& info) { return info.param; });

// --- Format evolution ---------------------------------------------------------

class EvolutionTest : public ::testing::Test {
protected:
  FormatRegistry reg;
};

TEST_F(EvolutionTest, NewReceiverReadsOldMessages) {
  // v1 lacks the "gate" and "delayMin" fields that v2 adds.
  const char* v1_schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Departure">
    <xsd:element name="fltNum" type="xsd:int" />
    <xsd:element name="dest" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>)";
  const char* v2_schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Departure">
    <xsd:element name="fltNum" type="xsd:int" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="gate" type="xsd:string" />
    <xsd:element name="delayMin" type="xsd:int" />
  </xsd:complexType>
</xsd:schema>)";

  core::Xml2Wire x2w(reg);
  auto v1 = x2w.register_text(v1_schema)[0];
  auto v2 = x2w.register_text(v2_schema)[0];
  ASSERT_NE(v1->id(), v2->id());

  DynamicRecord old_msg(v1);
  old_msg.set_int("fltNum", 99);
  old_msg.set_string("dest", "LGA");
  Buffer wire = old_msg.encode();

  Decoder dec(reg);
  DynamicRecord out(v2);
  out.from_wire(dec, wire.span());
  EXPECT_EQ(out.get_int("fltNum"), 99);
  EXPECT_STREQ(out.get_string("dest"), "LGA");
  // Fields the sender predates are zero / null.
  EXPECT_EQ(out.get_string("gate"), nullptr);
  EXPECT_EQ(out.get_int("delayMin"), 0);
}

TEST_F(EvolutionTest, OldReceiverReadsNewMessages) {
  const char* v1_schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Departure">
    <xsd:element name="fltNum" type="xsd:int" />
    <xsd:element name="dest" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>)";
  const char* v2_schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Departure">
    <xsd:element name="gate" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:int" />
    <xsd:element name="dest" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>)";

  core::Xml2Wire x2w(reg);
  auto v1 = x2w.register_text(v1_schema)[0];
  auto v2 = x2w.register_text(v2_schema)[0];

  DynamicRecord new_msg(v2);
  new_msg.set_string("gate", "A17");
  new_msg.set_int("fltNum", 1200);
  new_msg.set_string("dest", "SFO");
  Buffer wire = new_msg.encode();

  Decoder dec(reg);
  DynamicRecord out(v1);
  out.from_wire(dec, wire.span());
  // Unknown wire fields are skipped; known fields land despite the layout
  // shift the inserted field caused.
  EXPECT_EQ(out.get_int("fltNum"), 1200);
  EXPECT_STREQ(out.get_string("dest"), "SFO");
}

TEST_F(EvolutionTest, FieldClassChangeIsRejected) {
  std::vector<pbio::FieldSpec> v1 = {{"x", "integer", 4}};
  std::vector<pbio::FieldSpec> v2 = {{"x", "string", 0}};
  auto f1 = reg.register_computed("T", v1);
  auto f2 = reg.register_computed("T", v2);
  EXPECT_THROW(ConversionPlan::build(f1, f2), FormatError);
  EXPECT_THROW(ConversionPlan::build(f2, f1), FormatError);
}

TEST_F(EvolutionTest, StaticToDynamicArrayChangeIsRejected) {
  std::vector<pbio::FieldSpec> v1 = {{"a", "integer[4]", 4}};
  std::vector<pbio::FieldSpec> v2 = {{"a", "integer[n]", 4},
                                     {"n", "integer", 4}};
  auto f1 = reg.register_computed("T", v1);
  auto f2 = reg.register_computed("T", v2);
  EXPECT_THROW(ConversionPlan::build(f1, f2), FormatError);
}

TEST_F(EvolutionTest, StaticArrayGrowthZeroFillsTail) {
  std::vector<pbio::FieldSpec> v1 = {{"a", "integer[2]", 4},
                                     {"z", "integer", 4}};
  std::vector<pbio::FieldSpec> v2 = {{"a", "integer[4]", 4},
                                     {"z", "integer", 4}};
  auto f1 = reg.register_computed("T", v1);
  auto f2 = reg.register_computed("T", v2);

  DynamicRecord in(f1);
  std::vector<std::int64_t> a = {5, 6};
  in.set_int_array("a", a);
  in.set_int("z", 77);
  Buffer wire = in.encode();

  Decoder dec(reg);
  DynamicRecord out(f2);
  out.from_wire(dec, wire.span());
  std::vector<std::int64_t> expect = {5, 6, 0, 0};
  EXPECT_EQ(out.get_int_array("a"), expect);
  EXPECT_EQ(out.get_int("z"), 77);
}

// --- Integer width and sign conversion ---------------------------------------

TEST(WidthConversion, SignExtensionAcrossWidths) {
  // Sender uses 4-byte ints (i386 long), receiver 8-byte (x86_64 long):
  // negative values must sign-extend; unsigned must zero-extend.
  const char* schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="W">
    <xsd:element name="s" type="xsd:long" />
    <xsd:element name="u" type="xsd:unsignedLong" />
  </xsd:complexType>
</xsd:schema>)";
  FormatRegistry reg;
  core::Xml2Wire native_side(reg, arch::native());
  core::Xml2Wire foreign_side(reg, arch::i386());
  auto native_f = native_side.register_text(schema)[0];
  auto foreign_f = foreign_side.register_text(schema)[0];

  // On i386, long is 4 bytes; on x86_64 it is 8.
  ASSERT_EQ(foreign_f->field_named("s")->size, 4u);
  ASSERT_EQ(native_f->field_named("s")->size, 8u);

  DynamicRecord in(native_f);
  in.set_int("s", -123456);
  in.set_uint("u", 0xFFFF0000u);  // would look negative if sign-extended
  Buffer wire = pbio::synthesize_wire(*foreign_f, in);

  Decoder dec(reg);
  DynamicRecord out(native_f);
  out.from_wire(dec, wire.span());
  EXPECT_EQ(out.get_int("s"), -123456);
  EXPECT_EQ(out.get_uint("u"), 0xFFFF0000u);
}

TEST(WidthConversion, FloatWidthsAcrossProfiles) {
  const char* schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="F">
    <xsd:element name="f" type="xsd:float" />
    <xsd:element name="d" type="xsd:double" />
  </xsd:complexType>
</xsd:schema>)";
  FormatRegistry reg;
  core::Xml2Wire native_side(reg, arch::native());
  core::Xml2Wire foreign_side(reg, arch::sparc64());
  auto native_f = native_side.register_text(schema)[0];
  auto foreign_f = foreign_side.register_text(schema)[0];

  DynamicRecord in(native_f);
  in.set_float("f", 1.5f);
  in.set_float("d", -6.25e-3);
  Buffer wire = pbio::synthesize_wire(*foreign_f, in);

  Decoder dec(reg);
  DynamicRecord out(native_f);
  out.from_wire(dec, wire.span());
  EXPECT_FLOAT_EQ(static_cast<float>(out.get_float("f")), 1.5f);
  EXPECT_DOUBLE_EQ(out.get_float("d"), -6.25e-3);
}

// --- Plan structure and caching -----------------------------------------------

TEST(Plans, HomogeneousPlanCoalescesToSingleCopyForPlainStructs) {
  FormatRegistry reg;
  std::vector<pbio::FieldSpec> specs = {
      {"a", "integer", 4}, {"b", "integer", 4},
      {"c", "float", 8},   {"d", "unsigned", 8},
  };
  auto f = reg.register_computed("P", specs);
  auto plan = ConversionPlan::build(f, f);
  ASSERT_EQ(plan->ops().size(), 1u);
  EXPECT_EQ(plan->ops()[0].kind, ConvOp::Kind::kCopy);
  EXPECT_EQ(plan->ops()[0].count, f->struct_size());
  EXPECT_TRUE(plan->is_trivial());
}

TEST(Plans, CoalescingCanBeDisabled) {
  FormatRegistry reg;
  std::vector<pbio::FieldSpec> specs = {
      {"a", "integer", 4}, {"b", "integer", 4}, {"c", "integer", 4},
      {"d", "integer", 4}};
  auto f = reg.register_computed("P", specs);
  auto fast = ConversionPlan::build(f, f, /*coalesce=*/true);
  auto slow = ConversionPlan::build(f, f, /*coalesce=*/false);
  EXPECT_EQ(fast->ops().size(), 1u);
  EXPECT_EQ(slow->ops().size(), 4u);
}

TEST(Plans, SwappedPlanIsNotTrivial) {
  FormatRegistry reg;
  std::vector<pbio::FieldSpec> specs = {{"a", "integer", 4}};
  auto native_f = reg.register_computed("P", specs, arch::native());
  auto foreign_f = reg.register_computed("P", specs, arch::sparc64());
  auto plan = ConversionPlan::build(foreign_f, native_f);
  EXPECT_FALSE(plan->is_trivial());
  EXPECT_EQ(plan->ops()[0].kind, ConvOp::Kind::kInt);
  EXPECT_TRUE(plan->ops()[0].swap);
}

TEST(Plans, DecoderCachesPlans) {
  FormatRegistry reg;
  core::Xml2Wire native_side(reg, arch::native());
  core::Xml2Wire foreign_side(reg, arch::sparc64());
  auto native_f = native_side.register_text(testing::kAsdOffBSchema)[0];
  auto foreign_f = foreign_side.register_text(testing::kAsdOffBSchema)[0];

  Decoder dec(reg);
  DynamicRecord r(native_f);
  r.set_string("cntrId", "Z");
  std::vector<std::int64_t> off = {1, 2, 3, 4, 5};
  r.set_int_array("off", off);
  Buffer wire = pbio::synthesize_wire(*foreign_f, r);

  EXPECT_EQ(dec.cached_plans(), 0u);
  DynamicRecord out(native_f);
  out.from_wire(dec, wire.span());
  EXPECT_EQ(dec.cached_plans(), 1u);
  out.from_wire(dec, wire.span());
  out.from_wire(dec, wire.span());
  EXPECT_EQ(dec.cached_plans(), 1u);  // reused, not rebuilt
}

TEST(Plans, CoalescedAndNaivePlansProduceIdenticalResults) {
  FormatRegistry reg;
  core::Xml2Wire x2w(reg);
  auto f = x2w.register_text(testing::kAsdOffBSchema)[0];

  DynamicRecord in(f);
  in.set_string("cntrId", "ZOB");
  in.set_int("fltNum", 17);
  std::vector<std::int64_t> off = {2, 4, 6, 8, 10};
  in.set_int_array("off", off);
  std::vector<std::int64_t> eta = {42};
  in.set_int_array("eta", eta);
  Buffer wire = in.encode();

  Decoder fast(reg, /*coalesce_plans=*/true);
  Decoder slow(reg, /*coalesce_plans=*/false);
  DynamicRecord out1(f), out2(f);
  out1.from_wire(fast, wire.span());
  out2.from_wire(slow, wire.span());
  EXPECT_TRUE(out1.deep_equals(out2));
  EXPECT_TRUE(in.deep_equals(out1));
}

}  // namespace
}  // namespace omf
