// Server-side overload protection: bounded queues, admission quotas, the
// process memory budget, /healthz, the crash-recoverable journal, and the
// seeded chaos scenario (stalled subscriber + publisher flood).
//
// Suite names all start with "Overload" on purpose: the TSan CI job filters
// on that prefix to race-check the drain/shed paths.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "fault/faulty.hpp"
#include "http/http.hpp"
#include "obs/metrics.hpp"
#include "overload/admission.hpp"
#include "overload/budget.hpp"
#include "overload/health.hpp"
#include "overload/journal.hpp"
#include "pbio/arena.hpp"
#include "test_structs.hpp"
#include "transport/backbone.hpp"
#include "transport/format_service.hpp"
#include "transport/queue.hpp"
#include "transport/remote_backbone.hpp"
#include "util/rng.hpp"

namespace omf {
namespace {

using namespace std::chrono_literals;
using namespace omf::testing;
using omf::transport::EventBackbone;
using omf::transport::MessageQueue;
using omf::transport::OverflowPolicy;
using omf::transport::PushOutcome;
using omf::transport::QueueOptions;

Buffer text_buffer(std::string_view text) {
  Buffer b;
  b.append(text);
  return b;
}

std::string as_text(const Buffer& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

Buffer filled_buffer(std::size_t n, char fill = 'x') {
  Buffer b;
  std::string s(n, fill);
  b.append(s);
  return b;
}

/// The budget and health monitor are process singletons; every test that
/// touches them resets on entry *and* exit so a direct (unfiltered) run of
/// this binary stays order-independent. Under ctest each test is its own
/// process anyway.
struct BudgetGuard {
  BudgetGuard() { reset(); }
  ~BudgetGuard() { reset(); }
  static void reset() {
    overload::HealthMonitor::instance().set_draining(false);
    overload::MemoryBudget::instance().reset_for_tests();
  }
};

/// Manual clock for deterministic token-bucket tests.
std::atomic<std::uint64_t> g_fake_now_ns{0};
std::uint64_t fake_now() { return g_fake_now_ns.load(); }

std::filesystem::path fresh_dir(const std::string& tag) {
  std::filesystem::path dir = std::filesystem::temp_directory_path() /
                              ("omf_overload_" + tag + "_" +
                               std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::uint64_t counter_value(const std::string& name) {
  return obs::MetricsRegistry::instance().counter(name).value();
}

// --- Bounded queue policies --------------------------------------------------

TEST(OverloadQueue, UnboundedByDefault) {
  MessageQueue q;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(q.offer(text_buffer("m")), PushOutcome::kOk);
  }
  EXPECT_EQ(q.size(), 1000u);
  EXPECT_EQ(q.dropped(), 0u);
}

TEST(OverloadQueue, ShedOldestDropsFromTheFront) {
  MessageQueue q({.max_messages = 2, .policy = OverflowPolicy::kShedOldest});
  EXPECT_EQ(q.offer(text_buffer("a")), PushOutcome::kOk);
  EXPECT_EQ(q.offer(text_buffer("b")), PushOutcome::kOk);
  EXPECT_EQ(q.offer(text_buffer("c")), PushOutcome::kShed);
  EXPECT_EQ(q.dropped(), 1u);
  auto m1 = q.try_pop();
  auto m2 = q.try_pop();
  ASSERT_TRUE(m1 && m2);
  EXPECT_EQ(as_text(*m1), "b");  // "a" was sacrificed
  EXPECT_EQ(as_text(*m2), "c");
  EXPECT_FALSE(q.try_pop());
}

TEST(OverloadQueue, OversizedMessageIsShedOnArrival) {
  MessageQueue q({.max_bytes = 8, .policy = OverflowPolicy::kShedOldest});
  EXPECT_EQ(q.offer(filled_buffer(16)), PushOutcome::kShed);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.dropped(), 1u);
  // The queue is still usable for messages that fit.
  EXPECT_EQ(q.offer(filled_buffer(4)), PushOutcome::kOk);
}

TEST(OverloadQueue, ByteBoundShedsUntilTheNewMessageFits) {
  MessageQueue q({.max_bytes = 10, .policy = OverflowPolicy::kShedOldest});
  EXPECT_EQ(q.offer(filled_buffer(6, 'a')), PushOutcome::kOk);
  EXPECT_EQ(q.offer(filled_buffer(6, 'b')), PushOutcome::kShed);
  EXPECT_EQ(q.size(), 1u);
  auto m = q.try_pop();
  ASSERT_TRUE(m);
  EXPECT_EQ(as_text(*m), "bbbbbb");
}

TEST(OverloadQueue, BlockPolicyBackpressuresTheProducer) {
  MessageQueue q({.max_messages = 1, .policy = OverflowPolicy::kBlock});
  ASSERT_EQ(q.offer(text_buffer("first")), PushOutcome::kOk);
  std::thread consumer([&] {
    std::this_thread::sleep_for(50ms);
    auto m = q.pop();
    ASSERT_TRUE(m);
  });
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(q.offer(text_buffer("second")), PushOutcome::kOk);
  auto waited = std::chrono::steady_clock::now() - t0;
  consumer.join();
  EXPECT_GE(waited, 20ms);  // the offer genuinely blocked on the consumer
  EXPECT_EQ(q.dropped(), 0u);
}

TEST(OverloadQueue, BlockPolicyWakesOnClose) {
  MessageQueue q({.max_messages = 1, .policy = OverflowPolicy::kBlock});
  ASSERT_EQ(q.offer(text_buffer("first")), PushOutcome::kOk);
  std::thread closer([&] {
    std::this_thread::sleep_for(50ms);
    q.close();
  });
  EXPECT_EQ(q.offer(text_buffer("second")), PushOutcome::kClosed);
  closer.join();
}

TEST(OverloadQueue, DisconnectPolicyClosesAtOverflow) {
  MessageQueue q({.max_messages = 2, .policy = OverflowPolicy::kDisconnect});
  EXPECT_EQ(q.offer(text_buffer("a")), PushOutcome::kOk);
  EXPECT_EQ(q.offer(text_buffer("b")), PushOutcome::kOk);
  EXPECT_EQ(q.offer(text_buffer("c")), PushOutcome::kDisconnected);
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.dropped(), 3u);  // both queued messages and the overflowing one
  EXPECT_FALSE(q.pop());       // closed-and-empty
  EXPECT_EQ(q.offer(text_buffer("d")), PushOutcome::kClosed);
}

TEST(OverloadQueue, QueuedBytesChargeTheMemoryBudget) {
  BudgetGuard guard;
  auto& budget = overload::MemoryBudget::instance();
  {
    MessageQueue q;
    q.offer(filled_buffer(100));
    q.offer(filled_buffer(100));
    q.offer(filled_buffer(100));
    EXPECT_EQ(budget.used(), 300u);
    (void)q.try_pop();
    EXPECT_EQ(budget.used(), 200u);
  }
  // Destruction releases whatever was still queued.
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak(), 300u);
}

TEST(OverloadQueue, ConcurrentProducersAndConsumersBalance) {
  // Exercised under TSan by CI: shed accounting must stay exact under
  // contention — every produced message is either received or dropped.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 1000;
  MessageQueue q({.max_messages = 16, .policy = OverflowPolicy::kShedOldest});
  std::atomic<int> received{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        auto m = q.pop();
        if (!m) return;  // closed and drained
        received.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) q.offer(text_buffer("m"));
    });
  }
  for (auto& p : producers) p.join();
  q.close();
  for (auto& c : consumers) c.join();
  EXPECT_EQ(received.load() + static_cast<int>(q.dropped()),
            kProducers * kPerProducer);
}

// --- Admission control -------------------------------------------------------

TEST(OverloadAdmission, ConnectionCapsPerPeerAndTotal) {
  overload::AdmissionController ac(
      {.max_connections_per_peer = 2, .max_connections_total = 3});
  EXPECT_TRUE(ac.admit_connection("10.0.0.1"));
  EXPECT_TRUE(ac.admit_connection("10.0.0.1"));
  overload::Admission third = ac.admit_connection("10.0.0.1");
  EXPECT_FALSE(third);
  EXPECT_STREQ(third.code, "OMF501");
  EXPECT_NE(third.detail.find("10.0.0.1"), std::string::npos);

  EXPECT_TRUE(ac.admit_connection("10.0.0.2"));
  overload::Admission fourth = ac.admit_connection("10.0.0.2");
  EXPECT_FALSE(fourth);
  EXPECT_STREQ(fourth.code, "OMF502");  // total cap bites before per-peer
  EXPECT_EQ(ac.active_connections(), 3u);

  ac.release_connection("10.0.0.1");
  EXPECT_TRUE(ac.admit_connection("10.0.0.2"));
  EXPECT_EQ(ac.active_connections(), 3u);
}

TEST(OverloadAdmission, ReleasingUnknownPeerIsHarmless) {
  overload::AdmissionController ac({.max_connections_per_peer = 1});
  ac.release_connection("never-admitted");
  EXPECT_EQ(ac.active_connections(), 0u);
  EXPECT_TRUE(ac.admit_connection("p"));
}

TEST(OverloadAdmission, MessageRateBucketDrainsAndRefills) {
  overload::AdmissionController ac({.msgs_per_sec = 2});
  g_fake_now_ns.store(0);
  ac.set_now_fn(&fake_now);

  // A new peer starts with a full bucket (burst defaults to 1s of rate).
  EXPECT_TRUE(ac.admit_message("p", 10));
  EXPECT_TRUE(ac.admit_message("p", 10));
  overload::Admission rejected = ac.admit_message("p", 10);
  EXPECT_FALSE(rejected);
  EXPECT_STREQ(rejected.code, "OMF503");

  g_fake_now_ns.store(500'000'000);  // +0.5s → one token back
  EXPECT_TRUE(ac.admit_message("p", 10));
  EXPECT_FALSE(ac.admit_message("p", 10));

  g_fake_now_ns.store(60'000'000'000);  // a minute later: capped at burst
  EXPECT_TRUE(ac.admit_message("p", 10));
  EXPECT_TRUE(ac.admit_message("p", 10));
  EXPECT_FALSE(ac.admit_message("p", 10));
}

TEST(OverloadAdmission, ByteRateQuotaIsIndependentOfMessageCount) {
  overload::AdmissionController ac({.bytes_per_sec = 1000});
  g_fake_now_ns.store(0);
  ac.set_now_fn(&fake_now);

  EXPECT_TRUE(ac.admit_message("p", 700));
  overload::Admission rejected = ac.admit_message("p", 700);
  EXPECT_FALSE(rejected);
  EXPECT_STREQ(rejected.code, "OMF504");
  EXPECT_TRUE(ac.admit_message("p", 200));  // small messages still fit

  g_fake_now_ns.store(1'000'000'000);  // +1s → bucket back to full
  EXPECT_TRUE(ac.admit_message("p", 900));
}

TEST(OverloadAdmission, ExplicitBurstOverridesTheDefaultDepth) {
  overload::AdmissionController ac({.msgs_per_sec = 0.001, .msgs_burst = 5});
  g_fake_now_ns.store(0);
  ac.set_now_fn(&fake_now);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ac.admit_message("p", 1)) << "message " << i;
  }
  EXPECT_FALSE(ac.admit_message("p", 1));
}

TEST(OverloadAdmission, PeersAreIsolatedFromEachOther) {
  overload::AdmissionController ac({.msgs_per_sec = 1});
  g_fake_now_ns.store(0);
  ac.set_now_fn(&fake_now);
  EXPECT_TRUE(ac.admit_message("noisy", 1));
  EXPECT_FALSE(ac.admit_message("noisy", 1));
  EXPECT_TRUE(ac.admit_message("quiet", 1));  // unaffected by the noisy peer
}

// --- Memory budget -----------------------------------------------------------

TEST(OverloadBudget, TryChargeRespectsTheLimitChargeDoesNot) {
  BudgetGuard guard;
  auto& budget = overload::MemoryBudget::instance();
  budget.set_limit(1000);
  EXPECT_TRUE(budget.try_charge(800));
  EXPECT_FALSE(budget.try_charge(300));  // would exceed: refused, not charged
  EXPECT_EQ(budget.used(), 800u);
  budget.charge(300);  // unconditional path may overshoot
  EXPECT_EQ(budget.used(), 1100u);
  budget.release(1100);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak(), 1100u);
}

TEST(OverloadBudget, HysteresisBetweenWatermarks) {
  BudgetGuard guard;
  auto& budget = overload::MemoryBudget::instance();
  budget.set_limit(1000);  // defaults: high 90%, low 70%
  budget.charge(950);
  EXPECT_TRUE(budget.degraded());
  EXPECT_EQ(overload::HealthMonitor::instance().state(),
            overload::Health::kDegraded);
  budget.release(200);  // 750: below high, still above low — no flapping
  EXPECT_TRUE(budget.degraded());
  budget.release(100);  // 650: below the low watermark — recovered
  EXPECT_FALSE(budget.degraded());
  EXPECT_EQ(overload::HealthMonitor::instance().state(), overload::Health::kOk);
}

TEST(OverloadBudget, UnlimitedBudgetNeverDegrades) {
  BudgetGuard guard;
  auto& budget = overload::MemoryBudget::instance();
  budget.charge(1u << 30);
  EXPECT_FALSE(budget.degraded());
  EXPECT_TRUE(budget.try_charge(1u << 30));
  budget.release(1u << 30);
  budget.release(1u << 30);
  EXPECT_EQ(budget.used(), 0u);
}

TEST(OverloadBudget, DecodeArenaChunksAreAccounted) {
  BudgetGuard guard;
  auto& budget = overload::MemoryBudget::instance();
  {
    pbio::DecodeArena arena;
    arena.allocate(1 << 20);
    EXPECT_GE(budget.used(), 1u << 20);
    // reset() keeps the largest chunk on the free list (still reserved,
    // still charged) — the budget reflects memory actually held.
    arena.reset();
    EXPECT_EQ(budget.used(), arena.reserved_bytes());
    arena.clear();
    EXPECT_EQ(budget.used(), 0u);
    arena.allocate(1 << 16);
    EXPECT_GE(budget.used(), 1u << 16);
  }
  // Destruction releases everything the arena still held.
  EXPECT_EQ(budget.used(), 0u);
}

// --- Health tri-state --------------------------------------------------------

TEST(OverloadHealth, DrainingWinsOverDegraded) {
  BudgetGuard guard;
  auto& health = overload::HealthMonitor::instance();
  auto& budget = overload::MemoryBudget::instance();
  EXPECT_EQ(health.state(), overload::Health::kOk);

  budget.set_limit(100);
  budget.charge(95);
  EXPECT_EQ(health.state(), overload::Health::kDegraded);

  health.set_draining(true);
  EXPECT_EQ(health.state(), overload::Health::kDraining);

  health.set_draining(false);
  EXPECT_EQ(health.state(), overload::Health::kDegraded);
  budget.release(95);
  EXPECT_EQ(health.state(), overload::Health::kOk);

  EXPECT_STREQ(health_name(overload::Health::kOk), "ok");
  EXPECT_STREQ(health_name(overload::Health::kDegraded), "degraded");
  EXPECT_STREQ(health_name(overload::Health::kDraining), "draining");
}

// --- Journal -----------------------------------------------------------------

std::vector<std::string> replay_all(overload::Journal& j,
                                    overload::Journal::RecoverStats* stats) {
  std::vector<std::string> records;
  auto s = j.recover([&](std::span<const std::uint8_t> r) {
    records.emplace_back(reinterpret_cast<const char*>(r.data()), r.size());
  });
  if (stats) *stats = s;
  return records;
}

void append_str(overload::Journal& j, std::string_view s) {
  j.append({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

TEST(OverloadJournal, AppendThenRecoverRoundtrips) {
  auto dir = fresh_dir("journal_roundtrip");
  {
    overload::Journal j(dir);
    overload::Journal::RecoverStats stats;
    EXPECT_TRUE(replay_all(j, &stats).empty());
    append_str(j, "alpha");
    append_str(j, "beta");
    append_str(j, "gamma");
  }
  overload::Journal j(dir);
  overload::Journal::RecoverStats stats;
  std::vector<std::string> records = replay_all(j, &stats);
  EXPECT_EQ(records, (std::vector<std::string>{"alpha", "beta", "gamma"}));
  EXPECT_EQ(stats.journal_records, 3u);
  EXPECT_EQ(stats.snapshot_records, 0u);
  EXPECT_FALSE(stats.torn_tail);
  std::filesystem::remove_all(dir);
}

TEST(OverloadJournal, TornTailIsTruncatedAndTheLogStaysAppendable) {
  auto dir = fresh_dir("journal_torn");
  std::uintmax_t clean_size = 0;
  {
    overload::Journal j(dir);
    replay_all(j, nullptr);
    append_str(j, "alpha");
    append_str(j, "beta");
    clean_size = std::filesystem::file_size(j.journal_path());
  }
  {
    // Simulate a crash mid-append: a length header promising more bytes
    // than were ever written.
    std::ofstream torn(dir / "journal.log",
                       std::ios::binary | std::ios::app);
    const char partial[] = {0x40, 0x00, 0x00, 0x00, 'j', 'u', 'n', 'k'};
    torn.write(partial, sizeof(partial));
  }
  {
    overload::Journal j(dir);
    overload::Journal::RecoverStats stats;
    std::vector<std::string> records = replay_all(j, &stats);
    EXPECT_EQ(records, (std::vector<std::string>{"alpha", "beta"}));
    EXPECT_TRUE(stats.torn_tail);
    EXPECT_EQ(std::filesystem::file_size(j.journal_path()), clean_size);
    append_str(j, "gamma");  // appends extend a clean log, not buried junk
  }
  overload::Journal j(dir);
  overload::Journal::RecoverStats stats;
  EXPECT_EQ(replay_all(j, &stats),
            (std::vector<std::string>{"alpha", "beta", "gamma"}));
  EXPECT_FALSE(stats.torn_tail);
  std::filesystem::remove_all(dir);
}

TEST(OverloadJournal, CorruptedRecordStopsReplayAtTheLastGoodOne) {
  auto dir = fresh_dir("journal_corrupt");
  {
    overload::Journal j(dir);
    replay_all(j, nullptr);
    append_str(j, "alpha");  // record: 4 (len) + 5 (payload) + 4 (crc) = 13
    append_str(j, "betaa");
    append_str(j, "gamma");
  }
  {
    std::fstream f(dir / "journal.log",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(13 + 4 + 1);  // a payload byte of the second record
    f.put('X');
  }
  overload::Journal j(dir);
  overload::Journal::RecoverStats stats;
  // The CRC catches the flip; everything from the corrupt record on is
  // discarded (it cannot be trusted to be framed correctly either).
  EXPECT_EQ(replay_all(j, &stats), (std::vector<std::string>{"alpha"}));
  EXPECT_TRUE(stats.torn_tail);
  std::filesystem::remove_all(dir);
}

TEST(OverloadJournal, CompactionFoldsTheJournalIntoTheSnapshot) {
  auto dir = fresh_dir("journal_compact");
  {
    overload::Journal j(dir, {.compact_threshold = 1});
    replay_all(j, nullptr);
    append_str(j, "alpha");
    append_str(j, "beta");
    EXPECT_TRUE(j.wants_compaction());
    std::vector<Buffer> state;
    state.push_back(text_buffer("alpha"));
    state.push_back(text_buffer("beta"));
    j.compact(state);
    EXPECT_EQ(j.journal_bytes(), 0u);
    append_str(j, "gamma");  // post-compaction appends land in the journal
  }
  overload::Journal j(dir);
  overload::Journal::RecoverStats stats;
  EXPECT_EQ(replay_all(j, &stats),
            (std::vector<std::string>{"alpha", "beta", "gamma"}));
  EXPECT_EQ(stats.snapshot_records, 2u);
  EXPECT_EQ(stats.journal_records, 1u);
  std::filesystem::remove_all(dir);
}

TEST(OverloadJournal, RecoveryAfterCompactionSeesOnlyTheSnapshot) {
  auto dir = fresh_dir("journal_compact_durable");
  {
    overload::Journal j(dir, {.compact_threshold = 1});
    replay_all(j, nullptr);
    append_str(j, "alpha");
    append_str(j, "beta");
    std::vector<Buffer> state;
    state.push_back(text_buffer("alpha"));
    state.push_back(text_buffer("beta"));
    j.compact(state);
  }
  EXPECT_TRUE(std::filesystem::exists(dir / "snapshot.bin"));
  EXPECT_EQ(std::filesystem::file_size(dir / "journal.log"), 0u);
  overload::Journal j(dir);
  overload::Journal::RecoverStats stats;
  EXPECT_EQ(replay_all(j, &stats),
            (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(stats.snapshot_records, 2u);
  EXPECT_EQ(stats.journal_records, 0u);
  EXPECT_FALSE(stats.torn_tail);
  std::filesystem::remove_all(dir);
}

// --- Format service: crash recovery and brownout -----------------------------

TEST(OverloadRegistry, RecoversAcrossRestart) {
  auto dir = fresh_dir("registry_restart");
  pbio::FormatRegistry source;
  auto f = source.register_format("ASDOffEvent", asdoff_fields(),
                                  sizeof(AsdOff));
  {
    transport::FormatServiceServer server(
        transport::FormatServiceServer::Options{.journal_dir = dir.string()});
    server.publish(*f);
    transport::FormatServiceClient client(server.port());
    auto [b, c] = register_nested_pair(source);
    client.push(*c);  // the nested dependency travels too
    EXPECT_EQ(server.published(), 3u);
  }
  transport::FormatServiceServer revived(
      transport::FormatServiceServer::Options{.journal_dir = dir.string()});
  // Two journal records: the direct publish, and the pushed bundle (which
  // carries its nested dependency inside one record).
  EXPECT_EQ(revived.recovered().journal_records, 2u);
  EXPECT_FALSE(revived.recovered().torn_tail);
  EXPECT_EQ(revived.published(), 3u);

  // The revived server serves the recovered metadata over the wire.
  pbio::FormatRegistry receiver;
  transport::FormatServiceClient client(revived.port());
  auto fetched = client.fetch(receiver, f->id());
  ASSERT_NE(fetched, nullptr);
  EXPECT_EQ(fetched->name(), "ASDOffEvent");
  std::filesystem::remove_all(dir);
}

TEST(OverloadRegistry, ToleratesATornJournalTailOnRestart) {
  auto dir = fresh_dir("registry_torn");
  pbio::FormatRegistry source;
  auto f = source.register_format("ASDOffEvent", asdoff_fields(),
                                  sizeof(AsdOff));
  {
    transport::FormatServiceServer server(
        transport::FormatServiceServer::Options{.journal_dir = dir.string()});
    server.publish(*f);
  }
  {
    std::ofstream torn(dir / "journal.log",
                       std::ios::binary | std::ios::app);
    const char partial[] = {0x7f, 0x00, 0x00, 0x00, 'x'};
    torn.write(partial, sizeof(partial));
  }
  transport::FormatServiceServer revived(
      transport::FormatServiceServer::Options{.journal_dir = dir.string()});
  EXPECT_TRUE(revived.recovered().torn_tail);
  EXPECT_EQ(revived.published(), 1u);
  // The truncated log accepts new registrations as if nothing happened.
  auto g = source.register_format("ASDOffEventB", asdoffb_fields(),
                                  sizeof(AsdOffB));
  revived.publish(*g);
  EXPECT_EQ(revived.published(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(OverloadRegistry, CompactsTheJournalPastTheThreshold) {
  auto dir = fresh_dir("registry_compact");
  pbio::FormatRegistry source;
  {
    transport::FormatServiceServer server(
        transport::FormatServiceServer::Options{
            .journal_dir = dir.string(),
            .journal = {.compact_threshold = 64}});
    for (int i = 0; i < 8; ++i) {
      auto f = source.register_format("Fmt" + std::to_string(i),
                                      asdoff_fields(), sizeof(AsdOff));
      server.publish(*f);
    }
    EXPECT_EQ(server.published(), 8u);
  }
  // The bulk of the state must have moved into the snapshot.
  EXPECT_GT(std::filesystem::file_size(dir / "snapshot.bin"), 0u);
  transport::FormatServiceServer revived(
      transport::FormatServiceServer::Options{.journal_dir = dir.string()});
  EXPECT_EQ(revived.published(), 8u);
  EXPECT_GT(revived.recovered().snapshot_records, 0u);
  std::filesystem::remove_all(dir);
}

TEST(OverloadRegistry, BrownoutRejectsPushesButServesFetches) {
  BudgetGuard guard;
  pbio::FormatRegistry source;
  auto f = source.register_format("ASDOffEvent", asdoff_fields(),
                                  sizeof(AsdOff));
  auto g = source.register_format("ASDOffEventB", asdoffb_fields(),
                                  sizeof(AsdOffB));
  transport::FormatServiceServer server;
  server.publish(*f);
  transport::FormatServiceClient client(server.port());

  // Degraded, not exhausted: past the 90% watermark with enough headroom
  // left that request frames still pass the preallocation budget check —
  // brownout is a policy decision, not an allocation failure.
  auto& budget = overload::MemoryBudget::instance();
  budget.set_limit(1 << 20);
  budget.charge(950 * 1024);
  ASSERT_EQ(overload::HealthMonitor::instance().state(),
            overload::Health::kDegraded);

  std::uint64_t rejects_before =
      counter_value("transport.format_service.push_rejects");
  try {
    client.push(*g);
    FAIL() << "push during brownout should be rejected";
  } catch (const TransportError& e) {
    EXPECT_NE(std::string(e.what()).find("[OMF500]"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(counter_value("transport.format_service.push_rejects"),
            rejects_before + 1);
  EXPECT_EQ(server.published(), 1u);

  // Fetches keep working: stale metadata beats no metadata.
  pbio::FormatRegistry receiver;
  EXPECT_NE(client.fetch(receiver, f->id()), nullptr);

  budget.release(950 * 1024);  // pressure recedes → pushes admitted again
  client.push(*g);
  EXPECT_EQ(server.published(), 2u);
}

TEST(OverloadRegistry, RateQuotaRejectsPushWithAStructuredReason) {
  pbio::FormatRegistry source;
  auto f = source.register_format("ASDOffEvent", asdoff_fields(),
                                  sizeof(AsdOff));
  auto g = source.register_format("ASDOffEventB", asdoffb_fields(),
                                  sizeof(AsdOffB));
  // One message, ever (the refill rate is negligible): the second request
  // from the same peer must be rejected.
  transport::FormatServiceServer server(
      transport::FormatServiceServer::Options{
          .journal_dir = {},
          .admission = {.msgs_per_sec = 0.001, .msgs_burst = 1}});
  transport::FormatServiceClient client(server.port());
  client.push(*f);
  try {
    client.push(*g);
    FAIL() << "second push should exceed the quota";
  } catch (const TransportError& e) {
    EXPECT_NE(std::string(e.what()).find("[OMF503]"), std::string::npos)
        << e.what();
  }
  // A throttled fetch just loses its connection (no response channel for a
  // structured reason there); the client surfaces the transport failure.
  pbio::FormatRegistry receiver;
  EXPECT_THROW((void)client.fetch(receiver, f->id()), TransportError);
}

// --- Kill -9 / restart harness (driven by CI; skipped without the env) -------

// CI runs ServeUntilKilled with OMF_OVERLOAD_SERVER_DIR set, kill -9s it
// mid-publish, then runs RecoverAfterKill against the same directory. Every
// format whose push was acknowledged (its name was recorded *after* publish
// returned, i.e. after the journal append was durable) must be recovered.
TEST(OverloadRegistryHarness, ServeUntilKilled) {
  const char* dir_env = std::getenv("OMF_OVERLOAD_SERVER_DIR");
  if (dir_env == nullptr) {
    GTEST_SKIP() << "set OMF_OVERLOAD_SERVER_DIR to run the kill harness";
  }
  std::filesystem::path dir(dir_env);
  std::filesystem::create_directories(dir / "journal");
  transport::FormatServiceServer server(
      transport::FormatServiceServer::Options{
          .journal_dir = (dir / "journal").string(),
          .journal = {.compact_threshold = 4096}});
  std::ofstream acked(dir / "acked.txt", std::ios::trunc);
  pbio::FormatRegistry source;
  for (int i = 0; i < 100000; ++i) {
    std::string name = "KilledFmt" + std::to_string(i);
    auto f = source.register_format(name, asdoff_fields(), sizeof(AsdOff));
    server.publish(*f);  // returns only once the journal append is durable
    acked << name << "\n" << std::flush;
  }
}

TEST(OverloadRegistryHarness, RecoverAfterKill) {
  const char* dir_env = std::getenv("OMF_OVERLOAD_SERVER_DIR");
  if (dir_env == nullptr) {
    GTEST_SKIP() << "set OMF_OVERLOAD_SERVER_DIR to run the kill harness";
  }
  std::filesystem::path dir(dir_env);
  transport::FormatServiceServer server(
      transport::FormatServiceServer::Options{
          .journal_dir = (dir / "journal").string()});
  std::set<std::string> recovered_names;
  for (const pbio::FormatHandle& f : server.formats()) {
    recovered_names.insert(f->name());
  }
  std::ifstream acked(dir / "acked.txt");
  ASSERT_TRUE(acked.good()) << "no acked.txt: did ServeUntilKilled run?";
  std::string name;
  std::size_t checked = 0;
  while (std::getline(acked, name)) {
    if (name.empty()) continue;
    EXPECT_TRUE(recovered_names.count(name))
        << "acknowledged format lost across kill -9: " << name;
    ++checked;
  }
  EXPECT_GT(checked, 0u) << "the server was killed before any ack";
  RecordProperty("acked_formats", static_cast<int>(checked));
}

// --- Remote backbone under overload ------------------------------------------

TEST(OverloadBackbone, StalledSubscriberIsShedWhileHealthyOneKeepsReceiving) {
  // The chaos scenario of the issue: one subscriber stops reading (via a
  // FaultProxy stall — the socket stays open, only backpressure is
  // observable) while a publisher floods. The stalled subscriber's bounded
  // queue sheds; the healthy subscriber sees the whole stream's tail; the
  // memory budget stays bounded by the queue caps, not the flood size.
  // The flood must overwhelm what the kernel will silently buffer on the
  // stalled path (both loopback sockets autotune into the megabytes), or
  // nothing ever backs up into the queue.
  BudgetGuard guard;
  constexpr std::size_t kMsgBytes = 16 * 1024;
  constexpr int kFlood = 600;  // ~9.6 MB total

  EventBackbone backbone;
  transport::RemoteBackboneServer server(
      backbone, transport::RemoteBackboneServer::Options{
                    .queue = {.max_messages = 8,
                              .policy = OverflowPolicy::kShedOldest},
                    .subscriber_send_timeout = 2000ms});

  // Stall the server→client direction of the proxied subscriber after a
  // seed-determined number of frames; the TCP connection stays up, the
  // kernel buffers silently fill. CI sweeps OMF_CHAOS_SEED like the other
  // chaos suites; any failure reproduces from the seed alone.
  std::uint64_t seed = 1;
  if (const char* env = std::getenv("OMF_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  SCOPED_TRACE("OMF_CHAOS_SEED=" + std::to_string(seed));
  Rng rng(seed);
  fault::FaultScript script;
  script.push_back({.kind = fault::FaultKind::kStall,
                    .direction = fault::Direction::kServerToClient,
                    .connection = 0,
                    .frame = static_cast<int>(rng.below(6))});
  fault::FaultProxy proxy(server.port(), script);

  transport::RemoteSubscription stalled(proxy.port(), "flood");
  transport::RemoteSubscription healthy(server.port(), "flood");
  for (int i = 0; i < 500 && backbone.subscriber_count("flood") < 2; ++i) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_EQ(backbone.subscriber_count("flood"), 2u);

  std::atomic<int> healthy_received{0};
  std::atomic<bool> healthy_done{false};
  std::thread reader([&] {
    for (;;) {
      auto msg = healthy.receive();
      if (!msg) break;
      if (as_text(*msg) == "done") break;
      healthy_received.fetch_add(1);
    }
    healthy_done.store(true);
  });

  std::uint64_t shed_before = counter_value("transport.backbone.shed");
  std::uint64_t dropped_before =
      counter_value("transport.backbone.subscriber_dropped");
  for (int i = 0; i < kFlood; ++i) {
    backbone.publish("flood", filled_buffer(kMsgBytes));
    // Light pacing so the *healthy* reader can keep up with its bounded
    // queue — the stalled path sheds regardless (its client never reads, so
    // the flood's total volume, not its rate, is what overwhelms it).
    if (i % 8 == 7) std::this_thread::sleep_for(1ms);
  }
  // The healthy reader drains its (bounded!) queue concurrently, so some of
  // the flood may legitimately be shed from its queue too. The marker is
  // republished until the reader confirms arrival — "keeps receiving" is
  // the property under test, not losslessness.
  for (int i = 0; i < 2000 && !healthy_done.load(); ++i) {
    backbone.publish("flood", text_buffer("done"));
    std::this_thread::sleep_for(5ms);
  }
  reader.join();
  ASSERT_TRUE(healthy_done.load());
  // The healthy subscriber rode out the whole flood: far more than one
  // queue's worth of messages, and it was still live afterwards (it saw the
  // post-flood marker).
  EXPECT_GT(healthy_received.load(), kFlood / 4);

  // The stalled subscriber forced shedding on the server side.
  EXPECT_GT(counter_value("transport.backbone.shed"), shed_before);

  // Memory stayed bounded by the queue caps: the flood alone moved
  // kFlood * kMsgBytes (~2.4 MB); the budget's high-water mark must reflect
  // the 8-message bounds, not the flood.
  EXPECT_LT(overload::MemoryBudget::instance().peak(),
            kFlood * kMsgBytes / 2);

  stalled.close();
  proxy.stop();
  server.stop();

  // Subscriber drops were flushed to the pre-registered aggregate counter
  // by the time the workers exited; the per-peer breakdown is in the
  // attribution family.
  EXPECT_GT(counter_value("transport.backbone.subscriber_dropped"),
            dropped_before);
}

TEST(OverloadBackbone, FloodingPublisherIsRateLimited) {
  EventBackbone backbone;
  transport::RemoteBackboneServer server(
      backbone, transport::RemoteBackboneServer::Options{
                    .admission = {.msgs_per_sec = 0.001, .msgs_burst = 5}});
  auto local = backbone.subscribe("ch");

  std::uint64_t rejected_before = counter_value("omf.admission.rejected.rate");
  transport::RemotePublisher pub(server.port());
  for (int i = 0; i < 50; ++i) {
    pub.publish("ch", text_buffer("m" + std::to_string(i)));
  }
  // Exactly the burst is admitted; wait for the server to chew through all
  // 50 frames (45 rejections counted) before asserting.
  for (int i = 0;
       i < 1000 &&
       counter_value("omf.admission.rejected.rate") - rejected_before < 45;
       ++i) {
    std::this_thread::sleep_for(2ms);
  }
  EXPECT_EQ(counter_value("omf.admission.rejected.rate") - rejected_before,
            45u);
  int delivered = 0;
  while (local.try_receive()) ++delivered;
  EXPECT_EQ(delivered, 5);
}

TEST(OverloadBackbone, PerPeerConnectionCapShedsExtraSubscribers) {
  EventBackbone backbone;
  transport::RemoteBackboneServer server(
      backbone, transport::RemoteBackboneServer::Options{
                    .admission = {.max_connections_per_peer = 1}});
  transport::RemoteSubscription first(server.port(), "ch");
  for (int i = 0; i < 500 && backbone.subscriber_count("ch") == 0; ++i) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_EQ(backbone.subscriber_count("ch"), 1u);

  // The second connection from the same peer is rejected after the hello:
  // the server closes it, and with reconnect disabled the subscription
  // reports an orderly end of stream.
  transport::RemoteSubscription second(server.port(), "ch");
  EXPECT_FALSE(second.receive());
  EXPECT_EQ(backbone.subscriber_count("ch"), 1u);

  // The admitted subscriber is unaffected.
  backbone.publish("ch", text_buffer("still here"));
  auto msg = first.receive();
  ASSERT_TRUE(msg);
  EXPECT_EQ(as_text(*msg), "still here");
}

TEST(OverloadBackbone, BrownoutShedsNewConnections) {
  BudgetGuard guard;
  EventBackbone backbone;
  transport::RemoteBackboneServer server(backbone);

  auto& budget = overload::MemoryBudget::instance();
  budget.set_limit(1 << 20);
  budget.charge(950 * 1024);  // degraded, with headroom for hello frames
  ASSERT_NE(overload::HealthMonitor::instance().state(),
            overload::Health::kOk);

  std::uint64_t shed_before = counter_value("omf.admission.rejected.degraded");
  transport::RemoteSubscription rejected(server.port(), "ch");
  EXPECT_FALSE(rejected.receive());  // shed with an orderly close
  EXPECT_EQ(counter_value("omf.admission.rejected.degraded"),
            shed_before + 1);
  EXPECT_EQ(backbone.subscriber_count("ch"), 0u);

  budget.release(950 * 1024);  // brownout over: connections admitted again
  transport::RemoteSubscription admitted(server.port(), "ch");
  for (int i = 0; i < 500 && backbone.subscriber_count("ch") == 0; ++i) {
    std::this_thread::sleep_for(2ms);
  }
  EXPECT_EQ(backbone.subscriber_count("ch"), 1u);
}

TEST(OverloadShutdown, DrainFlushesSubscriberQueues) {
  constexpr int kMessages = 100;
  EventBackbone backbone;
  transport::RemoteBackboneServer server(backbone);
  transport::RemoteSubscription sub(server.port(), "ch");
  for (int i = 0; i < 500 && backbone.subscriber_count("ch") == 0; ++i) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_EQ(backbone.subscriber_count("ch"), 1u);

  std::atomic<int> received{0};
  std::thread reader([&] {
    while (sub.receive()) received.fetch_add(1);
  });
  for (int i = 0; i < kMessages; ++i) {
    backbone.publish("ch", filled_buffer(1024));
  }
  // Drain must deliver everything queued before tearing the worker down —
  // this is the graceful path, not the deadline-lapsed one.
  server.drain(5000ms);
  reader.join();
  EXPECT_EQ(received.load(), kMessages);
  server.stop();  // idempotent after a drain
}

TEST(OverloadShutdown, DrainRacesAPublisherFlood) {
  // Raced under TSan by CI: shutdown while a remote publisher is mid-flood
  // and a remote subscriber is mid-stream must neither deadlock, leak a
  // worker, nor touch freed state.
  EventBackbone backbone;
  transport::RemoteBackboneServer server(
      backbone, transport::RemoteBackboneServer::Options{
                    .queue = {.max_messages = 16,
                              .policy = OverflowPolicy::kShedOldest}});
  transport::RemoteSubscription sub(server.port(), "ch");
  for (int i = 0; i < 500 && backbone.subscriber_count("ch") == 0; ++i) {
    std::this_thread::sleep_for(2ms);
  }

  std::atomic<bool> stop_publishing{false};
  std::thread publisher([&] {
    try {
      transport::RemotePublisher pub(server.port());
      while (!stop_publishing.load()) {
        pub.publish("ch", filled_buffer(512));
      }
    } catch (const Error&) {
      // The drain cut the session: expected.
    }
  });
  std::thread reader([&] {
    try {
      while (sub.receive()) {
      }
    } catch (const Error&) {
    }
  });

  std::this_thread::sleep_for(50ms);
  server.drain(500ms);
  stop_publishing.store(true);
  publisher.join();
  // The drain closed the subscriber's connection, so the reader observes
  // end-of-stream on its own — no cross-thread close() needed.
  reader.join();
  server.stop();
}

TEST(OverloadShutdown, StopIsSafeWithoutTraffic) {
  EventBackbone backbone;
  transport::RemoteBackboneServer server(backbone);
  server.drain(100ms);
  server.stop();
  server.stop();
}

// --- /healthz and HTTP admission ---------------------------------------------

TEST(OverloadHttp, HealthzReflectsProcessState) {
  BudgetGuard guard;
  http::Server server;
  auto deadline = [] { return Deadline::from_timeout(5s); };

  http::Response ok = http::get(server.url_for("/healthz"), deadline());
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.body, "ok\n");

  auto& budget = overload::MemoryBudget::instance();
  budget.set_limit(1000);
  budget.charge(950);
  http::Response degraded = http::get(server.url_for("/healthz"), deadline());
  EXPECT_EQ(degraded.status, 503);
  EXPECT_EQ(degraded.body, "degraded\n");

  overload::HealthMonitor::instance().set_draining(true);
  http::Response draining = http::get(server.url_for("/healthz"), deadline());
  EXPECT_EQ(draining.status, 503);
  EXPECT_EQ(draining.body, "draining\n");

  overload::HealthMonitor::instance().set_draining(false);
  budget.release(950);
  http::Response recovered = http::get(server.url_for("/healthz"), deadline());
  EXPECT_EQ(recovered.status, 200);
}

TEST(OverloadHttp, HealthzCanBeDisabled) {
  http::Server server;
  server.set_health_endpoint(false);
  http::Response resp = http::get(server.url_for("/healthz"),
                                  Deadline::from_timeout(5s));
  EXPECT_EQ(resp.status, 404);
}

TEST(OverloadHttp, UserDocumentWinsOverHealthz) {
  http::Server server;
  server.set_handler([](const std::string& path)
                         -> std::optional<std::string> {
    if (path == "/healthz") return std::string("mine");
    return std::nullopt;
  });
  http::Response resp = http::get(server.url_for("/healthz"),
                                  Deadline::from_timeout(5s));
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "mine");
}

TEST(OverloadHttp, AdmissionThrottlesWith429) {
  http::Server server;
  server.set_admission({.msgs_per_sec = 0.001, .msgs_burst = 2});
  auto deadline = [] { return Deadline::from_timeout(5s); };
  std::uint64_t throttled_before = counter_value("http.server.throttled");

  EXPECT_EQ(http::get(server.url_for("/healthz"), deadline()).status, 200);
  EXPECT_EQ(http::get(server.url_for("/healthz"), deadline()).status, 200);
  http::Response third = http::get(server.url_for("/healthz"), deadline());
  EXPECT_EQ(third.status, 429);
  EXPECT_NE(third.body.find("[OMF503]"), std::string::npos) << third.body;
  EXPECT_EQ(counter_value("http.server.throttled"), throttled_before + 1);
}

}  // namespace
}  // namespace omf
