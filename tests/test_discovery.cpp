// Discovery: HTTP client/server, source chain, fallback, caching, Context.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/context.hpp"
#include "core/discovery.hpp"
#include "http/http.hpp"
#include "pbio/encode.hpp"
#include "test_structs.hpp"

namespace omf {
namespace {

using namespace omf::testing;

// --- HTTP ------------------------------------------------------------------------

TEST(Http, UrlParsing) {
  auto u = http::Url::parse("http://127.0.0.1:8080/meta/flight.xml");
  EXPECT_EQ(u.host, "127.0.0.1");
  EXPECT_EQ(u.port, 8080);
  EXPECT_EQ(u.path, "/meta/flight.xml");

  auto bare = http::Url::parse("http://localhost/x");
  EXPECT_EQ(bare.port, 80);

  auto no_path = http::Url::parse("http://h:99");
  EXPECT_EQ(no_path.path, "/");

  EXPECT_THROW(http::Url::parse("ftp://x/"), Error);
  EXPECT_THROW(http::Url::parse("http://:80/"), Error);
  EXPECT_THROW(http::Url::parse("http://h:0/"), Error);
  EXPECT_THROW(http::Url::parse("http://h:99999/"), Error);
}

TEST(Http, ServeDocument) {
  http::Server server;
  server.put_document("/meta.xml", "<doc/>");
  auto resp = http::get(server.url_for("/meta.xml"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "<doc/>");
  EXPECT_EQ(resp.headers.at("content-type"), "text/xml");
  EXPECT_EQ(server.request_count(), 1u);
}

TEST(Http, NotFound) {
  http::Server server;
  auto resp = http::get(server.url_for("/nope.xml"));
  EXPECT_EQ(resp.status, 404);
}

TEST(Http, RemoveDocument) {
  http::Server server;
  server.put_document("/d", "x");
  EXPECT_EQ(http::get(server.url_for("/d")).status, 200);
  server.remove_document("/d");
  EXPECT_EQ(http::get(server.url_for("/d")).status, 404);
}

TEST(Http, DynamicHandler) {
  http::Server server;
  server.set_handler([](const std::string& path) -> std::optional<std::string> {
    if (path.find("/gen/") == 0) return "<generated path=\"" + path + "\"/>";
    return std::nullopt;
  });
  server.put_document("/static", "s");
  EXPECT_EQ(http::get(server.url_for("/gen/abc")).status, 200);
  EXPECT_NE(http::get(server.url_for("/gen/abc")).body.find("/gen/abc"),
            std::string::npos);
  EXPECT_EQ(http::get(server.url_for("/static")).body, "s");
  EXPECT_EQ(http::get(server.url_for("/missing")).status, 404);
}

TEST(Http, LargeDocument) {
  http::Server server;
  std::string big(512 * 1024, 'x');
  server.put_document("/big", big);
  auto resp = http::get(server.url_for("/big"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.size(), big.size());
}

TEST(Http, ConnectionRefusedThrows) {
  std::uint16_t dead_port;
  {
    http::Server server;
    dead_port = server.port();
  }
  EXPECT_THROW(http::get("http://127.0.0.1:" + std::to_string(dead_port) + "/"),
               TransportError);
}

// --- Discovery sources -----------------------------------------------------------

TEST(Discovery, CompiledInSource) {
  core::CompiledInSource src;
  src.add("flight", "<schema/>");
  EXPECT_EQ(src.fetch("flight"), "<schema/>");
  EXPECT_FALSE(src.fetch("unknown"));
}

TEST(Discovery, FileSource) {
  std::string path = ::testing::TempDir() + "/omf_disc_test.xml";
  {
    std::ofstream f(path);
    f << "<root/>";
  }
  auto src = core::make_file_source();
  EXPECT_EQ(src->fetch(path), "<root/>");
  EXPECT_EQ(src->fetch("file://" + path), "<root/>");
  EXPECT_FALSE(src->fetch(path + ".missing"));
  EXPECT_FALSE(src->fetch("http://elsewhere/x"));  // wrong scheme
  std::remove(path.c_str());
}

TEST(Discovery, HttpSourceFetches) {
  http::Server server;
  server.put_document("/m.xml", "<m/>");
  auto src = core::make_http_source();
  EXPECT_EQ(src->fetch(server.url_for("/m.xml")), "<m/>");
  EXPECT_FALSE(src->fetch(server.url_for("/gone.xml")));   // 404 -> soft fail
  EXPECT_FALSE(src->fetch("/local/path.xml"));             // wrong scheme
}

TEST(Discovery, ChainFallsBackInOrder) {
  http::Server server;  // serves nothing: primary source fails
  core::DiscoveryManager dm;
  dm.add_source(core::make_http_source());
  auto compiled = std::make_unique<core::CompiledInSource>();
  std::string url = server.url_for("/flight.xml");
  compiled->add(url, "<schema><complexType name=\"T\">"
                     "<element name=\"x\" type=\"U\"/></complexType></schema>");
  dm.add_source(std::move(compiled));

  auto doc = dm.discover(url);
  EXPECT_EQ(doc->root->name(), "schema");
  auto stats = dm.stats();
  EXPECT_EQ(stats.fallbacks, 1u);
  EXPECT_EQ(stats.fetches, 2u);
}

TEST(Discovery, PrimaryWinsWhenAvailable) {
  http::Server server;
  std::string url = server.url_for("/flight.xml");
  server.put_document("/flight.xml", "<remote/>");

  core::DiscoveryManager dm;
  dm.add_source(core::make_http_source());
  auto compiled = std::make_unique<core::CompiledInSource>();
  compiled->add(url, "<compiled/>");
  dm.add_source(std::move(compiled));

  EXPECT_EQ(dm.discover(url)->root->name(), "remote");
  EXPECT_EQ(dm.stats().fallbacks, 0u);
}

TEST(Discovery, CachesDocuments) {
  http::Server server;
  server.put_document("/m.xml", "<m/>");
  std::string url = server.url_for("/m.xml");
  core::DiscoveryManager dm;
  dm.add_source(core::make_http_source());
  auto d1 = dm.discover(url);
  auto d2 = dm.discover(url);
  EXPECT_EQ(d1, d2);  // same shared instance
  EXPECT_EQ(server.request_count(), 1u);
  EXPECT_EQ(dm.stats().cache_hits, 1u);

  dm.invalidate(url);
  auto d3 = dm.discover(url);
  EXPECT_EQ(server.request_count(), 2u);
  EXPECT_NE(d1, d3);
}

TEST(Discovery, AllSourcesFailingThrows) {
  core::DiscoveryManager dm;
  dm.add_source(core::make_file_source());
  EXPECT_THROW(dm.discover("/no/such/file.xml"), DiscoveryError);
}

TEST(Discovery, NoSourcesThrows) {
  core::DiscoveryManager dm;
  EXPECT_THROW(dm.discover("x"), DiscoveryError);
}

TEST(Discovery, MalformedFetchedDocumentThrowsParseError) {
  core::DiscoveryManager dm;
  auto compiled = std::make_unique<core::CompiledInSource>();
  compiled->add("bad", "<broken");
  dm.add_source(std::move(compiled));
  EXPECT_THROW(dm.discover("bad"), ParseError);
}

// --- Context (the assembled runtime) ------------------------------------------------

TEST(Context, DiscoverRegisterBindMarshal) {
  http::Server server;
  server.put_document("/asdoff.xml", kAsdOffSchema);
  std::string url = server.url_for("/asdoff.xml");

  core::Context ctx;
  auto format = ctx.discover_format(url, "ASDOffEvent");
  ASSERT_NE(format, nullptr);

  auto channel = ctx.bind<AsdOff>(format);
  AsdOff in;
  fill_asdoff(in, 77);
  Buffer wire = channel.encode(&in);

  AsdOff out{};
  pbio::DecodeArena arena;
  channel.decode(wire.span(), &out, arena);
  EXPECT_TRUE(asdoff_equal(in, out));

  // In-place too.
  auto* zc = static_cast<AsdOff*>(
      channel.decode_in_place(wire.data(), wire.size()));
  EXPECT_TRUE(asdoff_equal(in, *zc));
}

TEST(Context, ServerFailureFallsBackToCompiledIn) {
  std::string url;
  {
    http::Server server;
    url = server.url_for("/asdoff.xml");
    // Server dies here — the network is gone.
  }
  core::Context ctx;
  ctx.compiled_in().add(url, kAsdOffSchema);
  auto format = ctx.discover_format(url, "ASDOffEvent");
  EXPECT_EQ(format->struct_size(), sizeof(AsdOff));
  EXPECT_GE(ctx.discovery().stats().fallbacks, 1u);
}

TEST(Context, BindRejectsSizeMismatch) {
  core::Context ctx;
  ctx.compiled_in().add("m", kAsdOffSchema);
  auto format = ctx.discover_format("m", "ASDOffEvent");
  EXPECT_THROW(ctx.bind<AsdOffB>(format), FormatError);  // wrong struct
  EXPECT_NO_THROW(ctx.bind<AsdOff>(format));
}

TEST(Context, DiscoverFormatRejectsMissingType) {
  core::Context ctx;
  ctx.compiled_in().add("m", kAsdOffSchema);
  EXPECT_THROW(ctx.discover_format("m", "NoSuchType"), FormatError);
}

TEST(Context, DynamicBindingNeedsNoStruct) {
  core::Context ctx;
  ctx.compiled_in().add("m", kAsdOffBSchema);
  auto format = ctx.discover_format("m", "ASDOffEventB");
  auto channel = ctx.bind_dynamic(format);

  auto rec = channel.make_record();
  rec.set_string("cntrId", "ZLA");
  rec.set_int("fltNum", 1549);
  std::vector<std::int64_t> off = {1, 2, 3, 4, 5};
  rec.set_int_array("off", off);
  Buffer wire = channel.encode(rec.data());

  auto out = channel.make_record();
  out.from_wire(ctx.decoder(), wire.span());
  EXPECT_TRUE(rec.deep_equals(out));
}

TEST(Context, DynamicallyGeneratedMetadata) {
  // §4.4: the server can generate metadata per-request (format scoping).
  http::Server server;
  server.set_handler(
      [](const std::string& path) -> std::optional<std::string> {
        if (path.find("/scoped") != 0) return std::nullopt;
        bool full = path.find("auth=ops") != std::string::npos;
        std::string fields =
            "<xsd:element name=\"fltNum\" type=\"xsd:int\" />";
        if (full) {
          fields += "<xsd:element name=\"crewCount\" type=\"xsd:int\" />";
        }
        return "<?xml version=\"1.0\"?>"
               "<xsd:schema xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\">"
               "<xsd:complexType name=\"Slice\">" +
               fields + "</xsd:complexType></xsd:schema>";
      });

  core::Context ops_ctx, public_ctx;
  auto ops_format =
      ops_ctx.discover_format(server.url_for("/scoped?auth=ops"), "Slice");
  auto public_format =
      public_ctx.discover_format(server.url_for("/scoped"), "Slice");
  EXPECT_EQ(ops_format->fields().size(), 2u);
  EXPECT_EQ(public_format->fields().size(), 1u);

  // A message in the ops format still decodes for the public subscriber —
  // the hidden slice is simply absent (PBIO evolution machinery).
  public_ctx.registry().register_format(
      "Slice",
      std::vector<pbio::IOField>{{"fltNum", "integer", 4, 0},
                                 {"crewCount", "integer", 4, 4}},
      8);
  auto rec = pbio::DynamicRecord(ops_format);
  rec.set_int("fltNum", 12);
  rec.set_int("crewCount", 6);
  Buffer wire = rec.encode();

  auto out = pbio::DynamicRecord(public_format);
  out.from_wire(public_ctx.decoder(), wire.span());
  EXPECT_EQ(out.get_int("fltNum"), 12);
  EXPECT_THROW(out.get_int("crewCount"), FormatError);  // scoped away
}

}  // namespace
}  // namespace omf
