// Golden wire-format tests: exact byte sequences for each codec, pinned.
//
// These protect on-the-wire and on-disk compatibility: any change to the
// NDR header, offset encoding, XDR/CDR rules, bundle serialization, or the
// format-id hash shows up here as a diff against known bytes, forcing a
// deliberate (and versioned) decision rather than a silent break.
#include <gtest/gtest.h>

#include "cdr/cdr.hpp"
#include "pbio/encode.hpp"
#include "pbio/metaserde.hpp"
#include "textxml/textxml.hpp"
#include "xdr/xdr.hpp"

namespace omf {
namespace {

struct Golden {
  char* tag;
  int id;
  unsigned long stamp;
};

pbio::FormatHandle golden_format(pbio::FormatRegistry& reg) {
  std::vector<pbio::IOField> fields = {
      {"tag", "string", sizeof(char*), offsetof(Golden, tag)},
      {"id", "integer", sizeof(int), offsetof(Golden, id)},
      {"stamp", "unsigned", sizeof(unsigned long), offsetof(Golden, stamp)},
  };
  return reg.register_format("Golden", fields, sizeof(Golden));
}

Golden golden_value() {
  Golden g{};
  g.tag = const_cast<char*>("ab");
  g.id = 0x01020304;
  g.stamp = 0x1122334455667788ul;
  return g;
}

std::string hex(std::span<const std::uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

// These tests assume the usual x86_64 Linux ABI (the format id and layout
// depend on it); skip elsewhere rather than fail.
bool abi_matches() {
  return sizeof(void*) == 8 && sizeof(long) == 8 && sizeof(int) == 4 &&
         host_byte_order() == ByteOrder::kLittle;
}

TEST(Golden, FormatIdIsStable) {
  if (!abi_matches()) GTEST_SKIP() << "golden bytes are LP64-LE specific";
  pbio::FormatRegistry reg;
  auto f = golden_format(reg);
  // The metadata hash: any change to field hashing, type strings, or the
  // profile canonical form changes this constant.
  EXPECT_EQ(f->id(), 0xd54c1770b9101223ull) << std::hex << f->id();
}

TEST(Golden, NdrBytes) {
  if (!abi_matches()) GTEST_SKIP() << "golden bytes are LP64-LE specific";
  pbio::FormatRegistry reg;
  auto f = golden_format(reg);
  Golden g = golden_value();
  Buffer wire = pbio::encode(*f, &g);
  EXPECT_EQ(hex(wire.span()),
            // header: magic b1, version 01, flags 00 (LE), size 10,
            // body length 27 (24-byte struct + "ab\0"), then the format id
            "b10100101b000000"
            "231210b970174cd5"
            // body: tag slot = offset 24 (1800...), id, pad, stamp
            "1800000000000000"
            "04030201"
            "00000000"
            "8877665544332211"
            // variable section: "ab\0"
            "616200");
}

TEST(Golden, XdrBytes) {
  pbio::FormatRegistry reg;
  auto f = golden_format(reg);
  Golden g = golden_value();
  Buffer wire = xdr::encode_buffer(*f, &g);
  // XDR is canonical: identical on every host.
  EXPECT_EQ(hex(wire.span()),
            // string: len 2 BE, "ab" + 2 pad
            "00000002"
            "61620000"
            // int 4 BE
            "01020304"
            // unsigned hyper BE
            "1122334455667788");
}

TEST(Golden, CdrBytes) {
  if (host_byte_order() != ByteOrder::kLittle) {
    GTEST_SKIP() << "golden bytes assume a little-endian host";
  }
  pbio::FormatRegistry reg;
  auto f = golden_format(reg);
  Golden g = golden_value();
  Buffer wire = cdr::encode_buffer(*f, &g);
  EXPECT_EQ(hex(wire.span()),
            // flag 01 (LE sender)
            "01"
            // string: u32 len-with-nul = 3 (LE), "ab\0"
            "03000000"
            "616200"
            // int at stream pos 7 -> align to 8: 1 pad byte
            "00"
            "04030201"
            // unsigned long at pos 12 -> align to 8: 4 pad bytes
            "00000000"
            "8877665544332211");
}

TEST(Golden, TextXmlBytes) {
  pbio::FormatRegistry reg;
  auto f = golden_format(reg);
  Golden g = golden_value();
  std::string doc = textxml::encode_text(*f, &g);
  EXPECT_EQ(doc,
            "<?xml version=\"1.0\"?><Golden><tag>ab</tag>"
            "<id>16909060</id><stamp>1234605616436508552</stamp></Golden>");
}

TEST(Golden, BundleBytesRoundTripExactly) {
  if (!abi_matches()) GTEST_SKIP() << "golden bytes are LP64-LE specific";
  pbio::FormatRegistry reg;
  auto f = golden_format(reg);
  Buffer bundle = pbio::serialize_format_bundle(*f);
  // Don't pin every byte (the profile name is informative), but pin the
  // prefix: magic + count=1 + name.
  EXPECT_EQ(hex(bundle.span()).substr(0, 8 + 8 + 8 + 12),
            "4f424d46"        // bundle magic
            "01000000"        // 1 format
            "06000000"        // name length 6
            "476f6c64656e");  // "Golden"
  // And require exact re-registration fidelity.
  pbio::FormatRegistry reg2;
  auto g2 = pbio::deserialize_format_bundle(reg2, bundle.span());
  EXPECT_EQ(g2->id(), f->id());
  Buffer again = pbio::serialize_format_bundle(*g2);
  EXPECT_EQ(hex(bundle.span()), hex(again.span()));
}

}  // namespace
}  // namespace omf
