// XML parser, DOM, namespaces, and writer round-trips.
#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "xml/parser.hpp"
#include "xml/sax.hpp"
#include "xml/writer.hpp"

namespace omf::xml {
namespace {

TEST(Parser, MinimalDocument) {
  Document doc = parse("<root/>");
  EXPECT_EQ(doc.root->name(), "root");
  EXPECT_TRUE(doc.root->children().empty());
}

TEST(Parser, DeclarationAttributes) {
  Document doc =
      parse("<?xml version=\"1.1\" encoding=\"UTF-8\" standalone=\"yes\"?><r/>");
  EXPECT_EQ(doc.version, "1.1");
  EXPECT_EQ(doc.encoding, "UTF-8");
  EXPECT_TRUE(doc.standalone_declared);
  EXPECT_TRUE(doc.standalone);
}

TEST(Parser, NestedElementsAndText) {
  Document doc = parse("<a><b>hello</b><c>world</c></a>");
  ASSERT_EQ(doc.root->children().size(), 2u);
  EXPECT_EQ(doc.root->first_child_element("b")->text_content(), "hello");
  EXPECT_EQ(doc.root->first_child_element("c")->text_content(), "world");
}

TEST(Parser, Attributes) {
  Document doc = parse("<e a=\"1\" b='two' c=\"with 'quotes'\"/>");
  EXPECT_EQ(doc.root->attribute("a"), "1");
  EXPECT_EQ(doc.root->attribute("b"), "two");
  EXPECT_EQ(doc.root->attribute("c"), "with 'quotes'");
  EXPECT_FALSE(doc.root->attribute("missing"));
  EXPECT_EQ(doc.root->attribute_or("missing", "dflt"), "dflt");
}

TEST(Parser, EntityExpansion) {
  Document doc = parse("<e a=\"&lt;&amp;&gt;\">&quot;x&apos; &#65;&#x42;</e>");
  EXPECT_EQ(doc.root->attribute("a"), "<&>");
  EXPECT_EQ(doc.root->text_content(), "\"x' AB");
}

TEST(Parser, NumericEntityUtf8) {
  Document doc = parse("<e>&#233;&#x20AC;</e>");  // é €
  EXPECT_EQ(doc.root->text_content(), "\xC3\xA9\xE2\x82\xAC");
}

TEST(Parser, CData) {
  Document doc = parse("<e><![CDATA[<not&parsed>]]></e>");
  EXPECT_EQ(doc.root->text_content(), "<not&parsed>");
}

TEST(Parser, CommentsSkippedByDefault) {
  Document doc = parse("<e><!-- hidden -->v</e>");
  EXPECT_EQ(doc.root->text_content(), "v");
  ParseOptions keep;
  keep.keep_comments = true;
  Document doc2 = parse("<e><!-- hidden -->v</e>", keep);
  ASSERT_EQ(doc2.root->children().size(), 2u);
  EXPECT_EQ(doc2.root->children()[0]->kind(), NodeKind::kComment);
  EXPECT_EQ(doc2.root->children()[0]->text(), " hidden ");
}

TEST(Parser, ProcessingInstructions) {
  Document doc = parse("<e><?target some data?></e>");
  ASSERT_EQ(doc.root->children().size(), 1u);
  EXPECT_EQ(doc.root->children()[0]->kind(),
            NodeKind::kProcessingInstruction);
  EXPECT_EQ(doc.root->children()[0]->name(), "target");
  EXPECT_EQ(doc.root->children()[0]->text(), "some data");
}

TEST(Parser, DoctypeIsSkipped) {
  Document doc = parse(
      "<!DOCTYPE r [ <!ELEMENT r (#PCDATA)> ]>\n<r>ok</r>");
  EXPECT_EQ(doc.root->text_content(), "ok");
}

TEST(Parser, WhitespaceTextDiscardedByDefault) {
  Document doc = parse("<a>\n  <b/>\n</a>");
  ASSERT_EQ(doc.root->children().size(), 1u);
  EXPECT_EQ(doc.root->children()[0]->name(), "b");
}

TEST(Parser, MixedContentPreserved) {
  Document doc = parse("<a>pre<b/>post</a>");
  EXPECT_EQ(doc.root->children().size(), 3u);
  EXPECT_EQ(doc.root->text_content(), "prepost");
}

TEST(Parser, Utf8BomSkipped) {
  std::string text = "\xEF\xBB\xBF<r/>";
  Document doc = parse(text);
  EXPECT_EQ(doc.root->name(), "r");
}

// --- Well-formedness errors --------------------------------------------------

struct BadCase {
  const char* name;
  const char* text;
};

class Malformed : public ::testing::TestWithParam<BadCase> {};

TEST_P(Malformed, Throws) {
  EXPECT_THROW(parse(GetParam().text), ParseError) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Malformed,
    ::testing::Values(
        BadCase{"empty", ""},
        BadCase{"text_only", "just text"},
        BadCase{"mismatched_tags", "<a><b></a></b>"},
        BadCase{"unterminated", "<a><b>"},
        BadCase{"duplicate_attr", "<a x=\"1\" x=\"2\"/>"},
        BadCase{"two_roots", "<a/><b/>"},
        BadCase{"content_after_root", "<a/>junk"},
        BadCase{"lt_in_attr", "<a x=\"<\"/>"},
        BadCase{"bad_entity", "<a>&nosuch;</a>"},
        BadCase{"unterminated_entity", "<a>&amp</a>"},
        BadCase{"bad_char_ref", "<a>&#xZZ;</a>"},
        BadCase{"null_char_ref", "<a>&#0;</a>"},
        BadCase{"unterminated_comment", "<a><!-- x</a>"},
        BadCase{"double_dash_comment", "<a><!-- x -- y --></a>"},
        BadCase{"unterminated_cdata", "<a><![CDATA[x</a>"},
        BadCase{"bad_name", "<1a/>"},
        BadCase{"attr_no_value", "<a x/>"},
        BadCase{"attr_unquoted", "<a x=1/>"},
        BadCase{"unterminated_doctype", "<!DOCTYPE r"},
        BadCase{"eof_in_tag", "<a"}),
    [](const auto& info) { return info.param.name; });

TEST(Parser, ErrorsCarryPosition) {
  try {
    parse("<a>\n  <b></c>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_GT(e.column(), 1u);
  }
}

TEST(Parser, DepthLimit) {
  std::string deep;
  for (int i = 0; i < 400; ++i) deep += "<d>";
  for (int i = 0; i < 400; ++i) deep += "</d>";
  EXPECT_THROW(parse(deep), ParseError);
  ParseOptions opts;
  opts.max_depth = 1000;
  EXPECT_NO_THROW(parse(deep, opts));
}

// --- Namespaces ----------------------------------------------------------------

TEST(Namespaces, QNameSplit) {
  QName q = split_qname("xsd:element");
  EXPECT_EQ(q.prefix, "xsd");
  EXPECT_EQ(q.local, "element");
  QName bare = split_qname("element");
  EXPECT_EQ(bare.prefix, "");
  EXPECT_EQ(bare.local, "element");
}

TEST(Namespaces, PrefixResolution) {
  Document doc = parse(
      "<root xmlns:x=\"urn:one\"><x:child><grand xmlns:y=\"urn:two\">"
      "<y:leaf/></grand></x:child></root>");
  const Node* child = doc.root->first_child_element("x:child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->namespace_uri(), "urn:one");
  const Node* grand = child->first_child_element("grand");
  const Node* leaf = grand->first_child_element("y:leaf");
  EXPECT_EQ(leaf->namespace_uri(), "urn:two");
  // Inherited from the root scope.
  EXPECT_EQ(leaf->resolve_namespace("x"), "urn:one");
  EXPECT_FALSE(leaf->resolve_namespace("zz"));
}

TEST(Namespaces, DefaultNamespace) {
  Document doc = parse("<root xmlns=\"urn:default\"><child/></root>");
  EXPECT_EQ(doc.root->namespace_uri(), "urn:default");
  EXPECT_EQ(doc.root->first_child_element("child")->namespace_uri(),
            "urn:default");
}

TEST(Namespaces, XmlPrefixIsBuiltIn) {
  Document doc = parse("<r/>");
  EXPECT_EQ(doc.root->resolve_namespace("xml"),
            "http://www.w3.org/XML/1998/namespace");
}

// --- SAX (event) interface ----------------------------------------------------

/// Records events as compact strings for assertion.
class RecordingHandler : public SaxHandler {
public:
  std::vector<std::string> events;

  void on_start_document() override { events.push_back("start-doc"); }
  void on_end_document() override { events.push_back("end-doc"); }
  void on_start_element(std::string_view name,
                        std::span<const Attribute> attrs) override {
    std::string e = "<" + std::string(name);
    for (const Attribute& a : attrs) e += " " + a.name + "=" + a.value;
    events.push_back(e);
  }
  void on_end_element(std::string_view name) override {
    events.push_back("</" + std::string(name));
  }
  void on_text(std::string_view text) override {
    events.push_back("text:" + std::string(text));
  }
  void on_cdata(std::string_view data) override {
    events.push_back("cdata:" + std::string(data));
  }
  void on_comment(std::string_view text) override {
    events.push_back("comment:" + std::string(text));
  }
  void on_processing_instruction(std::string_view target,
                                 std::string_view data) override {
    events.push_back("pi:" + std::string(target) + ":" + std::string(data));
  }
};

TEST(Sax, EventSequence) {
  RecordingHandler h;
  sax_parse("<a x=\"1\"><b>hi</b><![CDATA[raw]]></a>", h, {});
  std::vector<std::string> expected = {
      "start-doc", "<a x=1", "<b", "text:hi", "</b",
      "cdata:raw", "</a", "end-doc"};
  EXPECT_EQ(h.events, expected);
}

TEST(Sax, EntitiesExpandedInEvents) {
  RecordingHandler h;
  sax_parse("<a>x&amp;y</a>", h, {});
  EXPECT_EQ(h.events[2], "text:x&y");
}

TEST(Sax, CommentsAndPisDelivered) {
  RecordingHandler h;
  sax_parse("<?go fast?><a><!-- note --><?p d?></a>", h, {});
  std::vector<std::string> expected = {"start-doc", "pi:go:fast", "<a",
                                       "comment: note ", "pi:p:d", "</a",
                                       "end-doc"};
  EXPECT_EQ(h.events, expected);
}

TEST(Sax, ErrorsStillCarryPositions) {
  RecordingHandler h;
  EXPECT_THROW(sax_parse("<a><b></a>", h, {}), ParseError);
}

TEST(Sax, StreamingConsumerNeedsNoTree) {
  // Count elements of a large synthetic document without building a DOM.
  std::string doc = "<list>";
  for (int i = 0; i < 5000; ++i) doc += "<item/>";
  doc += "</list>";

  class Counter : public SaxHandler {
  public:
    int items = 0;
    void on_start_element(std::string_view name,
                          std::span<const Attribute>) override {
      if (name == "item") ++items;
    }
  } counter;
  sax_parse(doc, counter, {});
  EXPECT_EQ(counter.items, 5000);
}

// --- Writer ----------------------------------------------------------------------

TEST(Writer, EscapesTextAndAttributes) {
  EXPECT_EQ(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
  EXPECT_EQ(escape_attribute("say \"hi\"\n"), "say &quot;hi&quot;&#10;");
}

TEST(Writer, RoundTripSimple) {
  const char* text = "<a x=\"1\"><b>v&amp;w</b><c/></a>";
  Document doc = parse(text);
  std::string written = write(doc, {.declaration = false, .indent = 0});
  Document again = parse(written);
  EXPECT_EQ(again.root->attribute("x"), "1");
  EXPECT_EQ(again.root->first_child_element("b")->text_content(), "v&w");
}

TEST(Writer, CDataSplitsTerminator) {
  Node n(NodeKind::kElement);
  n.set_name("e");
  auto cd = std::make_unique<Node>(NodeKind::kCData);
  cd->set_text("a]]>b");
  n.append_child(std::move(cd));
  std::string out = write(n, {.indent = 0});
  Document doc = parse(out);
  EXPECT_EQ(doc.root->text_content(), "a]]>b");
}

TEST(Writer, PrettyPrintIndents) {
  Document doc = parse("<a><b><c/></b></a>");
  std::string out = write(doc, {.declaration = false, .indent = 2});
  EXPECT_NE(out.find("\n  <b>"), std::string::npos);
  EXPECT_NE(out.find("\n    <c"), std::string::npos);
}

/// Property: random trees survive write→parse→write unchanged.
TEST(Writer, PropertyRandomTreeRoundTrip) {
  Rng rng(2024);
  for (int iter = 0; iter < 50; ++iter) {
    Document doc;
    doc.root = make_element("root");
    // Build a random tree.
    std::vector<Node*> stack = {doc.root.get()};
    int budget = 40;
    while (budget-- > 0) {
      Node* cur = stack[rng.below(stack.size())];
      switch (rng.below(3)) {
        case 0: {
          Node& child = cur->append_element(rng.identifier(5));
          if (rng.chance(0.6)) {
            child.set_attribute(rng.identifier(4),
                                "v<&\">'" + rng.identifier(3));
          }
          stack.push_back(&child);
          break;
        }
        case 1:
          cur->append_text("text & <stuff> " + rng.identifier(6));
          break;
        case 2:
          cur->set_attribute(rng.identifier(4), rng.identifier(8));
          break;
      }
    }
    ParseOptions keep_all;
    keep_all.discard_whitespace_text = false;
    std::string once = write(doc, {.declaration = false, .indent = 0});
    Document reparsed = parse(once, keep_all);
    std::string twice = write(reparsed, {.declaration = false, .indent = 0});
    EXPECT_EQ(once, twice) << "iteration " << iter;
  }
}

}  // namespace
}  // namespace omf::xml
