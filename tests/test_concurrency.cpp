// Concurrency stress tests for the receive path: the shared PlanCache's
// once-per-key compile guarantee, Decoder::plan_for under racing callers,
// and concurrent format registration interleaved with decoding. Run these
// under TSan via -DOMF_SANITIZE=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/xml2wire.hpp"
#include "pbio/decode.hpp"
#include "pbio/plan_cache.hpp"
#include "pbio/record.hpp"
#include "pbio/synth.hpp"

namespace omf {
namespace {

using pbio::Decoder;
using pbio::DynamicRecord;
using pbio::FormatHandle;
using pbio::FormatRegistry;
using pbio::PlanCache;
using pbio::PlanHandle;

constexpr unsigned kThreads = 8;

/// Releases all threads at once to maximize race pressure.
class StartGate {
public:
  void wait() {
    arrived_.fetch_add(1);
    while (!open_.load(std::memory_order_acquire)) std::this_thread::yield();
  }
  void open(unsigned expected) {
    while (arrived_.load() != expected) std::this_thread::yield();
    open_.store(true, std::memory_order_release);
  }

private:
  std::atomic<unsigned> arrived_{0};
  std::atomic<bool> open_{false};
};

const char* kSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Reading">
    <xsd:element name="station" type="xsd:string" />
    <xsd:element name="count" type="xsd:int" />
    <xsd:element name="values" type="xsd:double" maxOccurs="count" />
    <xsd:element name="flags" type="xsd:short" minOccurs="3" maxOccurs="3" />
  </xsd:complexType>
</xsd:schema>
)";

struct Fixture {
  FormatRegistry registry;
  FormatHandle native_format;
  FormatHandle foreign_format;
  Buffer wire;

  Fixture() {
    core::Xml2Wire native_side(registry, arch::native());
    native_format = native_side.register_text(kSchema)[0];
    core::Xml2Wire foreign_side(registry, arch::profile_by_name("sparc64"));
    foreign_format = foreign_side.register_text(kSchema)[0];

    DynamicRecord rec(native_format);
    rec.set_string("station", "tower-7");
    rec.set_float_array("values", std::vector<double>{1.5, 2.5, 3.5});
    rec.set_int_array("flags", std::vector<std::int64_t>{1, 2, 3});
    wire = pbio::synthesize_wire(*foreign_format, rec);
  }
};

TEST(PlanCacheConcurrency, CompilesOncePerKeyUnderRace) {
  Fixture fx;
  PlanCache cache;
  StartGate gate;
  std::vector<PlanHandle> plans(kThreads);
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      gate.wait();
      plans[t] = cache.get_or_build(fx.foreign_format, fx.native_format);
    });
  }
  gate.open(kThreads);
  for (auto& th : pool) th.join();

  for (unsigned t = 1; t < kThreads; ++t) {
    EXPECT_EQ(plans[0].get(), plans[t].get()) << "thread " << t;
  }
  EXPECT_EQ(cache.stats().compiles, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheConcurrency, DistinctOptionsAreDistinctKeys) {
  Fixture fx;
  PlanCache cache;
  auto a = cache.get_or_build(fx.foreign_format, fx.native_format,
                              pbio::PlanOptions{true, true});
  auto b = cache.get_or_build(fx.foreign_format, fx.native_format,
                              pbio::PlanOptions{true, false});
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheConcurrency, DecoderPlanForRaceCompilesOnce) {
  Fixture fx;
  Decoder dec(fx.registry);
  StartGate gate;
  std::vector<PlanHandle> plans(kThreads);
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      gate.wait();
      plans[t] = dec.plan_for(fx.foreign_format, fx.native_format);
    });
  }
  gate.open(kThreads);
  for (auto& th : pool) th.join();

  for (unsigned t = 1; t < kThreads; ++t) {
    EXPECT_EQ(plans[0].get(), plans[t].get());
  }
  EXPECT_EQ(dec.cached_plans(), 1u);
  EXPECT_EQ(dec.plan_cache()->stats().compiles, 1u);
}

TEST(PlanCacheConcurrency, SharedAcrossDecodersCompilesOnce) {
  Fixture fx;
  auto cache = std::make_shared<PlanCache>();
  StartGate gate;
  std::atomic<int> failures{0};
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      // One decoder per "connection", all sharing the process cache.
      Decoder dec(fx.registry, cache);
      DynamicRecord out(fx.native_format);
      gate.wait();
      for (int i = 0; i < 200; ++i) {
        out.from_wire(dec, fx.wire.span());
        if (out.get_float_array("values") !=
            std::vector<double>({1.5, 2.5, 3.5})) {
          failures.fetch_add(1);
        }
      }
    });
  }
  gate.open(kThreads);
  for (auto& th : pool) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cache->stats().compiles, 1u);
  EXPECT_GE(cache->stats().hits, kThreads * 200u - kThreads);
}

TEST(RegistryConcurrency, RegisterWhileDecoding) {
  Fixture fx;
  auto cache = std::make_shared<PlanCache>();
  StartGate gate;
  std::atomic<int> failures{0};
  std::vector<std::thread> pool;

  // Half the threads register fresh formats (distinct names, plus re-running
  // registrations of the same schema, exercising the dedup path); the other
  // half decode heterogeneous messages that need registry lookups.
  for (unsigned t = 0; t < kThreads / 2; ++t) {
    pool.emplace_back([&, t] {
      gate.wait();
      for (int i = 0; i < 50; ++i) {
        std::vector<pbio::FieldSpec> fields;
        fields.emplace_back("seq", "integer", 4);
        fields.emplace_back("value", "float", 8);
        std::string name =
            "Dyn" + std::to_string(t) + "_" + std::to_string(i);
        auto h = fx.registry.register_computed(name, fields);
        if (!h || fx.registry.by_id(h->id()) != h) failures.fetch_add(1);
        core::Xml2Wire again(fx.registry, arch::native());
        again.register_text(kSchema);  // duplicate: must dedup, not corrupt
      }
    });
  }
  for (unsigned t = 0; t < kThreads - kThreads / 2; ++t) {
    pool.emplace_back([&] {
      Decoder dec(fx.registry, cache);
      DynamicRecord out(fx.native_format);
      gate.wait();
      for (int i = 0; i < 200; ++i) {
        out.from_wire(dec, fx.wire.span());
        if (std::string(out.get_string("station")) != "tower-7") {
          failures.fetch_add(1);
        }
      }
    });
  }
  gate.open(kThreads);
  for (auto& th : pool) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cache->stats().compiles, 1u);
}

}  // namespace
}  // namespace omf
