// Batched decode: fused field-run kernels, N-message plan dispatch, and the
// matched-layout memcpy fast path.
//
// The invariants under test:
//  * fused/SIMD plans are bit-identical to the PR-1 per-field kernels, for
//    every scalar width, at odd element counts (vector tails) and misaligned
//    struct offsets (no alignment assumptions),
//  * Decoder::decode_batch produces exactly what N individual decodes
//    produce, including dynamic arrays through the arena,
//  * a warm batch pipeline allocates nothing per message,
//  * Gateway::convert_batch and NdrConnection::receive_batch compose into
//    the same bytes the one-at-a-time paths emit.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <new>
#include <thread>
#include <vector>

#include "analysis/audit_plan.hpp"
#include "arch/profile.hpp"
#include "core/gateway.hpp"
#include "core/xml2wire.hpp"
#include "http/http.hpp"
#include "obs/metrics.hpp"
#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "pbio/record.hpp"
#include "pbio/synth.hpp"
#include "transport/ndr_connection.hpp"
#include "transport/tcp.hpp"

// --- Allocation counting (same idiom as test_arena.cpp) ---------------------

namespace {
std::atomic<std::size_t> g_allocations{0};
std::atomic<bool> g_counting{false};

void* counted_alloc(std::size_t n) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

struct AllocationCounter {
  AllocationCounter() {
    g_allocations.store(0);
    g_counting.store(true);
  }
  ~AllocationCounter() { g_counting.store(false); }
  std::size_t count() const { return g_allocations.load(); }
};

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
// The nothrow pair must be replaced too: libstdc++ internals (e.g.
// stable_sort's temporary buffer) allocate through it, and a mix of the
// default nothrow new with the malloc-backed delete above is an
// alloc-dealloc mismatch under ASan.
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return std::malloc(n ? n : 1);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace omf {
namespace {

using pbio::ConversionPlan;
using pbio::DecodeArena;
using pbio::Decoder;
using pbio::DynamicRecord;
using pbio::FormatHandle;
using pbio::FormatRegistry;
using pbio::IOField;
using pbio::PlanOptions;

// --- Bulk-array bit-identity across kernels ---------------------------------

/// One scalar type, an odd element count (so every SIMD kernel runs its
/// scalar tail), and a one-byte leading field so the array lands at a
/// misaligned struct offset.
struct BulkCase {
  const char* name;        ///< test suffix
  const char* type;        ///< PBIO element type string base
  std::size_t elem_size;   ///< element width in bytes
  std::size_t count;       ///< odd on purpose
  bool is_float;
};

const BulkCase kBulkCases[] = {
    {"Int16x7", "integer", 2, 7, false},
    {"Int32x9", "integer", 4, 9, false},
    {"Int64x5", "integer", 8, 5, false},
    {"Uint32x13", "unsigned", 4, 13, false},
    {"Float32x11", "float", 4, 11, true},
    {"Float64x3", "float", 8, 3, true},
};

class BulkSwapTest : public ::testing::TestWithParam<BulkCase> {
protected:
  void SetUp() override {
    const BulkCase& c = GetParam();
    std::string arr_type =
        std::string(c.type) + "[" + std::to_string(c.count) + "]";
    // `tag` (1 byte) pushes the array to offset 1: deliberately misaligned,
    // because the fused kernels promise unaligned loads/stores.
    std::size_t arr_bytes = c.elem_size * c.count;
    std::vector<IOField> fields = {
        {"tag", "unsigned", 1, 0},
        {"vals", arr_type, c.elem_size, 1},
    };
    struct_size = 1 + arr_bytes;
    native = reg.register_format("Bulk" + std::string(c.name), fields,
                                 struct_size, arch::native());
    foreign = reg.register_format("Bulk" + std::string(c.name), fields,
                                  struct_size, arch::sparc64());
  }

  /// Values that exercise sign extension and every byte lane, clamped to
  /// the element's representable range.
  std::vector<std::int64_t> gen_ints(int salt) const {
    const BulkCase& c = GetParam();
    std::vector<std::int64_t> vals;
    for (std::size_t i = 0; i < c.count; ++i) {
      std::int64_t v =
          (static_cast<std::int64_t>(i + 1) * 0x0102030405LL + salt) *
          (i % 2 == 0 ? 1 : -1);
      if (c.elem_size < 8) {
        std::int64_t mask = (std::int64_t{1} << (8 * c.elem_size - 1)) - 1;
        v %= mask;
      }
      vals.push_back(v);
    }
    return vals;
  }

  std::vector<double> gen_floats(int salt) const {
    const BulkCase& c = GetParam();
    std::vector<double> vals;
    for (std::size_t i = 0; i < c.count; ++i) {
      double v = static_cast<double>(i) * 1.5 - salt;
      if (c.elem_size == 4) v = static_cast<float>(v);  // representable
      vals.push_back(v);
    }
    return vals;
  }

  /// Foreign (big-endian) wire bytes for a record with distinctive values.
  Buffer foreign_wire(int salt) {
    const BulkCase& c = GetParam();
    DynamicRecord r(native);
    r.set_int("tag", salt & 0x7f);
    if (c.is_float) {
      r.set_float_array("vals", gen_floats(salt));
    } else {
      r.set_int_array("vals", gen_ints(salt));
    }
    return pbio::synthesize_wire(*foreign, r);
  }

  FormatRegistry reg;
  FormatHandle native, foreign;
  std::size_t struct_size = 0;
};

TEST_P(BulkSwapTest, FusedSimdBitIdenticalToPerFieldKernels) {
  Buffer wire = foreign_wire(3);

  Decoder fused(reg, nullptr, PlanOptions{});
  Decoder per_field(reg, nullptr, PlanOptions::per_field());

  std::vector<std::uint8_t> a(struct_size, 0xAA), b(struct_size, 0xAA);
  DecodeArena arena_a, arena_b;
  fused.decode(wire.span(), *native, a.data(), arena_a);
  per_field.decode(wire.span(), *native, b.data(), arena_b);
  EXPECT_EQ(std::memcmp(a.data(), b.data(), struct_size), 0)
      << "fused plan diverges from per-field kernels for " << GetParam().name;
}

TEST_P(BulkSwapTest, FusedPlanRecoversExactValues) {
  const BulkCase& c = GetParam();
  Buffer wire = foreign_wire(7);
  Decoder dec(reg);  // production options: fusion + SIMD on
  DynamicRecord out(native);
  out.from_wire(dec, wire.span());
  EXPECT_EQ(out.get_int("tag"), 7);
  if (c.is_float) {
    EXPECT_EQ(out.get_float_array("vals"), gen_floats(7));
  } else {
    EXPECT_EQ(out.get_int_array("vals"), gen_ints(7));
  }
}

TEST_P(BulkSwapTest, DecodeBatchMatchesPerMessageDecode) {
  constexpr std::size_t kN = 33;
  std::vector<Buffer> wires;
  std::vector<std::span<const std::uint8_t>> spans;
  for (std::size_t i = 0; i < kN; ++i) {
    wires.push_back(foreign_wire(static_cast<int>(i)));
  }
  for (const Buffer& w : wires) spans.push_back(w.span());

  Decoder dec(reg);
  std::vector<std::uint8_t> batch_out(kN * struct_size, 0xCC);
  std::vector<void*> ptrs;
  for (std::size_t i = 0; i < kN; ++i) {
    ptrs.push_back(batch_out.data() + i * struct_size);
  }
  DecodeArena arena;
  dec.decode_batch(spans.data(), kN, *native, ptrs.data(), arena);

  for (std::size_t i = 0; i < kN; ++i) {
    std::vector<std::uint8_t> single(struct_size, 0xCC);
    DecodeArena sarena;
    dec.decode(spans[i], *native, single.data(), sarena);
    EXPECT_EQ(std::memcmp(single.data(),
                          batch_out.data() + i * struct_size, struct_size),
              0)
        << "message " << i << " differs between batch and single decode";
  }
}

TEST_P(BulkSwapTest, FusedAndPerFieldPlansAuditIdentically) {
  auto fused = ConversionPlan::build(foreign, native, PlanOptions{});
  auto per_field =
      ConversionPlan::build(foreign, native, PlanOptions::per_field());
  std::vector<analysis::Diagnostic> a = analysis::audit_plan(*fused);
  std::vector<analysis::Diagnostic> b = analysis::audit_plan(*per_field);
  auto keys = [](const std::vector<analysis::Diagnostic>& ds) {
    std::vector<std::string> out;
    for (const auto& d : ds) out.push_back(d.code + " " + d.path);
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(keys(a), keys(b));
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BulkSwapTest,
                         ::testing::ValuesIn(kBulkCases),
                         [](const auto& info) { return info.param.name; });

// --- Batch semantics --------------------------------------------------------

struct Reading {
  char sensor[8];
  double value;
  std::int32_t count;
  std::int32_t* samples;
};

std::vector<IOField> reading_fields() {
  return {
      {"sensor", "char[8]", 1, offsetof(Reading, sensor)},
      {"value", "float", 8, offsetof(Reading, value)},
      {"count", "integer", 4, offsetof(Reading, count)},
      {"samples", "integer[count]", 4, offsetof(Reading, samples)},
  };
}

class BatchSemanticsTest : public ::testing::Test {
protected:
  void SetUp() override {
    native = reg.register_format("Reading", reading_fields(), sizeof(Reading),
                                 arch::native());
    foreign = reg.register_format("Reading", reading_fields(), sizeof(Reading),
                                  arch::sparc64());
  }

  Buffer foreign_wire(int salt) {
    DynamicRecord r(native);
    r.set_char_array("sensor", std::string_view("egt-004", 8));
    r.set_float("value", 0.5 * salt);
    std::vector<std::int64_t> samples;
    for (int i = 0; i < salt % 5; ++i) samples.push_back(600 + salt + i);
    r.set_int_array("samples", samples);
    return pbio::synthesize_wire(*foreign, r);
  }

  FormatRegistry reg;
  FormatHandle native, foreign;
};

TEST_F(BatchSemanticsTest, DynamicArraysDecodeThroughBatchArena) {
  constexpr std::size_t kN = 9;
  std::vector<Buffer> wires;
  std::vector<std::span<const std::uint8_t>> spans;
  for (std::size_t i = 0; i < kN; ++i) {
    wires.push_back(foreign_wire(static_cast<int>(i + 1)));
  }
  for (const Buffer& w : wires) spans.push_back(w.span());

  Decoder dec(reg);
  std::vector<Reading> out(kN);
  std::vector<void*> ptrs;
  for (Reading& r : out) ptrs.push_back(&r);
  DecodeArena arena;
  dec.decode_batch(spans.data(), kN, *native, ptrs.data(), arena);

  for (std::size_t i = 0; i < kN; ++i) {
    int salt = static_cast<int>(i + 1);
    EXPECT_STREQ(out[i].sensor, "egt-004");
    EXPECT_EQ(out[i].value, 0.5 * salt);
    ASSERT_EQ(out[i].count, salt % 5);
    for (int k = 0; k < out[i].count; ++k) {
      EXPECT_EQ(out[i].samples[k], 600 + salt + k);
    }
  }
}

TEST_F(BatchSemanticsTest, MixedFormatBatchIsRejected) {
  auto other = reg.register_format("Other",
                                   std::vector<IOField>{{"x", "integer", 4, 0}},
                                   4, arch::native());
  DynamicRecord r(other);
  r.set_int("x", 1);
  Buffer other_wire = pbio::encode(*other, r.data());
  Buffer reading_wire = foreign_wire(1);

  std::span<const std::uint8_t> spans[2] = {reading_wire.span(),
                                            other_wire.span()};
  Decoder dec(reg);
  Reading a{};
  std::int32_t b = 0;
  void* ptrs[2] = {&a, &b};
  DecodeArena arena;
  EXPECT_THROW(dec.decode_batch(spans, 2, *native, ptrs, arena),
               DecodeError);
}

TEST_F(BatchSemanticsTest, TruncatedLastMessageFailsTheBatchNotThePrefix) {
  // A burst whose final message lost its tail in transit: the batch call
  // must reject it (body shorter than the header claims) and must not have
  // read past the truncated buffer; the intact prefix then decodes alone.
  constexpr std::size_t kN = 4;
  std::vector<Buffer> wires;
  for (std::size_t i = 0; i < kN; ++i) {
    wires.push_back(foreign_wire(static_cast<int>(i + 1)));
  }
  std::vector<std::span<const std::uint8_t>> spans;
  for (const Buffer& w : wires) spans.push_back(w.span());
  ASSERT_GT(wires.back().size(), 5u);
  spans.back() = spans.back().first(wires.back().size() - 5);

  Decoder dec(reg);
  std::vector<Reading> out(kN);
  std::vector<void*> ptrs;
  for (Reading& r : out) ptrs.push_back(&r);
  DecodeArena arena;
  EXPECT_THROW(dec.decode_batch(spans.data(), kN, *native, ptrs.data(), arena),
               DecodeError);

  // Mid-header truncation of the last message is equally fatal.
  spans.back() = wires.back().span().first(8);
  EXPECT_THROW(dec.decode_batch(spans.data(), kN, *native, ptrs.data(), arena),
               DecodeError);

  dec.decode_batch(spans.data(), kN - 1, *native, ptrs.data(), arena);
  for (std::size_t i = 0; i < kN - 1; ++i) {
    int salt = static_cast<int>(i + 1);
    EXPECT_STREQ(out[i].sensor, "egt-004");
    EXPECT_EQ(out[i].value, 0.5 * salt);
  }
}

TEST_F(BatchSemanticsTest, MixedFormatBurstFromConnectionMustBeGrouped) {
  // receive_batch hands back whatever the peer sent; grouping by format id
  // before decode_batch is the caller's contract. An ungrouped burst that
  // interleaves two formats is rejected, and peek_format_id gives the
  // caller everything needed to split it correctly.
  FormatRegistry sender_reg, receiver_reg;
  struct Tick {
    std::int64_t seq;
  };
  auto tick = sender_reg.register_format(
      "Tick", std::vector<IOField>{{"seq", "integer", 8, 0}}, sizeof(Tick),
      arch::native());
  auto tock = sender_reg.register_format(
      "Tock", std::vector<IOField>{{"seq", "integer", 8, 0}}, sizeof(Tick),
      arch::native());

  transport::TcpListener listener(0);
  std::thread sender([&] {
    transport::NdrConnection conn(transport::tcp_connect(listener.port()),
                                  sender_reg);
    for (int i = 0; i < 6; ++i) {
      Tick t{i};
      conn.send_struct(i % 2 == 0 ? *tick : *tock, &t);
    }
  });

  transport::NdrConnection conn(listener.accept(), receiver_reg);
  std::vector<Buffer> burst;
  while (conn.receive_batch(burst, 64) != 0) {
  }
  sender.join();
  ASSERT_EQ(burst.size(), 6u);

  auto native_tick = receiver_reg.by_id(Decoder::peek_format_id(burst[0].span()));
  ASSERT_NE(native_tick, nullptr);

  std::vector<std::span<const std::uint8_t>> spans;
  for (const Buffer& b : burst) spans.push_back(b.span());
  Decoder dec(receiver_reg);
  std::vector<Tick> out(burst.size());
  std::vector<void*> ptrs;
  for (Tick& t : out) ptrs.push_back(&t);
  DecodeArena arena;
  EXPECT_THROW(dec.decode_batch(spans.data(), spans.size(), *native_tick,
                                ptrs.data(), arena),
               DecodeError);

  // Grouped by format id, both halves decode.
  std::map<pbio::FormatId, std::vector<std::span<const std::uint8_t>>> groups;
  for (const Buffer& b : burst) {
    groups[Decoder::peek_format_id(b.span())].push_back(b.span());
  }
  ASSERT_EQ(groups.size(), 2u);
  for (auto& [id, members] : groups) {
    auto fmt = receiver_reg.by_id(id);
    ASSERT_NE(fmt, nullptr);
    std::vector<Tick> decoded(members.size());
    std::vector<void*> outs;
    for (Tick& t : decoded) outs.push_back(&t);
    dec.decode_batch(members.data(), members.size(), *fmt, outs.data(), arena);
    for (std::size_t i = 0; i < decoded.size(); ++i) {
      EXPECT_EQ(decoded[i].seq % 2, decoded[0].seq % 2);
    }
  }
}

TEST_F(BatchSemanticsTest, EmptyBatchIsANoOp) {
  Decoder dec(reg);
  DecodeArena arena;
  dec.decode_batch(nullptr, 0, *native, nullptr, arena);
}

TEST_F(BatchSemanticsTest, MatchedLayoutBatchTakesTheMemcpyPath) {
  // Wire format == native format: the plan is trivial and the batch path
  // degenerates to one memcpy per message.
  struct Flat {
    std::int32_t a;
    std::int32_t b;
  };
  auto flat = reg.register_format(
      "Flat",
      std::vector<IOField>{{"a", "integer", 4, 0}, {"b", "integer", 4, 4}},
      sizeof(Flat), arch::native());
  auto plan = ConversionPlan::build(flat, flat, PlanOptions{});
  ASSERT_TRUE(plan->is_trivial());

  constexpr std::size_t kN = 16;
  std::vector<Buffer> wires;
  std::vector<std::span<const std::uint8_t>> spans;
  for (std::size_t i = 0; i < kN; ++i) {
    Flat f{static_cast<std::int32_t>(i), static_cast<std::int32_t>(i * i)};
    wires.push_back(pbio::encode(*flat, &f));
  }
  for (const Buffer& w : wires) spans.push_back(w.span());

  Decoder dec(reg);
  std::vector<Flat> out(kN);
  std::vector<void*> ptrs;
  for (Flat& f : out) ptrs.push_back(&f);
  DecodeArena arena;
  dec.decode_batch(spans.data(), kN, *flat, ptrs.data(), arena);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(out[i].a, static_cast<std::int32_t>(i));
    EXPECT_EQ(out[i].b, static_cast<std::int32_t>(i * i));
  }
}

TEST_F(BatchSemanticsTest, WarmBatchDecodeAllocatesNothing) {
  constexpr std::size_t kN = 8;
  std::vector<Buffer> wires;
  std::vector<std::span<const std::uint8_t>> spans;
  for (std::size_t i = 0; i < kN; ++i) {
    wires.push_back(foreign_wire(static_cast<int>(i + 1)));
  }
  for (const Buffer& w : wires) spans.push_back(w.span());

  Decoder dec(reg);
  std::vector<Reading> out(kN);
  std::vector<void*> ptrs;
  for (Reading& r : out) ptrs.push_back(&r);
  DecodeArena arena;
  // Warm: compiles the plan, sizes the thread-local batch scratch, grows
  // the arena to its high-water mark.
  dec.decode_batch(spans.data(), kN, *native, ptrs.data(), arena);
  arena.reset();

  AllocationCounter counter;
  dec.decode_batch(spans.data(), kN, *native, ptrs.data(), arena);
  EXPECT_EQ(counter.count(), 0u)
      << "steady-state batch decode must not touch the heap";
}

// --- Kernel-tier gauge ------------------------------------------------------

TEST(KernelTier, GaugeReportsTheDispatchedTier) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Gauge& g = reg.gauge("pbio.decode.kernel_tier");
#ifdef OMF_NO_METRICS
  (void)g;
#else
  EXPECT_EQ(g.value(),
            static_cast<std::int64_t>(arch::simd_tier()));
#endif
}

TEST(KernelTier, ExposedViaMetricsEndpoint) {
#ifndef OMF_NO_METRICS
  // The runtime-dispatch smoke test: the tier selected at process start
  // (CPU probe clamped by OMF_SIMD_TIER) is scrapeable from /metrics, so an
  // operator can always see which kernels a process is actually running.
  http::Server server;
  http::Response resp =
      http::get(server.url_for("/metrics"),
                Deadline::from_timeout(std::chrono::seconds(5)));
  ASSERT_EQ(resp.status, 200);
  std::string expect =
      "omf_pbio_decode_kernel_tier " +
      std::to_string(static_cast<int>(arch::simd_tier()));
  EXPECT_NE(resp.body.find(expect), std::string::npos)
      << "gauge line missing from /metrics exposition";
#endif
}

// --- Gateway batch conversion ------------------------------------------------

const char* kGatewayBatchSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Burst">
    <xsd:element name="seq" type="xsd:int" />
    <xsd:element name="value" type="xsd:double" />
  </xsd:complexType>
</xsd:schema>)";

TEST(GatewayBatch, ConvertBatchMatchesPerMessageConvert) {
  FormatRegistry reg;
  core::Xml2Wire native_x2w(reg, arch::native());
  core::Xml2Wire sparc_x2w(reg, arch::sparc64());
  core::Xml2Wire arm_x2w(reg, arch::arm32());
  FormatHandle native_f = native_x2w.register_text(kGatewayBatchSchema)[0];
  FormatHandle sparc_f = sparc_x2w.register_text(kGatewayBatchSchema)[0];
  FormatHandle arm_f = arm_x2w.register_text(kGatewayBatchSchema)[0];

  auto sample = [&](int i) {
    DynamicRecord r(native_f);
    r.set_int("seq", i);
    r.set_float("value", 2.5 * i);
    return r;
  };

  // A burst that interleaves: 5 sparc messages, 2 already-target arm
  // messages, 4 more sparc — exercising run grouping and pass-through.
  std::vector<Buffer> burst;
  for (int i = 0; i < 5; ++i) {
    burst.push_back(pbio::synthesize_wire(*sparc_f, sample(i)));
  }
  for (int i = 5; i < 7; ++i) {
    burst.push_back(pbio::synthesize_wire(*arm_f, sample(i)));
  }
  for (int i = 7; i < 11; ++i) {
    burst.push_back(pbio::synthesize_wire(*sparc_f, sample(i)));
  }
  std::vector<std::span<const std::uint8_t>> spans;
  for (const Buffer& b : burst) spans.push_back(b.span());

  core::Gateway batch_gw(reg, native_f, arm_f);
  std::vector<Buffer> batched = batch_gw.convert_batch(spans);

  core::Gateway single_gw(reg, native_f, arm_f);
  ASSERT_EQ(batched.size(), burst.size());
  for (std::size_t i = 0; i < burst.size(); ++i) {
    Buffer one = single_gw.convert(spans[i]);
    EXPECT_EQ(batched[i], one) << "message " << i;
  }
  EXPECT_EQ(batch_gw.converted(), 9u);
  EXPECT_EQ(batch_gw.passed_through(), 2u);
}

TEST(GatewayBatch, NativeTargetBatchUsesPlainEncoder) {
  FormatRegistry reg;
  core::Xml2Wire native_x2w(reg, arch::native());
  core::Xml2Wire sparc_x2w(reg, arch::sparc64());
  FormatHandle native_f = native_x2w.register_text(kGatewayBatchSchema)[0];
  FormatHandle sparc_f = sparc_x2w.register_text(kGatewayBatchSchema)[0];

  DynamicRecord r(native_f);
  r.set_int("seq", 42);
  r.set_float("value", -1.25);
  Buffer wire = pbio::synthesize_wire(*sparc_f, r);
  std::vector<std::span<const std::uint8_t>> spans = {wire.span(),
                                                      wire.span()};

  core::Gateway gw(reg, native_f, native_f);
  std::vector<Buffer> out = gw.convert_batch(spans);
  ASSERT_EQ(out.size(), 2u);
  for (const Buffer& b : out) {
    EXPECT_EQ(Decoder::peek_format_id(b.span()), native_f->id());
  }
  EXPECT_EQ(out[0], out[1]);
}

// --- receive_batch ----------------------------------------------------------

TEST(ReceiveBatch, DrainsBurstsWithoutStalling) {
  FormatRegistry sender_reg, receiver_reg;
  struct Tick {
    std::int64_t seq;
  };
  auto f = sender_reg.register_format(
      "Tick", std::vector<IOField>{{"seq", "integer", 8, 0}}, sizeof(Tick),
      arch::native());

  transport::TcpListener listener(0);
  std::vector<std::int64_t> received;
  std::size_t batches = 0;
  std::thread receiver_thread([&] {
    transport::NdrConnection conn(listener.accept(), receiver_reg);
    Decoder dec(receiver_reg);
    DecodeArena arena;
    std::vector<Buffer> batch;
    for (;;) {
      batch.clear();
      std::size_t n = conn.receive_batch(batch, 64);
      if (n == 0) break;  // orderly close
      ++batches;
      for (const Buffer& msg : batch) {
        auto wire_format =
            receiver_reg.by_id(Decoder::peek_format_id(msg.span()));
        ASSERT_NE(wire_format, nullptr);
        Tick out{};
        dec.decode(msg.span(), *wire_format, &out, arena);
        received.push_back(out.seq);
      }
    }
  });

  constexpr int kMessages = 40;
  {
    transport::NdrConnection conn(transport::tcp_connect(listener.port()),
                                  sender_reg);
    for (int i = 0; i < kMessages; ++i) {
      Tick t{i};
      conn.send_struct(*f, &t);
    }
  }
  receiver_thread.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
  }
  // The whole point: bursts coalesce, so far fewer receive_batch calls than
  // messages (at minimum the close costs one extra call).
  EXPECT_LE(batches, static_cast<std::size_t>(kMessages));
  EXPECT_GE(batches, 1u);
}

TEST(ReceiveBatch, MaxMessagesBoundsOneCall) {
  FormatRegistry sender_reg, receiver_reg;
  struct Tick {
    std::int64_t seq;
  };
  auto f = sender_reg.register_format(
      "Tick", std::vector<IOField>{{"seq", "integer", 8, 0}}, sizeof(Tick),
      arch::native());

  transport::TcpListener listener(0);
  std::size_t total = 0;
  std::thread receiver_thread([&] {
    transport::NdrConnection conn(listener.accept(), receiver_reg);
    std::vector<Buffer> batch;
    for (;;) {
      batch.clear();
      std::size_t n = conn.receive_batch(batch, 3);
      if (n == 0) break;
      EXPECT_LE(n, 3u);
      EXPECT_EQ(n, batch.size());
      total += n;
    }
  });

  {
    transport::NdrConnection conn(transport::tcp_connect(listener.port()),
                                  sender_reg);
    for (int i = 0; i < 10; ++i) {
      Tick t{i};
      conn.send_struct(*f, &t);
    }
  }
  receiver_thread.join();
  EXPECT_EQ(total, 10u);
}

}  // namespace
}  // namespace omf
