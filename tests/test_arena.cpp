// DecodeArena reset/reuse semantics, and the zero-allocation guarantee:
// once an arena (and an encode buffer) is warm, a steady-state
// decode/encode loop of a repeated message touches the heap zero times.
// Verified with a global operator new/delete counting hook.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/xml2wire.hpp"
#include "pbio/arena.hpp"
#include "pbio/decode.hpp"
#include "pbio/record.hpp"
#include "pbio/synth.hpp"

namespace {

// --- Allocation-counting hook ----------------------------------------------
// Counts every global operator new while `g_counting` is set. Installed for
// this test binary only.

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t n) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

struct AllocationCounter {
  AllocationCounter() {
    g_allocations.store(0);
    g_counting.store(true);
  }
  ~AllocationCounter() { g_counting.store(false); }
  std::size_t count() const { return g_allocations.load(); }
};

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
// The nothrow pair must be replaced too: libstdc++ internals (e.g.
// stable_sort's temporary buffer) allocate through it, and a mix of the
// default nothrow new with the malloc-backed delete above is an
// alloc-dealloc mismatch under ASan.
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return std::malloc(n ? n : 1);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace omf {
namespace {

using pbio::DecodeArena;
using pbio::Decoder;
using pbio::DynamicRecord;

TEST(DecodeArena, ResetRetainsHighWaterChunk) {
  DecodeArena arena;
  arena.allocate(100);
  arena.allocate(10000);  // forces a second, larger chunk
  std::size_t reserved = arena.reserved_bytes();
  ASSERT_GT(reserved, 10000u);

  arena.reset();
  // Nothing was released: the largest chunk stays current, the rest is
  // free-listed for reuse.
  EXPECT_EQ(arena.reserved_bytes(), reserved);

  // The same allocation pattern now fits entirely in retained memory.
  AllocationCounter counter;
  arena.allocate(100);
  arena.allocate(10000);
  EXPECT_EQ(counter.count(), 0u);
}

TEST(DecodeArena, ClearReleasesEverything) {
  DecodeArena arena;
  arena.allocate(5000);
  arena.reset();
  ASSERT_GT(arena.reserved_bytes(), 0u);
  arena.clear();
  EXPECT_EQ(arena.reserved_bytes(), 0u);
}

TEST(DecodeArena, ResetReusesFreeListedChunks) {
  DecodeArena arena;
  // Build up several chunks, reset, and check the re-run draws them from the
  // free list instead of the heap.
  for (int round = 0; round < 3; ++round) {
    arena.reset();
    for (int i = 0; i < 6; ++i) arena.allocate(3000);
  }
  std::size_t reserved = arena.reserved_bytes();
  AllocationCounter counter;
  arena.reset();
  for (int i = 0; i < 6; ++i) arena.allocate(3000);
  EXPECT_EQ(counter.count(), 0u);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

const char* kSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Sample">
    <xsd:element name="tag" type="xsd:string" />
    <xsd:element name="count" type="xsd:int" />
    <xsd:element name="values" type="xsd:double" maxOccurs="count" />
  </xsd:complexType>
</xsd:schema>
)";

TEST(ZeroAllocSteadyState, DecodeRepeatedMessage) {
  pbio::FormatRegistry registry;
  core::Xml2Wire native_side(registry, arch::native());
  auto native = native_side.register_text(kSchema)[0];
  core::Xml2Wire foreign_side(registry, arch::profile_by_name("sparc64"));
  auto foreign = foreign_side.register_text(kSchema)[0];

  DynamicRecord rec(native);
  rec.set_string("tag", "steady.state.decode");
  rec.set_float_array("values", std::vector<double>(64, 0.5));
  Buffer wire = pbio::synthesize_wire(*foreign, rec);

  Decoder dec(registry);
  std::vector<std::uint8_t> out(native->struct_size());
  DecodeArena arena;
  // Warm: compiles the plan and raises the arena to its high-water mark.
  dec.decode(wire.span(), *native, out.data(), arena);
  arena.reset();
  dec.decode(wire.span(), *native, out.data(), arena);

  AllocationCounter counter;
  for (int i = 0; i < 100; ++i) {
    arena.reset();
    dec.decode(wire.span(), *native, out.data(), arena);
  }
  EXPECT_EQ(counter.count(), 0u)
      << "steady-state decode touched the heap " << counter.count()
      << " times";
}

TEST(ZeroAllocSteadyState, EncodeIntoReusedBuffer) {
  pbio::FormatRegistry registry;
  core::Xml2Wire x2w(registry, arch::native());
  auto format = x2w.register_text(kSchema)[0];

  DynamicRecord rec(format);
  rec.set_string("tag", "steady.state.encode");
  rec.set_float_array("values", std::vector<double>(64, 2.25));

  Buffer out;
  rec.encode_into(out);  // warm: buffer reaches final capacity

  AllocationCounter counter;
  for (int i = 0; i < 100; ++i) {
    rec.encode_into(out);
  }
  EXPECT_EQ(counter.count(), 0u)
      << "steady-state encode touched the heap " << counter.count()
      << " times";
}

}  // namespace
}  // namespace omf
