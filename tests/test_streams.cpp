// Stream subscription lifecycle, message files, and enumeration facets.
#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

#include "core/http_formats.hpp"
#include "core/stream.hpp"
#include "http/http.hpp"
#include "pbio/decode.hpp"
#include "pbio/file.hpp"
#include "pbio/record.hpp"
#include "pbio/synth.hpp"
#include "schema/generator.hpp"
#include "schema/reader.hpp"
#include "test_structs.hpp"
#include "transport/backbone.hpp"

namespace omf {
namespace {

using namespace omf::testing;

// --- StreamSubscriber ------------------------------------------------------------

const char* kV1 = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Gate">
    <xsd:element name="fltNum" type="xsd:int" />
    <xsd:element name="gate" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>)";

const char* kV2 = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Gate">
    <xsd:element name="fltNum" type="xsd:int" />
    <xsd:element name="gate" type="xsd:string" />
    <xsd:element name="remote" type="xsd:boolean" />
  </xsd:complexType>
</xsd:schema>)";

TEST(StreamSubscriber, DiscoversAtSubscribeTimeAndDecodes) {
  http::Server meta;
  meta.put_document("/gate.xml", kV1);
  transport::EventBackbone backbone;
  backbone.announce("gates", meta.url_for("/gate.xml"));

  core::Context producer_ctx, consumer_ctx;
  auto pformat =
      producer_ctx.discover_format(meta.url_for("/gate.xml"), "Gate");

  core::StreamSubscriber sub(consumer_ctx, backbone, "gates", "Gate");
  EXPECT_EQ(sub.format()->id(), pformat->id());

  pbio::DynamicRecord msg(pformat);
  msg.set_int("fltNum", 11);
  msg.set_string("gate", "C3");
  backbone.publish("gates", msg.encode());

  auto got = sub.try_receive();
  ASSERT_TRUE(got);
  EXPECT_EQ(got->get_int("fltNum"), 11);
  EXPECT_STREQ(got->get_string("gate"), "C3");
  EXPECT_EQ(sub.rediscoveries(), 0u);
}

TEST(StreamSubscriber, RequiresAnnouncedMetadata) {
  transport::EventBackbone backbone;
  core::Context ctx;
  EXPECT_THROW(
      core::StreamSubscriber(ctx, backbone, "unannounced", "Gate"),
      DiscoveryError);
}

TEST(StreamSubscriber, ReactsToMetadataChangeMidStream) {
  http::Server meta;
  meta.put_document("/gate.xml", kV1);
  transport::EventBackbone backbone;
  backbone.announce("gates", meta.url_for("/gate.xml"));

  core::Context producer_ctx, consumer_ctx;
  auto v1 = producer_ctx.discover_format(meta.url_for("/gate.xml"), "Gate");
  core::StreamSubscriber sub(consumer_ctx, backbone, "gates", "Gate");

  pbio::DynamicRecord m1(v1);
  m1.set_int("fltNum", 1);
  m1.set_string("gate", "A1");
  backbone.publish("gates", m1.encode());

  // Metadata changes; producer re-discovers and publishes v2 messages.
  meta.put_document("/gate.xml", kV2);
  producer_ctx.discovery().invalidate(meta.url_for("/gate.xml"));
  auto v2 = producer_ctx.discover_format(meta.url_for("/gate.xml"), "Gate");
  pbio::DynamicRecord m2(v2);
  m2.set_int("fltNum", 2);
  m2.set_string("gate", "B2");
  m2.set_uint("remote", 1);
  backbone.publish("gates", m2.encode());

  auto got1 = sub.try_receive();
  ASSERT_TRUE(got1);
  EXPECT_EQ(got1->get_int("fltNum"), 1);
  EXPECT_EQ(sub.rediscoveries(), 0u);

  auto got2 = sub.try_receive();  // triggers re-discovery
  ASSERT_TRUE(got2);
  EXPECT_EQ(got2->get_int("fltNum"), 2);
  EXPECT_EQ(got2->get_uint("remote"), 1u);  // the new field is visible
  EXPECT_EQ(sub.rediscoveries(), 1u);
  EXPECT_EQ(sub.format()->id(), v2->id());  // adopted the new view
}

TEST(StreamSubscriber, FallbackResolvesForeignSenders) {
  http::Server meta;
  meta.put_document("/gate.xml", kV1);
  transport::EventBackbone backbone;
  backbone.announce("gates", meta.url_for("/gate.xml"));

  // The sender runs on sparc64; its wire id is not derivable from the XML
  // on this (little-endian) machine, so the subscriber needs the fallback.
  pbio::FormatRegistry sender_reg;
  core::Xml2Wire sender_x2w(sender_reg, arch::sparc64());
  auto foreign = sender_x2w.register_text(kV1)[0];

  http::Server format_server;
  core::HttpFormatPublisher publisher(format_server);
  publisher.publish(*foreign);

  core::Context consumer_ctx;
  core::StreamSubscriber sub(consumer_ctx, backbone, "gates", "Gate");
  core::HttpFormatResolver resolver(format_server.url_for("/formats/"));
  sub.set_format_fallback(
      [&resolver](pbio::FormatRegistry& reg, pbio::FormatId id) {
        return resolver.resolve(reg, id) != nullptr;
      });

  pbio::DynamicRecord values(sub.format());
  values.set_int("fltNum", 77);
  values.set_string("gate", "E9");
  backbone.publish("gates", pbio::synthesize_wire(*foreign, values));

  auto got = sub.try_receive();
  ASSERT_TRUE(got);
  EXPECT_EQ(got->get_int("fltNum"), 77);
  EXPECT_STREQ(got->get_string("gate"), "E9");
  EXPECT_EQ(sub.rediscoveries(), 1u);
}

TEST(StreamSubscriber, UnresolvableFormatThrows) {
  http::Server meta;
  meta.put_document("/gate.xml", kV1);
  transport::EventBackbone backbone;
  backbone.announce("gates", meta.url_for("/gate.xml"));

  pbio::FormatRegistry sender_reg;
  core::Xml2Wire sender_x2w(sender_reg, arch::sparc64());
  auto foreign = sender_x2w.register_text(kV1)[0];

  core::Context ctx;
  core::StreamSubscriber sub(ctx, backbone, "gates", "Gate");
  pbio::DynamicRecord values(sub.format());
  values.set_int("fltNum", 1);
  backbone.publish("gates", pbio::synthesize_wire(*foreign, values));
  EXPECT_THROW(sub.try_receive(), FormatError);
}

// --- Message files ----------------------------------------------------------------

class MessageFileTest : public ::testing::Test {
protected:
  std::string path() const {
    return ::testing::TempDir() + "/omf_msgs_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".omf";
  }
  void TearDown() override { std::remove(path().c_str()); }
};

TEST_F(MessageFileTest, WriteReadRoundTrip) {
  pbio::FormatRegistry writer_reg;
  auto f = writer_reg.register_format("ASDOffEvent", asdoff_fields(),
                                      sizeof(AsdOff));
  {
    pbio::MessageFileWriter writer(path());
    for (int i = 0; i < 10; ++i) {
      AsdOff event;
      fill_asdoff(event, i);
      writer.write_struct(*f, &event);
    }
    EXPECT_EQ(writer.messages_written(), 10u);
  }

  // A fresh registry: formats come from the file itself.
  pbio::FormatRegistry reader_reg;
  pbio::MessageFileReader reader(path(), reader_reg);
  pbio::Decoder dec(reader_reg);
  auto native = reader_reg.register_format("ASDOffEvent", asdoff_fields(),
                                           sizeof(AsdOff));
  int n = 0;
  while (auto msg = reader.next()) {
    AsdOff expected;
    fill_asdoff(expected, n);
    AsdOff out{};
    pbio::DecodeArena arena;
    dec.decode(msg->span(), *native, &out, arena);
    EXPECT_TRUE(asdoff_equal(expected, out)) << "message " << n;
    ++n;
  }
  EXPECT_EQ(n, 10);
}

TEST_F(MessageFileTest, FormatBundleWrittenOnceAndSelfContained) {
  pbio::FormatRegistry writer_reg;
  auto [b, c] = register_nested_pair(writer_reg);
  {
    pbio::MessageFileWriter writer(path());
    unsigned long etas[2];
    AsdOffB event;
    fill_asdoffb(event, etas, 2);
    for (int i = 0; i < 3; ++i) writer.write_struct(*b, &event);
  }
  pbio::FormatRegistry reader_reg;
  pbio::MessageFileReader reader(path(), reader_reg);
  int n = 0;
  while (reader.next()) ++n;
  EXPECT_EQ(n, 3);
  // The file registered the format (exactly once is invisible here, but
  // the id must resolve without any local registration).
  EXPECT_NE(reader_reg.by_id(b->id()), nullptr);
}

TEST_F(MessageFileTest, MixedFormatsInOneFile) {
  pbio::FormatRegistry writer_reg;
  auto fa = writer_reg.register_format("ASDOffEvent", asdoff_fields(),
                                       sizeof(AsdOff));
  auto [fb, fc] = register_nested_pair(writer_reg);
  {
    pbio::MessageFileWriter writer(path());
    AsdOff a;
    fill_asdoff(a);
    unsigned long etas[1];
    AsdOffB b;
    fill_asdoffb(b, etas, 1);
    writer.write_struct(*fa, &a);
    writer.write_struct(*fb, &b);
    writer.write_struct(*fa, &a);
  }
  pbio::FormatRegistry reader_reg;
  pbio::MessageFileReader reader(path(), reader_reg);
  std::vector<pbio::FormatId> ids;
  while (auto msg = reader.next()) {
    ids.push_back(pbio::Decoder::peek_format_id(msg->span()));
  }
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], fa->id());
  EXPECT_EQ(ids[1], fb->id());
  EXPECT_EQ(ids[2], fa->id());
}

TEST_F(MessageFileTest, HeterogeneousArchiveReplaysAnywhere) {
  // A foreign-architecture producer wrote the archive; this machine reads
  // and converts it — "data files in a heterogeneous computing
  // environment".
  pbio::FormatRegistry reg;
  core::Xml2Wire native_x2w(reg, arch::native());
  core::Xml2Wire foreign_x2w(reg, arch::sparc64());
  auto native = native_x2w.register_text(kAsdOffBSchema)[0];
  auto foreign = foreign_x2w.register_text(kAsdOffBSchema)[0];

  pbio::DynamicRecord values(native);
  values.set_string("cntrId", "ZAU");
  values.set_int("fltNum", 330);
  values.set_int_array("off", std::vector<std::int64_t>{1, 2, 3, 4, 5});
  values.set_int_array("eta", std::vector<std::int64_t>{9, 8});
  {
    pbio::MessageFileWriter writer(path());
    writer.write(*foreign, pbio::synthesize_wire(*foreign, values));
  }

  pbio::FormatRegistry reader_reg;
  core::Xml2Wire reader_x2w(reader_reg);
  auto reader_native = reader_x2w.register_text(kAsdOffBSchema)[0];
  pbio::MessageFileReader reader(path(), reader_reg);
  pbio::Decoder dec(reader_reg);
  auto msg = reader.next();
  ASSERT_TRUE(msg);
  pbio::DynamicRecord out(reader_native);
  out.from_wire(dec, msg->span());
  EXPECT_TRUE(values.deep_equals(out));
}

TEST_F(MessageFileTest, CorruptFilesAreRejected) {
  {
    std::FILE* f = std::fopen(path().c_str(), "wb");
    std::fwrite("NOTANOMF", 1, 8, f);
    std::fclose(f);
  }
  pbio::FormatRegistry reg;
  EXPECT_THROW(pbio::MessageFileReader(path(), reg), DecodeError);
}

TEST_F(MessageFileTest, TruncatedRecordThrows) {
  pbio::FormatRegistry reg;
  auto f = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  {
    pbio::MessageFileWriter writer(path());
    AsdOff a;
    fill_asdoff(a);
    writer.write_struct(*f, &a);
  }
  // Chop the last 10 bytes.
  {
    std::FILE* file = std::fopen(path().c_str(), "rb+");
    std::fseek(file, 0, SEEK_END);
    long size = std::ftell(file);
    std::fclose(file);
    ASSERT_EQ(truncate(path().c_str(), size - 10), 0);
  }
  pbio::FormatRegistry reader_reg;
  pbio::MessageFileReader reader(path(), reader_reg);
  EXPECT_THROW(while (reader.next()) {}, DecodeError);
}

// --- Enumeration facets -------------------------------------------------------------

TEST(Enumerations, ParsedFromSimpleType) {
  const char* schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:simpleType name="FlightPhase">
    <xsd:restriction base="xsd:int">
      <xsd:enumeration value="taxi" />
      <xsd:enumeration value="takeoff" />
      <xsd:enumeration value="cruise" />
      <xsd:enumeration value="landing" />
    </xsd:restriction>
  </xsd:simpleType>
  <xsd:complexType name="Status">
    <xsd:element name="phase" type="FlightPhase" />
  </xsd:complexType>
</xsd:schema>)";
  schema::SchemaDocument doc = schema::read_schema_text(schema);
  const schema::SchemaSimpleType* phase = doc.simple_type_named("FlightPhase");
  ASSERT_NE(phase, nullptr);
  ASSERT_EQ(phase->enumeration.size(), 4u);
  EXPECT_EQ(phase->enum_index("cruise"), 2u);
  EXPECT_EQ(phase->enum_index("hover"), SIZE_MAX);
  // Marshals as the base primitive.
  EXPECT_EQ(doc.types[0].elements[0].primitive, schema::XsdPrimitive::kInt);

  // Round-trips through the schema writer.
  schema::SchemaDocument again =
      schema::read_schema_text(schema::write_schema_text(doc));
  EXPECT_EQ(again.simple_type_named("FlightPhase")->enumeration,
            phase->enumeration);
}

TEST(Enumerations, ErrorsAreDiagnosed) {
  EXPECT_THROW(schema::read_schema_text(R"(
<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema">
  <s:simpleType name="E"><s:restriction base="s:int">
    <s:enumeration value="a"/><s:enumeration value="a"/>
  </s:restriction></s:simpleType>
  <s:complexType name="T"><s:element name="x" type="s:int"/></s:complexType>
</s:schema>)"),
               FormatError);
  EXPECT_THROW(schema::read_schema_text(R"(
<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema">
  <s:simpleType name="E"><s:restriction base="s:double">
    <s:enumeration value="a"/>
  </s:restriction></s:simpleType>
  <s:complexType name="T"><s:element name="x" type="s:int"/></s:complexType>
</s:schema>)"),
               FormatError);
}

}  // namespace
}  // namespace omf
