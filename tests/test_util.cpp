// util: buffers, byte order, strings, hashing, rng.
#include <gtest/gtest.h>

#include "util/buffer.hpp"
#include "util/bytes.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace omf {
namespace {

TEST(Bytes, Byteswap) {
  EXPECT_EQ(byteswap(std::uint16_t{0x1234}), 0x3412);
  EXPECT_EQ(byteswap(std::uint32_t{0x12345678}), 0x78563412u);
  EXPECT_EQ(byteswap(std::uint64_t{0x0102030405060708ull}),
            0x0807060504030201ull);
}

TEST(Bytes, ByteswapInplace) {
  std::uint8_t b2[] = {1, 2};
  byteswap_inplace(b2, 2);
  EXPECT_EQ(b2[0], 2);
  std::uint8_t b4[] = {1, 2, 3, 4};
  byteswap_inplace(b4, 4);
  EXPECT_EQ(b4[0], 4);
  EXPECT_EQ(b4[3], 1);
  std::uint8_t b8[] = {1, 2, 3, 4, 5, 6, 7, 8};
  byteswap_inplace(b8, 8);
  EXPECT_EQ(b8[0], 8);
  EXPECT_EQ(b8[7], 1);
}

TEST(Bytes, LoadStoreRoundTrip) {
  std::uint8_t buf[8];
  store_le<std::uint32_t>(buf, 0xDEADBEEF);
  EXPECT_EQ(load_le<std::uint32_t>(buf), 0xDEADBEEFu);
  EXPECT_EQ(buf[0], 0xEF);  // little-endian byte layout
  store_be<std::uint32_t>(buf, 0xDEADBEEF);
  EXPECT_EQ(load_be<std::uint32_t>(buf), 0xDEADBEEFu);
  EXPECT_EQ(buf[0], 0xDE);  // big-endian byte layout
  store_order<std::uint64_t>(buf, 42, ByteOrder::kBig);
  EXPECT_EQ(load_order<std::uint64_t>(buf, ByteOrder::kBig), 42u);
}

TEST(Bytes, AlignUp) {
  EXPECT_EQ(align_up(0, 8), 0u);
  EXPECT_EQ(align_up(1, 8), 8u);
  EXPECT_EQ(align_up(8, 8), 8u);
  EXPECT_EQ(align_up(9, 4), 12u);
}

TEST(Buffer, AppendAndRead) {
  Buffer b;
  b.append_int<std::uint32_t>(7, ByteOrder::kLittle);
  b.append("hi");
  b.append_zeros(2);
  EXPECT_EQ(b.size(), 8u);

  BufferReader r(b);
  EXPECT_EQ(r.read_int<std::uint32_t>(ByteOrder::kLittle), 7u);
  EXPECT_EQ(r.read_string(2), "hi");
  r.skip(2);
  EXPECT_TRUE(r.at_end());
}

TEST(Buffer, PatchInt) {
  Buffer b;
  std::size_t at = b.grow(4);
  b.append("tail");
  b.patch_int<std::uint32_t>(at, 99, ByteOrder::kLittle);
  BufferReader r(b);
  EXPECT_EQ(r.read_int<std::uint32_t>(ByteOrder::kLittle), 99u);
}

TEST(Buffer, PatchPastEndThrows) {
  Buffer b;
  b.grow(2);
  EXPECT_THROW(b.patch_int<std::uint32_t>(0, 1, ByteOrder::kLittle),
               EncodeError);
}

TEST(BufferReader, ThrowsOnOverrun) {
  Buffer b;
  b.append("abc");
  BufferReader r(b);
  r.skip(2);
  EXPECT_THROW(r.read_bytes(2), DecodeError);
  EXPECT_THROW(r.skip(2), DecodeError);
  EXPECT_NO_THROW(r.read_bytes(1));
}

TEST(BufferReader, SeekBounds) {
  Buffer b;
  b.append("abcd");
  BufferReader r(b);
  r.seek(4);
  EXPECT_TRUE(r.at_end());
  EXPECT_THROW(r.seek(5), DecodeError);
}

TEST(Buffer, HexDump) {
  Buffer b;
  b.append_int<std::uint16_t>(0xABCD, ByteOrder::kBig);
  EXPECT_EQ(b.hex(), "ab cd");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\n x y \r"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("http://x", "http://"));
  EXPECT_FALSE(starts_with("ht", "http://"));
  EXPECT_TRUE(ends_with("file.xml", ".xml"));
  EXPECT_FALSE(ends_with("xml", ".xml"));
}

TEST(Strings, IEquals) {
  EXPECT_TRUE(iequals("Content-Type", "content-type"));
  EXPECT_FALSE(iequals("a", "ab"));
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_FALSE(parse_int("4x"));
  EXPECT_FALSE(parse_int(""));
  EXPECT_FALSE(parse_int("999999999999999999999999"));
  EXPECT_EQ(parse_uint("18446744073709551615"), 18446744073709551615ull);
  EXPECT_FALSE(parse_uint("-1"));
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(*parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*parse_double("-1e3"), -1000.0);
  EXPECT_FALSE(parse_double("nanx"));
  EXPECT_FALSE(parse_double(""));
}

TEST(Strings, IsXmlName) {
  EXPECT_TRUE(is_xml_name("xsd:element"));
  EXPECT_TRUE(is_xml_name("_x-1.y"));
  EXPECT_FALSE(is_xml_name("1abc"));
  EXPECT_FALSE(is_xml_name(""));
  EXPECT_FALSE(is_xml_name("a b"));
}

TEST(Hash, Fnv1aIsStable) {
  // Known FNV-1a vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
  Fnv1a h;
  h.update("a");
  EXPECT_EQ(h.digest(), fnv1a("a"));
}

TEST(Hash, DifferentInputsDiffer) {
  EXPECT_NE(fnv1a("format-a"), fnv1a("format-b"));
  Fnv1a h1, h2;
  h1.update(std::uint64_t{1});
  h2.update(std::uint64_t{2});
  EXPECT_NE(h1.digest(), h2.digest());
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, RangeBounds) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    auto v = r.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    auto u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, IdentifierShape) {
  Rng r(7);
  std::string id = r.identifier(12);
  EXPECT_EQ(id.size(), 12u);
  EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(id[0])));
}

}  // namespace
}  // namespace omf
