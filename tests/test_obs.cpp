// The observability layer: metric primitives (exact concurrent counters,
// log2 histogram buckets), the span tracer (ring semantics, trace-id
// propagation across a loopback NdrConnection), Prometheus exposition from
// a live process, the post-mortem log ring, and the zero-allocation
// guarantee for steady-state decode *with metrics and tracing enabled*.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/gateway.hpp"
#include "core/xml2wire.hpp"
#include "http/http.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pbio/decode.hpp"
#include "pbio/record.hpp"
#include "pbio/synth.hpp"
#include "transport/ndr_connection.hpp"
#include "transport/tcp.hpp"
#include "util/logging.hpp"

namespace {

// --- Allocation-counting hook (same pattern as test_arena.cpp) -------------

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t n) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

struct AllocationCounter {
  AllocationCounter() {
    g_allocations.store(0);
    g_counting.store(true);
  }
  ~AllocationCounter() { g_counting.store(false); }
  std::size_t count() const { return g_allocations.load(); }
};

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace omf {
namespace {

const char* kSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Sample">
    <xsd:element name="tag" type="xsd:string" />
    <xsd:element name="count" type="xsd:int" />
    <xsd:element name="values" type="xsd:double" maxOccurs="count" />
  </xsd:complexType>
</xsd:schema>
)";

// --- Metric primitives ------------------------------------------------------

TEST(ObsCounter, ConcurrentAddsAreExact) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr int kAdds = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  // Relaxed RMWs never lose updates; once quiescent the shard sum is exact.
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(ObsCounter, AddWithIncrementAndReset) {
  obs::Counter c;
  c.add(40);
  c.add(2);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, SetAddSub) {
  obs::Gauge g;
  g.set(10);
  g.add(5);
  g.sub(7);
  EXPECT_EQ(g.value(), 8);
  g.sub(20);
  EXPECT_EQ(g.value(), -12);  // gauges go negative; counters never do
}

TEST(ObsHistogram, BucketBoundaries) {
  obs::Histogram h;
  h.record(0);  // bit_width(0) == 0 -> bucket 0 (le 0)
  h.record(1);  // bucket 1 (le 1)
  h.record(2);  // bucket 2 (le 3)
  h.record(3);  // bucket 2 (le 3)
  h.record(4);  // bucket 3 (le 7)
  h.record(std::uint64_t{1} << 45);  // wider than every bucket -> last

  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(obs::Histogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + (std::uint64_t{1} << 45));

  // The `le` bound each bucket advertises is inclusive of everything the
  // bucket counted: bucket k holds values of bit width k, max 2^k - 1.
  EXPECT_EQ(obs::Histogram::le(0), 0u);
  EXPECT_EQ(obs::Histogram::le(1), 1u);
  EXPECT_EQ(obs::Histogram::le(2), 3u);
  EXPECT_EQ(obs::Histogram::le(10), 1023u);
}

// --- Registry ---------------------------------------------------------------

TEST(ObsRegistry, StableReferencesAndKindCollision) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& a = reg.counter("test.obs.stable");
  obs::Counter& b = reg.counter("test.obs.stable");
  EXPECT_EQ(&a, &b);  // one address per name, for the process lifetime
  // A name denotes exactly one metric kind.
  EXPECT_THROW(reg.gauge("test.obs.stable"), std::logic_error);
  EXPECT_THROW(reg.histogram("test.obs.stable"), std::logic_error);
}

TEST(ObsRegistry, SnapshotPreRegistersCoreNames) {
  // The full core instrumentation surface is visible (zero-valued or not)
  // before any traffic flows — scrape targets never see a partial schema.
  obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
  auto has_counter = [&](std::string_view name) {
    for (const auto& row : snap.counters) {
      if (row.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_counter("pbio.plan_cache.hits"));
  EXPECT_TRUE(has_counter("pbio.decode.messages"));
  EXPECT_TRUE(has_counter("discovery.requests"));
  EXPECT_TRUE(has_counter("transport.bytes_rx"));
  EXPECT_TRUE(has_counter("fault.breaker.trips"));
  EXPECT_TRUE(has_counter("gateway.converted"));
  EXPECT_TRUE(has_counter("http.server.requests"));

  bool has_hist = false;
  for (const auto& row : snap.histograms) {
    if (row.name == "pbio.plan_cache.compile_ns") has_hist = true;
  }
  EXPECT_TRUE(has_hist);
}

// --- Span tracing -----------------------------------------------------------

TEST(ObsTrace, ScopedSpanRecordsAndClearsThreadTraceId) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  ASSERT_EQ(obs::current_trace_id(), 0u);
  std::uint64_t id = 0;
  {
    obs::ScopedSpan span(obs::Phase::kDiscover, "unit-test-locator");
    ASSERT_TRUE(span.active());
    id = obs::current_trace_id();
    EXPECT_NE(id, 0u);  // root span installed a fresh trace id
    EXPECT_EQ(span.trace_id(), id);
  }
  EXPECT_EQ(obs::current_trace_id(), 0u);  // cleared on exit

  std::vector<obs::Span> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, id);
  EXPECT_EQ(spans[0].phase, obs::Phase::kDiscover);
  EXPECT_STREQ(spans[0].name, "unit-test-locator");
  EXPECT_TRUE(spans[0].ok);
}

TEST(ObsTrace, NestedSpansShareTheRootTraceId) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  {
    obs::ScopedSpan outer(obs::Phase::kDiscover, "outer");
    obs::ScopedSpan inner(obs::Phase::kBind, "inner");
    EXPECT_EQ(inner.trace_id(), outer.trace_id());
  }
  std::vector<obs::Span> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].trace_id, spans[1].trace_id);
}

TEST(ObsTrace, ExceptionUnwindMarksSpanNotOk) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  try {
    obs::ScopedSpan span(obs::Phase::kBind, "will-throw");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  std::vector<obs::Span> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_FALSE(spans[0].ok);
}

TEST(ObsTrace, LongNamesAreTruncatedNotOverrun) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  std::string long_name(100, 'x');
  { obs::ScopedSpan span(obs::Phase::kMarshal, long_name); }
  std::vector<obs::Span> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(std::string(spans[0].name), std::string(sizeof(obs::Span{}.name) - 1, 'x'));
}

TEST(ObsTrace, SampleEveryRoundsUpToPowerOfTwo) {
  auto& tracer = obs::Tracer::instance();
  tracer.set_sample_every(1);
  EXPECT_EQ(tracer.sample_every(), 1u);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(tracer.sample());
  tracer.set_sample_every(3);
  EXPECT_EQ(tracer.sample_every(), 4u);
  int sampled = 0;
  for (int i = 0; i < 400; ++i) sampled += tracer.sample() ? 1 : 0;
  EXPECT_EQ(sampled, 100);  // exactly 1 in 4, single-threaded
  tracer.set_sample_every(64);
}

TEST(ObsTrace, RingOverwritesOldestAndCountsDrops) {
  auto& tracer = obs::Tracer::instance();
  tracer.set_capacity(4);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    obs::Span s{};
    s.trace_id = i;
    tracer.record(s);
  }
  std::vector<obs::Span> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest first, and the two oldest were overwritten.
  EXPECT_EQ(spans.front().trace_id, 3u);
  EXPECT_EQ(spans.back().trace_id, 6u);
  tracer.set_capacity(4096);
}

TEST(ObsTrace, JsonlExportIsOneObjectPerSpan) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  { obs::ScopedSpan span(obs::Phase::kUnmarshal, "jsonl\"test"); }
  std::ostringstream out;
  tracer.export_jsonl(out);
  std::string line = out.str();
  EXPECT_NE(line.find("\"phase\":\"unmarshal\""), std::string::npos);
  EXPECT_NE(line.find("jsonl\\\"test"), std::string::npos);  // quote escaped
  EXPECT_EQ(line.find('\n'), line.size() - 1);  // exactly one line
}

// --- Trace-id propagation over a loopback NdrConnection ---------------------

TEST(ObsTracePropagation, TraceIdTravelsAcrossNdrConnection) {
  pbio::FormatRegistry sender_reg, receiver_reg;
  core::Xml2Wire x2w(sender_reg, arch::native());
  auto format = x2w.register_text(kSchema)[0];

  pbio::DynamicRecord rec(format);
  rec.set_string("tag", "traced");
  rec.set_float_array("values", std::vector<double>(4, 1.5));
  Buffer wire = rec.encode();

  transport::TcpListener listener(0);
  std::uint64_t receiver_saw = 0;
  std::size_t messages = 0;
  std::thread receiver([&] {
    transport::NdrConnection conn(listener.accept(), receiver_reg);
    while (conn.receive()) {
      ++messages;
      if (receiver_saw == 0) receiver_saw = obs::current_trace_id();
    }
    obs::set_current_trace_id(0);
  });

  std::uint64_t id = obs::new_trace_id();
  {
    transport::NdrConnection conn(transport::tcp_connect(listener.port()),
                                  sender_reg);
    obs::set_current_trace_id(id);
    conn.send(*format, wire);       // 'T' frame: trace id rides in-band
    obs::set_current_trace_id(0);
    conn.send(*format, wire);       // plain 'M' frame: no trace active
  }
  receiver.join();

  EXPECT_EQ(messages, 2u);
  EXPECT_EQ(receiver_saw, id);  // receiver's thread adopted the sender's id
}

// --- Exposition -------------------------------------------------------------

TEST(ObsExposition, PrometheusNameMangling) {
  EXPECT_EQ(obs::prometheus_name("pbio.plan_cache.hits"),
            "omf_pbio_plan_cache_hits");
  EXPECT_EQ(obs::prometheus_name("transport.bytes_rx"),
            "omf_transport_bytes_rx");
}

// Line-level validation of the Prometheus text exposition format: every
// line is either a "# TYPE <name> <kind>" comment or "<name>[{labels}]
// <number>", names match [a-zA-Z_][a-zA-Z0-9_]*.
void validate_prometheus_text(const std::string& body) {
  std::istringstream in(body);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      continue;
    }
    std::size_t i = 0;
    ASSERT_TRUE(std::isalpha(static_cast<unsigned char>(line[0])) ||
                line[0] == '_')
        << line;
    while (i < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[i])) ||
            line[i] == '_')) {
      ++i;
    }
    if (i < line.size() && line[i] == '{') {  // label set, e.g. {le="255"}
      std::size_t close = line.find('}', i);
      ASSERT_NE(close, std::string::npos) << line;
      i = close + 1;
    }
    ASSERT_LT(i, line.size()) << line;
    ASSERT_EQ(line[i], ' ') << line;
    // The remainder must parse as a number.
    std::size_t pos = 0;
    const std::string value = line.substr(i + 1);
    if (value == "+Inf") continue;
    (void)std::stod(value, &pos);
    EXPECT_EQ(pos, value.size()) << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);
}

TEST(ObsExposition, MetricsEndpointServesValidPrometheusFromLiveProcess) {
  // Drive real traffic through the pipeline first: discovery-compiled
  // formats, a gateway converting a foreign message, decode/encode — then
  // scrape the /metrics endpoint a live server exposes and check the text
  // is valid and covers the plan-cache, discovery, transport, and fault
  // families.
  pbio::FormatRegistry registry;
  core::Xml2Wire native_side(registry, arch::native());
  auto native = native_side.register_text(kSchema)[0];
  core::Xml2Wire foreign_side(registry, arch::profile_by_name("sparc64"));
  auto foreign = foreign_side.register_text(kSchema)[0];

  pbio::DynamicRecord rec(native);
  rec.set_string("tag", "live");
  rec.set_float_array("values", std::vector<double>(8, 2.5));
  Buffer foreign_wire = pbio::synthesize_wire(*foreign, rec);

  core::Gateway gateway(registry, native, native);
  Buffer converted = gateway.convert(foreign_wire.span());  // foreign -> native
  Buffer passed = gateway.convert(converted.span());        // already native
  EXPECT_EQ(gateway.converted(), 1u);
  EXPECT_EQ(gateway.passed_through(), 1u);
  // Per-message decode counters batch in thread-local storage and fold into
  // the registry every 64 messages; push enough traffic that the scrape
  // below observes a flushed, nonzero value.
  for (int i = 0; i < 64; ++i) gateway.convert(foreign_wire.span());

  http::Server server;
  http::Response resp = http::get(server.url_for("/metrics"),
                                  Deadline::from_timeout(std::chrono::seconds(5)));
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.headers.at("content-type").find("version=0.0.4"),
            std::string::npos);
  validate_prometheus_text(resp.body);

  auto sample_value = [&](const std::string& name) -> double {
    std::istringstream in(resp.body);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind(name + " ", 0) == 0) {
        return std::stod(line.substr(name.size() + 1));
      }
    }
    return -1.0;
  };
  // Live values from the traffic above, one per required family.
  EXPECT_GE(sample_value("omf_pbio_plan_cache_compiles"), 1.0);
  EXPECT_GE(sample_value("omf_pbio_decode_messages"), 1.0);
  EXPECT_GE(sample_value("omf_gateway_converted"), 1.0);
  EXPECT_GE(sample_value("omf_http_server_requests"), 1.0);
  // Present even when zero: discovery, transport, fault families.
  EXPECT_GE(sample_value("omf_discovery_requests"), 0.0);
  EXPECT_GE(sample_value("omf_transport_bytes_rx"), 0.0);
  EXPECT_GE(sample_value("omf_fault_breaker_trips"), 0.0);
  EXPECT_GE(sample_value("omf_fault_retry_retries"), 0.0);
}

TEST(ObsExposition, MetricsEndpointCanBeDisabled) {
  http::Server server;
  server.set_metrics_endpoint(false);
  http::Response resp = http::get(server.url_for("/metrics"),
                                  Deadline::from_timeout(std::chrono::seconds(5)));
  EXPECT_EQ(resp.status, 404);
}

TEST(ObsExposition, UserHandlerTakesPrecedenceOverMetrics) {
  http::Server server;
  server.set_handler([](const std::string& path) -> std::optional<std::string> {
    if (path == "/metrics") return std::string("mine");
    return std::nullopt;
  });
  http::Response resp = http::get(server.url_for("/metrics"),
                                  Deadline::from_timeout(std::chrono::seconds(5)));
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "mine");
}

TEST(ObsExposition, GatewayStatsSnapshotAggregates) {
  pbio::FormatRegistry registry;
  core::Xml2Wire native_side(registry, arch::native());
  auto native = native_side.register_text(kSchema)[0];
  core::Xml2Wire foreign_side(registry, arch::profile_by_name("sparc64"));
  auto foreign = foreign_side.register_text(kSchema)[0];

  pbio::DynamicRecord rec(native);
  rec.set_string("tag", "snap");
  rec.set_float_array("values", std::vector<double>(2, 0.25));
  Buffer foreign_wire = pbio::synthesize_wire(*foreign, rec);

  core::Gateway gateway(registry, native, native);
  gateway.convert(foreign_wire.span());
  Buffer native_wire = rec.encode();
  gateway.convert(native_wire.span());

  core::Gateway::StatsSnapshot snap = gateway.stats_snapshot();
  EXPECT_EQ(snap.converted, 1u);
  EXPECT_EQ(snap.passed_through, 1u);
  EXPECT_EQ(snap.cached_plans, 1u);  // one foreign->native plan compiled
  EXPECT_EQ(snap.plans.compiles, 1u);
  EXPECT_EQ(snap.plans.misses, 1u);
}

// --- Logging satellite ------------------------------------------------------

TEST(ObsLogging, KvFieldsAndPostMortemRing) {
  clear_recent_log_errors();
  LogLevel prev = log_level();
  set_log_level(LogLevel::kOff);  // print nothing...
  OMF_LOG_WARN("obs-test", "fetch failed", kv("locator", "http://x/y"),
               kv("status", 503));
  OMF_LOG_INFO("obs-test", "info is not captured", kv("n", 1));
  set_log_level(prev);

  std::vector<std::string> captured = recent_log_errors();
  ASSERT_EQ(captured.size(), 1u);  // ...but warn+ is still captured
  EXPECT_NE(captured[0].find("[warn] obs-test: fetch failed"),
            std::string::npos);
  EXPECT_NE(captured[0].find("locator=http://x/y"), std::string::npos);
  EXPECT_NE(captured[0].find("status=503"), std::string::npos);

  clear_recent_log_errors();
  EXPECT_TRUE(recent_log_errors().empty());
}

TEST(ObsLogging, RingReachesStatsSnapshot) {
  clear_recent_log_errors();
  LogLevel prev = log_level();
  set_log_level(LogLevel::kOff);
  OMF_LOG_ERROR("obs-test", "snapshot sees this");
  set_log_level(prev);
  obs::StatsSnapshot snap = obs::stats_snapshot();
  ASSERT_FALSE(snap.recent_errors.empty());
  EXPECT_NE(snap.recent_errors.back().find("snapshot sees this"),
            std::string::npos);
  clear_recent_log_errors();
}

// --- Zero-allocation steady state with metrics ON ---------------------------

TEST(ObsZeroAlloc, SteadyStateDecodeWithMetricsAndTracingEnabled) {
  // The seed repo's guarantee (test_arena.cpp) must survive observability:
  // counters are relaxed adds, histograms are fixed arrays, spans are POD
  // ring writes — even tracing EVERY message must not touch the heap once
  // warm.
  obs::Tracer::instance().set_sample_every(1);
  pbio::FormatRegistry registry;
  core::Xml2Wire native_side(registry, arch::native());
  auto native = native_side.register_text(kSchema)[0];
  core::Xml2Wire foreign_side(registry, arch::profile_by_name("sparc64"));
  auto foreign = foreign_side.register_text(kSchema)[0];

  pbio::DynamicRecord rec(native);
  rec.set_string("tag", "steady.state.obs");
  rec.set_float_array("values", std::vector<double>(64, 0.5));
  Buffer wire = pbio::synthesize_wire(*foreign, rec);

  pbio::Decoder dec(registry);
  std::vector<std::uint8_t> out(native->struct_size());
  pbio::DecodeArena arena;
  dec.decode(wire.span(), *native, out.data(), arena);  // warm: plan + arena
  arena.reset();
  dec.decode(wire.span(), *native, out.data(), arena);

  AllocationCounter counter;
  for (int i = 0; i < 100; ++i) {
    arena.reset();
    dec.decode(wire.span(), *native, out.data(), arena);
  }
  EXPECT_EQ(counter.count(), 0u)
      << "instrumented steady-state decode touched the heap "
      << counter.count() << " times";
  obs::Tracer::instance().set_sample_every(64);
}

}  // namespace
}  // namespace omf
