// The observability layer: metric primitives (exact concurrent counters,
// log2 histogram buckets), the span tracer (ring semantics, trace-id
// propagation across a loopback NdrConnection), Prometheus exposition from
// a live process, the post-mortem log ring, and the zero-allocation
// guarantee for steady-state decode *with metrics and tracing enabled*.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <new>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/gateway.hpp"
#include "core/xml2wire.hpp"
#include "http/http.hpp"
#include "metacache/replica_set.hpp"
#include "obs/attribution.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "transport/format_service.hpp"
#include "pbio/decode.hpp"
#include "pbio/record.hpp"
#include "pbio/synth.hpp"
#include "transport/ndr_connection.hpp"
#include "transport/tcp.hpp"
#include "util/logging.hpp"

namespace {

// --- Allocation-counting hook (same pattern as test_arena.cpp) -------------

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t n) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

struct AllocationCounter {
  AllocationCounter() {
    g_allocations.store(0);
    g_counting.store(true);
  }
  ~AllocationCounter() { g_counting.store(false); }
  std::size_t count() const { return g_allocations.load(); }
};

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace omf {
namespace {

const char* kSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Sample">
    <xsd:element name="tag" type="xsd:string" />
    <xsd:element name="count" type="xsd:int" />
    <xsd:element name="values" type="xsd:double" maxOccurs="count" />
  </xsd:complexType>
</xsd:schema>
)";

// --- Metric primitives ------------------------------------------------------

TEST(ObsCounter, ConcurrentAddsAreExact) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr int kAdds = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  // Relaxed RMWs never lose updates; once quiescent the shard sum is exact.
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(ObsCounter, AddWithIncrementAndReset) {
  obs::Counter c;
  c.add(40);
  c.add(2);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, SetAddSub) {
  obs::Gauge g;
  g.set(10);
  g.add(5);
  g.sub(7);
  EXPECT_EQ(g.value(), 8);
  g.sub(20);
  EXPECT_EQ(g.value(), -12);  // gauges go negative; counters never do
}

TEST(ObsHistogram, BucketBoundaries) {
  obs::Histogram h;
  h.record(0);  // bit_width(0) == 0 -> bucket 0 (le 0)
  h.record(1);  // bucket 1 (le 1)
  h.record(2);  // bucket 2 (le 3)
  h.record(3);  // bucket 2 (le 3)
  h.record(4);  // bucket 3 (le 7)
  h.record(std::uint64_t{1} << 45);  // wider than every bucket -> last

  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(obs::Histogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + (std::uint64_t{1} << 45));

  // The `le` bound each bucket advertises is inclusive of everything the
  // bucket counted: bucket k holds values of bit width k, max 2^k - 1.
  EXPECT_EQ(obs::Histogram::le(0), 0u);
  EXPECT_EQ(obs::Histogram::le(1), 1u);
  EXPECT_EQ(obs::Histogram::le(2), 3u);
  EXPECT_EQ(obs::Histogram::le(10), 1023u);
}

// --- Registry ---------------------------------------------------------------

TEST(ObsRegistry, StableReferencesAndKindCollision) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& a = reg.counter("test.obs.stable");
  obs::Counter& b = reg.counter("test.obs.stable");
  EXPECT_EQ(&a, &b);  // one address per name, for the process lifetime
  // A name denotes exactly one metric kind.
  EXPECT_THROW(reg.gauge("test.obs.stable"), std::logic_error);
  EXPECT_THROW(reg.histogram("test.obs.stable"), std::logic_error);
}

TEST(ObsRegistry, SnapshotPreRegistersCoreNames) {
  // The full core instrumentation surface is visible (zero-valued or not)
  // before any traffic flows — scrape targets never see a partial schema,
  // and every name docs/METRICS.md documents resolves to a live series.
  obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
  std::set<std::string> counters, gauges, histograms;
  for (const auto& row : snap.counters) counters.insert(row.name);
  for (const auto& row : snap.gauges) gauges.insert(row.name);
  for (const auto& row : snap.histograms) histograms.insert(row.name);
  for (const obs::MetricInfo& m : obs::core_metrics()) {
    const std::set<std::string>& family =
        std::string_view(m.kind) == "counter" ? counters
        : std::string_view(m.kind) == "gauge" ? gauges
                                              : histograms;
    EXPECT_TRUE(family.count(m.name))
        << m.kind << " '" << m.name << "' is documented but absent from a "
        << "startup snapshot — pre-register it in the registry constructor";
  }
}

TEST(MetricsDoc, InSyncWithRegistryTable) {
  std::ifstream in(OMF_METRICS_MD, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << OMF_METRICS_MD
      << " missing — regenerate with: omf-stat --metrics-md > docs/METRICS.md";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), obs::metrics_markdown())
      << "docs/METRICS.md is stale — regenerate with: "
         "omf-stat --metrics-md > docs/METRICS.md";
}

// --- Span tracing -----------------------------------------------------------

TEST(ObsTrace, ScopedSpanRecordsAndClearsThreadTraceId) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  ASSERT_EQ(obs::current_trace_id(), 0u);
  std::uint64_t id = 0;
  {
    obs::ScopedSpan span(obs::Phase::kDiscover, "unit-test-locator");
    ASSERT_TRUE(span.active());
    id = obs::current_trace_id();
    EXPECT_NE(id, 0u);  // root span installed a fresh trace id
    EXPECT_EQ(span.trace_id(), id);
  }
  EXPECT_EQ(obs::current_trace_id(), 0u);  // cleared on exit

  std::vector<obs::Span> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, id);
  EXPECT_EQ(spans[0].phase, obs::Phase::kDiscover);
  EXPECT_STREQ(spans[0].name, "unit-test-locator");
  EXPECT_TRUE(spans[0].ok);
}

TEST(ObsTrace, NestedSpansShareTheRootTraceId) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  {
    obs::ScopedSpan outer(obs::Phase::kDiscover, "outer");
    obs::ScopedSpan inner(obs::Phase::kBind, "inner");
    EXPECT_EQ(inner.trace_id(), outer.trace_id());
  }
  std::vector<obs::Span> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].trace_id, spans[1].trace_id);
}

TEST(ObsTrace, ExceptionUnwindMarksSpanNotOk) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  try {
    obs::ScopedSpan span(obs::Phase::kBind, "will-throw");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  std::vector<obs::Span> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_FALSE(spans[0].ok);
}

TEST(ObsTrace, LongNamesAreTruncatedNotOverrun) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  std::string long_name(100, 'x');
  { obs::ScopedSpan span(obs::Phase::kMarshal, long_name); }
  std::vector<obs::Span> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(std::string(spans[0].name), std::string(sizeof(obs::Span{}.name) - 1, 'x'));
}

TEST(ObsTrace, SampleEveryRoundsUpToPowerOfTwo) {
  auto& tracer = obs::Tracer::instance();
  tracer.set_sample_every(1);
  EXPECT_EQ(tracer.sample_every(), 1u);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(tracer.sample());
  tracer.set_sample_every(3);
  EXPECT_EQ(tracer.sample_every(), 4u);
  int sampled = 0;
  for (int i = 0; i < 400; ++i) sampled += tracer.sample() ? 1 : 0;
  EXPECT_EQ(sampled, 100);  // exactly 1 in 4, single-threaded
  tracer.set_sample_every(64);
}

TEST(ObsTrace, RingOverwritesOldestAndCountsDrops) {
  auto& tracer = obs::Tracer::instance();
  tracer.set_capacity(4);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    obs::Span s{};
    s.trace_id = i;
    s.ok = true;  // boring spans: no tail-sampling pin, pure FIFO eviction
    tracer.record(s);
  }
  std::vector<obs::Span> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest first, and the two oldest were overwritten.
  EXPECT_EQ(spans.front().trace_id, 3u);
  EXPECT_EQ(spans.back().trace_id, 6u);
  tracer.set_capacity(4096);
}

TEST(ObsTrace, JsonlExportIsOneObjectPerSpan) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  { obs::ScopedSpan span(obs::Phase::kUnmarshal, "jsonl\"test"); }
  std::ostringstream out;
  tracer.export_jsonl(out);
  std::string line = out.str();
  EXPECT_NE(line.find("\"phase\":\"unmarshal\""), std::string::npos);
  EXPECT_NE(line.find("jsonl\\\"test"), std::string::npos);  // quote escaped
  EXPECT_EQ(line.find('\n'), line.size() - 1);  // exactly one line
}

// --- Trace-id propagation over a loopback NdrConnection ---------------------

TEST(ObsTracePropagation, TraceIdTravelsAcrossNdrConnection) {
  pbio::FormatRegistry sender_reg, receiver_reg;
  core::Xml2Wire x2w(sender_reg, arch::native());
  auto format = x2w.register_text(kSchema)[0];

  pbio::DynamicRecord rec(format);
  rec.set_string("tag", "traced");
  rec.set_float_array("values", std::vector<double>(4, 1.5));
  Buffer wire = rec.encode();

  transport::TcpListener listener(0);
  std::uint64_t receiver_saw = 0;
  std::size_t messages = 0;
  std::thread receiver([&] {
    transport::NdrConnection conn(listener.accept(), receiver_reg);
    while (conn.receive()) {
      ++messages;
      if (receiver_saw == 0) receiver_saw = obs::current_trace_id();
    }
    obs::set_current_trace_id(0);
  });

  std::uint64_t id = obs::new_trace_id();
  {
    transport::NdrConnection conn(transport::tcp_connect(listener.port()),
                                  sender_reg);
    obs::set_current_trace_id(id);
    conn.send(*format, wire);       // 'T' frame: trace id rides in-band
    obs::set_current_trace_id(0);
    conn.send(*format, wire);       // plain 'M' frame: no trace active
  }
  receiver.join();

  EXPECT_EQ(messages, 2u);
  EXPECT_EQ(receiver_saw, id);  // receiver's thread adopted the sender's id
}

// --- Exposition -------------------------------------------------------------

TEST(ObsExposition, PrometheusNameMangling) {
  EXPECT_EQ(obs::prometheus_name("pbio.plan_cache.hits"),
            "omf_pbio_plan_cache_hits");
  EXPECT_EQ(obs::prometheus_name("transport.bytes_rx"),
            "omf_transport_bytes_rx");
}

// Line-level validation of the Prometheus text exposition format: every
// line is a "# HELP <name> <text>" / "# TYPE <name> <kind>" comment or
// "<name>[{labels}] <number>", names match [a-zA-Z_][a-zA-Z0-9_]*.
void validate_prometheus_text(const std::string& body) {
  std::istringstream in(body);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# TYPE ", 0) == 0 ||
                  line.rfind("# HELP ", 0) == 0)
          << line;
      continue;
    }
    std::size_t i = 0;
    ASSERT_TRUE(std::isalpha(static_cast<unsigned char>(line[0])) ||
                line[0] == '_')
        << line;
    while (i < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[i])) ||
            line[i] == '_')) {
      ++i;
    }
    if (i < line.size() && line[i] == '{') {  // label set, e.g. {le="255"}
      std::size_t close = line.find('}', i);
      ASSERT_NE(close, std::string::npos) << line;
      i = close + 1;
    }
    ASSERT_LT(i, line.size()) << line;
    ASSERT_EQ(line[i], ' ') << line;
    // The remainder must parse as a number.
    std::size_t pos = 0;
    const std::string value = line.substr(i + 1);
    if (value == "+Inf") continue;
    (void)std::stod(value, &pos);
    EXPECT_EQ(pos, value.size()) << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);
}

TEST(ObsExposition, MetricsEndpointServesValidPrometheusFromLiveProcess) {
  // Drive real traffic through the pipeline first: discovery-compiled
  // formats, a gateway converting a foreign message, decode/encode — then
  // scrape the /metrics endpoint a live server exposes and check the text
  // is valid and covers the plan-cache, discovery, transport, and fault
  // families.
  pbio::FormatRegistry registry;
  core::Xml2Wire native_side(registry, arch::native());
  auto native = native_side.register_text(kSchema)[0];
  core::Xml2Wire foreign_side(registry, arch::profile_by_name("sparc64"));
  auto foreign = foreign_side.register_text(kSchema)[0];

  pbio::DynamicRecord rec(native);
  rec.set_string("tag", "live");
  rec.set_float_array("values", std::vector<double>(8, 2.5));
  Buffer foreign_wire = pbio::synthesize_wire(*foreign, rec);

  core::Gateway gateway(registry, native, native);
  Buffer converted = gateway.convert(foreign_wire.span());  // foreign -> native
  Buffer passed = gateway.convert(converted.span());        // already native
  EXPECT_EQ(gateway.converted(), 1u);
  EXPECT_EQ(gateway.passed_through(), 1u);
  // Per-message decode counters batch in thread-local storage and fold into
  // the registry every 64 messages; push enough traffic that the scrape
  // below observes a flushed, nonzero value.
  for (int i = 0; i < 64; ++i) gateway.convert(foreign_wire.span());

  http::Server server;
  http::Response resp = http::get(server.url_for("/metrics"),
                                  Deadline::from_timeout(std::chrono::seconds(5)));
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.headers.at("content-type").find("version=0.0.4"),
            std::string::npos);
  validate_prometheus_text(resp.body);

  auto sample_value = [&](const std::string& name) -> double {
    std::istringstream in(resp.body);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind(name + " ", 0) == 0) {
        return std::stod(line.substr(name.size() + 1));
      }
    }
    return -1.0;
  };
  // Live values from the traffic above, one per required family.
  EXPECT_GE(sample_value("omf_pbio_plan_cache_compiles"), 1.0);
  EXPECT_GE(sample_value("omf_pbio_decode_messages"), 1.0);
  EXPECT_GE(sample_value("omf_gateway_converted"), 1.0);
  EXPECT_GE(sample_value("omf_http_server_requests"), 1.0);
  // Present even when zero: discovery, transport, fault families.
  EXPECT_GE(sample_value("omf_discovery_requests"), 0.0);
  EXPECT_GE(sample_value("omf_transport_bytes_rx"), 0.0);
  EXPECT_GE(sample_value("omf_fault_breaker_trips"), 0.0);
  EXPECT_GE(sample_value("omf_fault_retry_retries"), 0.0);
}

TEST(ObsExposition, MetricsEndpointCanBeDisabled) {
  http::Server server;
  server.set_metrics_endpoint(false);
  http::Response resp = http::get(server.url_for("/metrics"),
                                  Deadline::from_timeout(std::chrono::seconds(5)));
  EXPECT_EQ(resp.status, 404);
}

TEST(ObsExposition, UserHandlerTakesPrecedenceOverMetrics) {
  http::Server server;
  server.set_handler([](const std::string& path) -> std::optional<std::string> {
    if (path == "/metrics") return std::string("mine");
    return std::nullopt;
  });
  http::Response resp = http::get(server.url_for("/metrics"),
                                  Deadline::from_timeout(std::chrono::seconds(5)));
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "mine");
}

TEST(ObsExposition, GatewayStatsSnapshotAggregates) {
  pbio::FormatRegistry registry;
  core::Xml2Wire native_side(registry, arch::native());
  auto native = native_side.register_text(kSchema)[0];
  core::Xml2Wire foreign_side(registry, arch::profile_by_name("sparc64"));
  auto foreign = foreign_side.register_text(kSchema)[0];

  pbio::DynamicRecord rec(native);
  rec.set_string("tag", "snap");
  rec.set_float_array("values", std::vector<double>(2, 0.25));
  Buffer foreign_wire = pbio::synthesize_wire(*foreign, rec);

  core::Gateway gateway(registry, native, native);
  gateway.convert(foreign_wire.span());
  Buffer native_wire = rec.encode();
  gateway.convert(native_wire.span());

  core::Gateway::StatsSnapshot snap = gateway.stats_snapshot();
  EXPECT_EQ(snap.converted, 1u);
  EXPECT_EQ(snap.passed_through, 1u);
  EXPECT_EQ(snap.cached_plans, 1u);  // one foreign->native plan compiled
  EXPECT_EQ(snap.plans.compiles, 1u);
  EXPECT_EQ(snap.plans.misses, 1u);
}

// --- Logging satellite ------------------------------------------------------

TEST(ObsLogging, KvFieldsAndPostMortemRing) {
  clear_recent_log_errors();
  LogLevel prev = log_level();
  set_log_level(LogLevel::kOff);  // print nothing...
  OMF_LOG_WARN("obs-test", "fetch failed", kv("locator", "http://x/y"),
               kv("status", 503));
  OMF_LOG_INFO("obs-test", "info is not captured", kv("n", 1));
  set_log_level(prev);

  std::vector<std::string> captured = recent_log_errors();
  ASSERT_EQ(captured.size(), 1u);  // ...but warn+ is still captured
  EXPECT_NE(captured[0].find("[warn] obs-test: fetch failed"),
            std::string::npos);
  EXPECT_NE(captured[0].find("locator=http://x/y"), std::string::npos);
  EXPECT_NE(captured[0].find("status=503"), std::string::npos);

  clear_recent_log_errors();
  EXPECT_TRUE(recent_log_errors().empty());
}

TEST(ObsLogging, RingReachesStatsSnapshot) {
  clear_recent_log_errors();
  LogLevel prev = log_level();
  set_log_level(LogLevel::kOff);
  OMF_LOG_ERROR("obs-test", "snapshot sees this");
  set_log_level(prev);
  obs::StatsSnapshot snap = obs::stats_snapshot();
  ASSERT_FALSE(snap.recent_errors.empty());
  EXPECT_NE(snap.recent_errors.back().find("snapshot sees this"),
            std::string::npos);
  clear_recent_log_errors();
}

// --- Tail sampling ----------------------------------------------------------

TEST(ObsTailSampling, ErroredAndSlowTracesSurviveEviction) {
  auto& tracer = obs::Tracer::instance();
  tracer.set_capacity(8);  // clears spans and pins

  obs::Span bad{};
  bad.trace_id = 0x99990001;
  bad.span_id = obs::new_trace_id();
  bad.ok = false;  // errored span: pins its trace
  tracer.record(bad);
  EXPECT_TRUE(tracer.trace_pinned(bad.trace_id));

  obs::Span slow{};
  slow.trace_id = 0x99990002;
  slow.span_id = obs::new_trace_id();
  slow.ok = true;
  slow.duration_ns = obs::Tracer::latency_threshold_ns();  // slow: pins
  tracer.record(slow);
  EXPECT_TRUE(tracer.trace_pinned(slow.trace_id));

  // Flood with several rings' worth of boring spans: FIFO alone would have
  // evicted the evidence many times over.
  for (int i = 0; i < 64; ++i) {
    obs::Span s{};
    s.trace_id = 0x1000 + static_cast<std::uint64_t>(i);
    s.span_id = obs::new_trace_id();
    s.ok = true;
    tracer.record(s);
  }

  bool bad_alive = false;
  bool slow_alive = false;
  for (const obs::Span& s : tracer.snapshot()) {
    if (s.trace_id == bad.trace_id) bad_alive = true;
    if (s.trace_id == slow.trace_id) slow_alive = true;
  }
  EXPECT_TRUE(bad_alive) << "errored trace was evicted by boring traffic";
  EXPECT_TRUE(slow_alive) << "slow trace was evicted by boring traffic";
  tracer.set_capacity(4096);
}

TEST(ObsTailSampling, MarkTraceRecordsEventSpanAndPins) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  const std::uint64_t trace = obs::new_trace_id();
  const std::uint64_t parent = obs::new_trace_id();
  obs::set_current_trace(trace, parent);
  tracer.mark_trace(obs::current_trace_id(), "stale_served");
  obs::set_current_trace_id(0);

  EXPECT_TRUE(tracer.trace_pinned(trace));
  bool found = false;
  for (const obs::Span& s : tracer.snapshot()) {
    if (s.trace_id != trace) continue;
    EXPECT_EQ(s.phase, obs::Phase::kEvent);
    EXPECT_STREQ(s.name, "stale_served");
    EXPECT_EQ(s.parent_id, parent);  // attached under the thread's span
    EXPECT_EQ(s.duration_ns, 0u);
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ObsTailSampling, TraceTreeExportGroupsSpansByTrace) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  std::uint64_t trace_a = 0;
  {
    obs::ScopedSpan root(obs::Phase::kDiscover, "tree.root");
    trace_a = root.trace_id();
    obs::ScopedSpan child(obs::Phase::kBind, "tree.child");
  }
  const std::uint64_t trace_b = obs::new_trace_id();
  tracer.mark_trace(trace_b, "breaker.tripped");

  std::ostringstream out;
  tracer.export_trace_trees(out);
  std::vector<std::string> lines;
  {
    std::istringstream in(out.str());
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2u);  // one JSON object per trace

  char hex_a[17];
  char hex_b[17];
  std::snprintf(hex_a, sizeof(hex_a), "%016llx",
                static_cast<unsigned long long>(trace_a));
  std::snprintf(hex_b, sizeof(hex_b), "%016llx",
                static_cast<unsigned long long>(trace_b));
  // Ordered by earliest span: the ScopedSpan pair precedes the mark.
  EXPECT_NE(lines[0].find(hex_a), std::string::npos);
  EXPECT_NE(lines[0].find("tree.root"), std::string::npos);
  EXPECT_NE(lines[0].find("tree.child"), std::string::npos);
  EXPECT_NE(lines[1].find(hex_b), std::string::npos);
  EXPECT_NE(lines[1].find("breaker.tripped"), std::string::npos);
  EXPECT_NE(lines[1].find("\"pinned\":true"), std::string::npos);
}

// --- Trace propagation: format service, HTTP, replica failover --------------

TEST(ObsTracePropagation, ConditionalFetchCarriesTraceToServer) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  pbio::FormatRegistry reg;
  core::Xml2Wire x2w(reg, arch::native());
  auto format = x2w.register_text(kSchema)[0];

  transport::FormatServiceServer server;
  transport::FormatServiceClient client(server.port());
  client.push(*format);

  const std::uint64_t trace = obs::new_trace_id();
  obs::set_current_trace(trace, 0);
  auto fetched = client.conditional_fetch(format->id(), 0);
  obs::set_current_trace_id(0);
  EXPECT_EQ(fetched.status,
            transport::FormatServiceClient::ConditionalFetch::Status::kFetched);

  // The server thread records its serve span asynchronously.
  bool joined = false;
  std::uint64_t parent = 0;
  for (int i = 0; i < 200 && !joined; ++i) {
    for (const obs::Span& s : tracer.snapshot()) {
      if (s.trace_id == trace &&
          std::string_view(s.name) == "format_service.serve") {
        joined = true;
        parent = s.parent_id;
      }
    }
    if (!joined) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(joined) << "server serve span never joined the client's trace";
  EXPECT_NE(parent, 0u);  // parented under the client's cfetch span
}

TEST(ObsTracePropagation, HttpHeaderJoinsServerAndDebugTracesServes) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  http::Server server;
  server.set_handler([](const std::string& path) -> std::optional<std::string> {
    if (path != "/work") return std::nullopt;
    obs::ScopedSpan span(obs::Phase::kDiscover, "http.handler");
    return std::string("done");
  });

  std::uint64_t trace = 0;
  http::Response resp;
  {
    // The X-Omf-Trace header carries (trace id, the client span's id), so
    // the handler's span becomes this request span's child.
    obs::ScopedSpan request(obs::Phase::kDiscover, "http.client");
    trace = request.trace_id();
    resp = http::get(server.url_for("/work"),
                     Deadline::from_timeout(std::chrono::seconds(5)));
  }
  ASSERT_EQ(resp.status, 200);

  bool joined = false;
  for (const obs::Span& s : tracer.snapshot()) {
    if (s.trace_id == trace && std::string_view(s.name) == "http.handler") {
      joined = true;
      EXPECT_NE(s.parent_id, 0u);  // child of the client's request context
    }
  }
  EXPECT_TRUE(joined) << "handler span did not join the X-Omf-Trace trace";

  // The retained ring is browsable as JSONL trace trees.
  http::Response traces =
      http::get(server.url_for("/debug/traces"),
                Deadline::from_timeout(std::chrono::seconds(5)));
  ASSERT_EQ(traces.status, 200);
  EXPECT_NE(traces.headers.at("content-type").find("ndjson"),
            std::string::npos);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(trace));
  EXPECT_NE(traces.body.find(hex), std::string::npos);

  server.set_traces_endpoint(false);
  EXPECT_EQ(http::get(server.url_for("/debug/traces"),
                      Deadline::from_timeout(std::chrono::seconds(5)))
                .status,
            404);
}

TEST(ObsTracePropagation, ReplicaFailoverMarksTheCallersTrace) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  metacache::ReplicaSet set({"dead", "live"});
  // Find a key whose first choice is the dead replica.
  std::uint64_t key = 0;
  while (set.endpoint(set.route(key)[0]) != "dead") ++key;

  const std::uint64_t trace = obs::new_trace_id();
  obs::set_current_trace(trace, 0);
  metacache::FetchResult got = set.fetch(
      key, [&](std::size_t, const std::string& endpoint) {
        metacache::FetchResult out;
        if (endpoint == "dead") return out;  // replica 0 is down
        out.status = metacache::FetchStatus::kFetched;
        return out;
      });
  obs::set_current_trace_id(0);

  EXPECT_EQ(got.status, metacache::FetchStatus::kFetched);
  EXPECT_TRUE(tracer.trace_pinned(trace));  // tail sampling keeps evidence
  bool event = false;
  for (const obs::Span& s : tracer.snapshot()) {
    if (s.trace_id == trace &&
        std::string_view(s.name) == "replica.failover") {
      EXPECT_EQ(s.phase, obs::Phase::kEvent);
      event = true;
    }
  }
  EXPECT_TRUE(event) << "failover event span missing from the trace";
}

// --- End-to-end chaos trace tree --------------------------------------------

TEST(ObsChaos, RetainedTreeSpansSenderGatewaySubscriberWithIncident) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.set_sample_every(1);

  pbio::FormatRegistry registry;
  core::Xml2Wire native_side(registry, arch::native());
  auto native = native_side.register_text(kSchema)[0];
  core::Xml2Wire foreign_side(registry, arch::profile_by_name("sparc64"));
  auto foreign = foreign_side.register_text(kSchema)[0];

  pbio::DynamicRecord rec(native);
  rec.set_string("tag", "chaos");
  rec.set_float_array("values", std::vector<double>(4, 3.5));
  Buffer foreign_wire = pbio::synthesize_wire(*foreign, rec);

  transport::TcpListener to_gateway(0);
  transport::TcpListener to_subscriber(0);

  // Subscriber: adopt the propagated trace, decode (unmarshal span).
  std::thread subscriber([&] {
    transport::NdrConnection conn(to_subscriber.accept(), registry);
    pbio::Decoder dec(registry);
    std::vector<std::uint8_t> out(native->struct_size());
    pbio::DecodeArena arena;
    while (auto msg = conn.receive()) {
      dec.decode(msg->span(), *native, out.data(), arena);
      arena.reset();
    }
    obs::set_current_trace_id(0);
  });

  // Gateway: adopt the trace, convert, hit a replica failover mid-flight,
  // and forward — the incident event attaches to the in-flight trace.
  std::thread gateway_thread([&] {
    transport::NdrConnection in(to_gateway.accept(), registry);
    transport::NdrConnection out(transport::tcp_connect(to_subscriber.port()),
                                 registry);
    core::Gateway gateway(registry, native, native);
    gateway.set_peer("chaos-sender");
    metacache::ReplicaSet replicas({"replica-0", "replica-1"});
    std::uint64_t key = 0;
    while (replicas.endpoint(replicas.route(key)[0]) != "replica-0") ++key;
    while (auto msg = in.receive()) {
      Buffer converted = gateway.convert(msg->span());
      (void)replicas.fetch(key, [](std::size_t, const std::string& ep) {
        metacache::FetchResult r;
        if (ep == "replica-0") return r;  // first choice is down
        r.status = metacache::FetchStatus::kFetched;
        return r;
      });
      out.send(*native, converted);
    }
    obs::set_current_trace_id(0);
  });

  const std::uint64_t trace = obs::new_trace_id();
  obs::set_current_trace(trace, 0);
  {
    transport::NdrConnection conn(transport::tcp_connect(to_gateway.port()),
                                  registry);
    conn.send(*foreign, foreign_wire);
  }
  obs::set_current_trace_id(0);
  gateway_thread.join();
  subscriber.join();

  EXPECT_TRUE(tracer.trace_pinned(trace));
  std::ostringstream out;
  tracer.export_trace_trees(out);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(trace));
  std::string tree;
  {
    std::istringstream in(out.str());
    std::string line;
    while (std::getline(in, line)) {
      if (line.find(hex) != std::string::npos) tree = line;
    }
  }
  ASSERT_FALSE(tree.empty()) << "no exported tree for the chaos trace";
  EXPECT_NE(tree.find("\"pinned\":true"), std::string::npos);
  EXPECT_NE(tree.find("ndr.send"), std::string::npos);        // sender hop
  EXPECT_NE(tree.find("unmarshal"), std::string::npos);       // decode spans
  EXPECT_NE(tree.find("replica.failover"), std::string::npos);  // incident
  tracer.set_sample_every(64);
}

// --- Flight recorder --------------------------------------------------------

std::string flight_test_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          ("omf_obs_" + std::string(name) + "_" + std::to_string(::getpid()) +
           ".bin"))
      .string();
}

TEST(ObsFlightRecorder, AppendRecoverRoundtrip) {
  const std::string path = flight_test_path("roundtrip");
  {
    obs::FlightRecorder rec(path, 64 * 1024);
    const std::uint64_t s0 = rec.append("test", "first event");
    const std::uint64_t s1 = rec.append("breaker", "second event");
    EXPECT_EQ(s1, s0 + 1);
  }
  obs::FlightRecovery r = obs::FlightRecorder::recover(path);
  ASSERT_EQ(r.events.size(), 2u);
  EXPECT_EQ(r.events[0].category, "test");
  EXPECT_EQ(r.events[0].message, "first event");
  EXPECT_EQ(r.events[1].category, "breaker");
  EXPECT_EQ(r.events[1].message, "second event");
  EXPECT_EQ(r.gaps, 0u);
  EXPECT_GE(r.events[1].wall_ms, r.events[0].wall_ms);
  EXPECT_GE(r.events[1].mono_ns, r.events[0].mono_ns);
  std::filesystem::remove(path);
}

TEST(ObsFlightRecorder, TornTailIsDroppedAckedPrefixSurvives) {
  const std::string path = flight_test_path("torn");
  {
    obs::FlightRecorder rec(path, 64 * 1024);
    rec.append("test", "kept 0");
    rec.append("test", "kept 1");
    rec.append("test", "torn victim");
  }
  {
    // Simulate a write torn mid-record: clobber the newest record's trailing
    // CRC. (No wrap here — total stays far below capacity.)
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    std::uint64_t hdr_total = 0;
    f.seekg(24);  // header: u64 total bytes written
    f.read(reinterpret_cast<char*>(&hdr_total), sizeof(hdr_total));
    ASSERT_GT(hdr_total, 4u);
    f.seekp(static_cast<std::streamoff>(obs::FlightRecorder::kHeaderSize +
                                        hdr_total - 4));
    const char junk[4] = {0x5a, 0x5a, 0x5a, 0x5a};
    f.write(junk, sizeof(junk));
  }
  obs::FlightRecovery r = obs::FlightRecorder::recover(path);
  ASSERT_EQ(r.events.size(), 2u);  // torn tail gone, acked prefix intact
  EXPECT_EQ(r.events[0].message, "kept 0");
  EXPECT_EQ(r.events[1].message, "kept 1");
  std::filesystem::remove(path);
}

TEST(ObsFlightRecorder, WrapAroundKeepsTheNewestRecords) {
  const std::string path = flight_test_path("wrap");
  constexpr int kEvents = 600;  // ~60 KB through an 8 KB ring: wraps ~7x
  {
    obs::FlightRecorder rec(path, obs::FlightRecorder::kMinCapacity);
    const std::string pad(64, 'x');
    for (int i = 0; i < kEvents; ++i) {
      rec.append("wrap", "event " + std::to_string(i) + " " + pad);
    }
  }
  obs::FlightRecovery r = obs::FlightRecorder::recover(path);
  ASSERT_FALSE(r.events.empty());
  EXPECT_LT(r.events.size(), static_cast<std::size_t>(kEvents));
  EXPECT_EQ(r.events.back().seq, static_cast<std::uint64_t>(kEvents - 1));
  EXPECT_EQ(r.header_seq, static_cast<std::uint64_t>(kEvents));
  for (std::size_t i = 1; i < r.events.size(); ++i) {
    EXPECT_GT(r.events[i].seq, r.events[i - 1].seq);
  }
  std::filesystem::remove(path);
}

TEST(ObsFlightRecorder, InstalledRecorderCapturesWarnLogsAndEventSites) {
  const std::string path = flight_test_path("install");
  obs::FlightRecorder::install(path, 64 * 1024);
  LogLevel prev = log_level();
  set_log_level(LogLevel::kOff);  // the capture hook still sees warn+
  OMF_LOG_WARN("obs-test", "flight recorded warning", kv("k", 1));
  set_log_level(prev);
  obs::flight_record("admission", "[OMF503] queue full");
  obs::FlightRecorder::uninstall();

  obs::FlightRecovery r = obs::FlightRecorder::recover(path);
  bool saw_log = false;
  bool saw_admission = false;
  for (const obs::FlightEvent& e : r.events) {
    if (e.category == "log" &&
        e.message.find("flight recorded warning") != std::string::npos) {
      saw_log = true;
    }
    if (e.category == "admission" &&
        e.message.find("OMF503") != std::string::npos) {
      saw_admission = true;
    }
  }
  EXPECT_TRUE(saw_log) << "warn+ log line did not reach the flight recorder";
  EXPECT_TRUE(saw_admission);
  std::filesystem::remove(path);
}

// --- Kill -9 flight-recorder harness (driven by CI; skipped without env) ----

// CI runs ServeUntilKilled with OMF_FLIGHT_DIR set, scrapes the process's
// /metrics and /healthz mid-run, kill -9s it, then runs PostmortemAfterKill
// against the same directory: the flight-recorder file must parse and the
// last acknowledged event (acked.txt is written only after append()
// returned) must be among the recovered records.
TEST(ObsFlightHarness, ServeUntilKilled) {
  const char* dir_env = std::getenv("OMF_FLIGHT_DIR");
  if (dir_env == nullptr) {
    GTEST_SKIP() << "set OMF_FLIGHT_DIR to run the kill harness";
  }
  std::filesystem::path dir(dir_env);
  std::filesystem::create_directories(dir);
  obs::FlightRecorder::install((dir / "flight.bin").string(), 256 * 1024);

  // A live serving process for the mid-run scrape.
  http::Server server;
  {
    std::ofstream port(dir / "port.txt", std::ios::trunc);
    port << server.port() << "\n";
  }

  std::ofstream acked(dir / "acked.txt", std::ios::trunc);
  for (std::uint64_t i = 0;; ++i) {
    obs::flight_record("harness", "event " + std::to_string(i));
    acked << i << "\n" << std::flush;
    if (i % 64 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

TEST(ObsFlightHarness, PostmortemAfterKill) {
  const char* dir_env = std::getenv("OMF_FLIGHT_DIR");
  if (dir_env == nullptr) {
    GTEST_SKIP() << "set OMF_FLIGHT_DIR to run the kill harness";
  }
  std::filesystem::path dir(dir_env);
  std::ifstream acked(dir / "acked.txt");
  ASSERT_TRUE(acked.good()) << "no acked.txt: did ServeUntilKilled run?";
  std::string line;
  std::string last;
  while (std::getline(acked, line)) {
    if (!line.empty()) last = line;
  }
  ASSERT_FALSE(last.empty()) << "the harness was killed before any ack";

  obs::FlightRecovery r =
      obs::FlightRecorder::recover((dir / "flight.bin").string());
  ASSERT_FALSE(r.events.empty());
  const std::string want = "event " + last;
  bool found = false;
  for (const obs::FlightEvent& e : r.events) {
    if (e.message == want) found = true;
  }
  EXPECT_TRUE(found) << "acked record lost across kill -9: " << want;
  RecordProperty("recovered_events", static_cast<int>(r.events.size()));
}

// --- Per-{format, peer} attribution -----------------------------------------

TEST(ObsAttribution, ChargesAccumulatePerFormatPeer) {
  auto& attr = obs::Attribution::instance();
  attr.reset();
  attr.charge(7, "peer-a", {.messages = 2, .bytes = 100});
  attr.charge(7, "peer-a", {.decode_ns = 50, .stale_serves = 1});
  attr.charge(7, "peer-b", {.drops = 3});
  std::vector<obs::AttrRow> rows = attr.snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].format_id, 7u);
  EXPECT_EQ(rows[0].peer, "peer-a");
  EXPECT_EQ(rows[0].totals.messages, 2u);
  EXPECT_EQ(rows[0].totals.bytes, 100u);
  EXPECT_EQ(rows[0].totals.decode_ns, 50u);
  EXPECT_EQ(rows[0].totals.stale_serves, 1u);
  EXPECT_EQ(rows[1].peer, "peer-b");
  EXPECT_EQ(rows[1].totals.drops, 3u);
  attr.reset();
}

TEST(ObsAttribution, CardinalityBoundRoutesNewKeysToOverflow) {
  auto& attr = obs::Attribution::instance();
  attr.reset();
  attr.set_max_keys(2);
  attr.charge(1, "p", {.messages = 1});
  attr.charge(2, "p", {.messages = 1});
  attr.charge(3, "p", {.messages = 1});  // over the bound
  attr.charge(4, "p", {.messages = 1});  // over the bound
  attr.charge(1, "p", {.messages = 1});  // existing cells keep accumulating
  std::uint64_t overflow_msgs = 0;
  std::size_t real_cells = 0;
  for (const obs::AttrRow& row : attr.snapshot()) {
    if (row.peer == obs::Attribution::kOverflowPeer) {
      EXPECT_EQ(row.format_id, 0u);
      overflow_msgs += row.totals.messages;
    } else {
      ++real_cells;
    }
  }
  EXPECT_EQ(real_cells, 2u);     // a spraying peer cannot grow the family
  EXPECT_EQ(overflow_msgs, 2u);  // but its charges are still accounted
  attr.set_max_keys(1024);
  attr.reset();
}

TEST(ObsAttribution, LabeledPrometheusExpositionRoundtrips) {
  auto& attr = obs::Attribution::instance();
  attr.reset();
  attr.charge(0x1234, "10.0.0.7:9000", {.bytes = 77, .stale_serves = 3});
  const std::string text =
      obs::render_prometheus_attribution(attr.snapshot());
  EXPECT_NE(
      text.find("omf_attr_bytes_total{format=\"0000000000001234\","
                "peer=\"10.0.0.7:9000\"} 77"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("omf_attr_stale_serves_total{format=\"0000000000001234\","
                "peer=\"10.0.0.7:9000\"} 3"),
      std::string::npos);

  // The scrape side keeps the label block and resolves the family type.
  auto samples = obs::parse_prometheus(text);
  auto it = samples.find(
      "omf_attr_bytes_total{format=\"0000000000001234\","
      "peer=\"10.0.0.7:9000\"}");
  ASSERT_NE(it, samples.end());
  EXPECT_EQ(it->second.type, "counter");
  EXPECT_EQ(it->second.value, 77.0);
  attr.reset();
}

// --- Scrape side: parse + per-second deltas (omf-stat --watch) --------------

TEST(ObsWatch, ParsePrometheusTypesAndHistogramComponents) {
  const std::string text =
      "# HELP omf_a total things\n"
      "# TYPE omf_a counter\n"
      "omf_a 5\n"
      "# TYPE omf_g gauge\n"
      "omf_g -2\n"
      "# TYPE omf_lat histogram\n"
      "omf_lat_bucket{le=\"1000\"} 2\n"
      "omf_lat_bucket{le=\"+Inf\"} 3\n"
      "omf_lat_sum 4500\n"
      "omf_lat_count 3\n";
  auto samples = obs::parse_prometheus(text);
  EXPECT_EQ(samples.at("omf_a").type, "counter");
  EXPECT_EQ(samples.at("omf_a").value, 5.0);
  EXPECT_EQ(samples.at("omf_g").type, "gauge");
  EXPECT_EQ(samples.at("omf_g").value, -2.0);
  EXPECT_EQ(samples.at("omf_lat_bucket{le=\"+Inf\"}").type, "histogram");
  EXPECT_EQ(samples.at("omf_lat_sum").type, "histogram");
  EXPECT_EQ(samples.at("omf_lat_count").value, 3.0);
}

TEST(ObsWatch, CounterDeltasRenderRatesAndResetMarkers) {
  std::map<std::string, obs::PromSample> prev;
  std::map<std::string, obs::PromSample> cur;
  prev["omf_busy"] = {.value = 10, .type = "counter"};
  cur["omf_busy"] = {.value = 30, .type = "counter"};
  prev["omf_idle"] = {.value = 5, .type = "counter"};
  cur["omf_idle"] = {.value = 5, .type = "counter"};  // no movement: omitted
  prev["omf_depth"] = {.value = 1, .type = "gauge"};
  cur["omf_depth"] = {.value = 99, .type = "gauge"};  // gauges: omitted
  prev["omf_restarted"] = {.value = 50, .type = "counter"};
  cur["omf_restarted"] = {.value = 2, .type = "counter"};  // went backwards

  const std::string out = obs::render_counter_deltas(prev, cur, 2.0);
  EXPECT_NE(out.find("omf_busy  +10.0/s"), std::string::npos) << out;
  EXPECT_EQ(out.find("omf_idle"), std::string::npos);
  EXPECT_EQ(out.find("omf_depth"), std::string::npos);
  EXPECT_NE(out.find("omf_restarted  RESET"), std::string::npos);

  const std::string quiet = obs::render_counter_deltas(cur, cur, 1.0);
  EXPECT_NE(quiet.find("(no counter movement)"), std::string::npos);
}

// --- Zero-allocation steady state with metrics ON ---------------------------

TEST(ObsZeroAlloc, SteadyStateDecodeWithMetricsAndTracingEnabled) {
  // The seed repo's guarantee (test_arena.cpp) must survive observability:
  // counters are relaxed adds, histograms are fixed arrays, spans are POD
  // ring writes — even tracing EVERY message must not touch the heap once
  // warm.
  obs::Tracer::instance().set_sample_every(1);
  pbio::FormatRegistry registry;
  core::Xml2Wire native_side(registry, arch::native());
  auto native = native_side.register_text(kSchema)[0];
  core::Xml2Wire foreign_side(registry, arch::profile_by_name("sparc64"));
  auto foreign = foreign_side.register_text(kSchema)[0];

  pbio::DynamicRecord rec(native);
  rec.set_string("tag", "steady.state.obs");
  rec.set_float_array("values", std::vector<double>(64, 0.5));
  Buffer wire = pbio::synthesize_wire(*foreign, rec);

  pbio::Decoder dec(registry);
  std::vector<std::uint8_t> out(native->struct_size());
  pbio::DecodeArena arena;
  dec.decode(wire.span(), *native, out.data(), arena);  // warm: plan + arena
  arena.reset();
  dec.decode(wire.span(), *native, out.data(), arena);

  AllocationCounter counter;
  for (int i = 0; i < 100; ++i) {
    arena.reset();
    dec.decode(wire.span(), *native, out.data(), arena);
  }
  EXPECT_EQ(counter.count(), 0u)
      << "instrumented steady-state decode touched the heap "
      << counter.count() << " times";
  obs::Tracer::instance().set_sample_every(64);
}

}  // namespace
}  // namespace omf
