// The replicated metadata plane: two-tier cache (memory LRU + crash-safe
// disk store), HTTP cache semantics (ETag / If-None-Match / 304,
// Cache-Control max-age + stale-while-revalidate, Retry-After), and
// consistent-hash failover across format-service replicas.
//
// Suite names start with "MetaCache" / "Replica" on purpose: the TSan CI
// job filters on those prefixes to race-check the cache and failover paths,
// and the chaos job sweeps ReplicaChaos under OMF_CHAOS_SEED.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/discovery.hpp"
#include "core/http_formats.hpp"
#include "fault/faulty.hpp"
#include "http/http.hpp"
#include "metacache/caching_source.hpp"
#include "metacache/disk_store.hpp"
#include "metacache/format_client.hpp"
#include "metacache/memory_cache.hpp"
#include "metacache/meta_cache.hpp"
#include "metacache/replica_set.hpp"
#include "obs/metrics.hpp"
#include "overload/budget.hpp"
#include "overload/health.hpp"
#include "test_structs.hpp"
#include "transport/format_service.hpp"
#include "util/rng.hpp"

namespace omf {
namespace {

using namespace std::chrono_literals;
using namespace omf::testing;
using metacache::Bundle;
using metacache::BundleHandle;
using metacache::FetchResult;
using metacache::FetchStatus;
using metacache::MetaCache;
using metacache::MetaCacheOptions;

struct BudgetGuard {
  BudgetGuard() { reset(); }
  ~BudgetGuard() { reset(); }
  static void reset() {
    overload::HealthMonitor::instance().set_draining(false);
    overload::MemoryBudget::instance().reset_for_tests();
  }
};

std::filesystem::path fresh_dir(const std::string& tag) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("omf_metacache_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::uint64_t counter_value(const std::string& name) {
  return obs::MetricsRegistry::instance().counter(name).value();
}

Bundle make_bundle(std::string body, std::chrono::seconds max_age = 60s,
                   std::chrono::seconds swr = 3600s,
                   std::int64_t fetched_ms = 1'000'000) {
  Bundle b;
  b.body = std::move(body);
  b.content_hash = fnv1a(b.body);
  b.etag = http::strong_etag(b.body);
  b.max_age = max_age;
  b.stale_while_revalidate = swr;
  b.fetched_ms = fetched_ms;
  return b;
}

/// Fetcher stub with call accounting and a scriptable answer.
struct StubOrigin {
  std::string body = "<formats/>";
  std::atomic<int> calls{0};
  std::atomic<int> conditional_calls{0};
  FetchStatus when_etag_matches = FetchStatus::kNotModified;
  bool unavailable = false;
  bool not_found = false;

  metacache::Fetcher fetcher() {
    return [this](const std::string& etag) {
      calls.fetch_add(1);
      if (!etag.empty()) conditional_calls.fetch_add(1);
      FetchResult out;
      if (unavailable) {
        out.status = FetchStatus::kUnavailable;
        return out;
      }
      if (not_found) {
        out.status = FetchStatus::kNotFound;
        return out;
      }
      if (!etag.empty() && etag == http::strong_etag(body)) {
        out.status = when_etag_matches;
        if (out.status == FetchStatus::kNotModified) return out;
      }
      out.status = FetchStatus::kFetched;
      out.bundle = make_bundle(body, 60s, 3600s, 0);  // 0 = stamp at install
      return out;
    };
  }
};

// --- Memory tier -------------------------------------------------------------

TEST(MetaCacheMemory, EvictsLeastRecentlyUsedWhenBytesOverflow) {
  BudgetGuard guard;
  const std::size_t before = overload::MemoryBudget::instance().used();
  {
    metacache::MemoryCache cache(4096, 1);
    std::string kilo(700, 'x');
    for (std::uint64_t key = 1; key <= 8; ++key) {
      auto b = std::make_shared<const Bundle>(
          make_bundle(kilo + std::to_string(key)));
      ASSERT_TRUE(cache.put(key, b));
    }
    EXPECT_LE(cache.bytes(), 4096u);
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_EQ(cache.get(1), nullptr);  // oldest is gone
    EXPECT_NE(cache.get(8), nullptr);  // newest survives
    // Every cached byte is charged to the process budget.
    EXPECT_EQ(overload::MemoryBudget::instance().used() - before,
              cache.bytes());
  }
  // Destruction releases the charge.
  EXPECT_EQ(overload::MemoryBudget::instance().used(), before);
}

TEST(MetaCacheMemory, GetRefreshesRecency) {
  BudgetGuard guard;
  metacache::MemoryCache cache(4096, 1);
  std::string kilo(1200, 'y');
  for (std::uint64_t key = 1; key <= 3; ++key) {
    ASSERT_TRUE(cache.put(key, std::make_shared<const Bundle>(
                                   make_bundle(kilo + std::to_string(key)))));
  }
  ASSERT_NE(cache.get(1), nullptr);  // touch: 1 becomes most recent
  ASSERT_TRUE(cache.put(4, std::make_shared<const Bundle>(
                               make_bundle(kilo + "4"))));
  EXPECT_NE(cache.get(1), nullptr);  // survived because it was touched
  EXPECT_EQ(cache.get(2), nullptr);  // the true LRU got evicted
}

TEST(MetaCacheMemory, DeclinesEntriesWhenTheBudgetIsExhausted) {
  BudgetGuard guard;
  auto& budget = overload::MemoryBudget::instance();
  metacache::MemoryCache cache(1 << 20, 1);
  budget.set_limit(budget.used() + 64);
  auto big = std::make_shared<const Bundle>(make_bundle(std::string(4096, 'z')));
  EXPECT_FALSE(cache.put(7, big));  // refused, not partially charged
  EXPECT_EQ(cache.entries(), 0u);
  budget.set_limit(0);
  EXPECT_TRUE(cache.put(7, big));
}

// --- Disk tier ---------------------------------------------------------------

TEST(MetaCacheDisk, InstallThenLoadRoundTripsAcrossInstances) {
  auto dir = fresh_dir("disk_roundtrip");
  Bundle b = make_bundle("<format name='A'/>", 120s, 600s, 42'000);
  {
    metacache::DiskStore store(dir);
    store.install(9, b);
    EXPECT_EQ(store.entries(), 1u);
  }
  metacache::DiskStore reopened(dir);
  std::optional<Bundle> loaded = reopened.load(9);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->body, b.body);
  EXPECT_EQ(loaded->etag, b.etag);
  EXPECT_EQ(loaded->content_hash, b.content_hash);
  EXPECT_EQ(loaded->max_age, 120s);
  EXPECT_EQ(loaded->stale_while_revalidate, 600s);
  EXPECT_EQ(loaded->fetched_ms, 42'000);
  EXPECT_FALSE(reopened.load(10).has_value());
  std::filesystem::remove_all(dir);
}

TEST(MetaCacheDisk, TornFileIsRejectedAndQuarantined) {
  auto dir = fresh_dir("disk_torn");
  metacache::DiskStore store(dir);
  store.install(9, make_bundle(std::string(2048, 'q')));
  // Tear the file the way a crash mid-write would: keep a prefix only.
  std::filesystem::path victim;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    victim = e.path();
  }
  ASSERT_FALSE(victim.empty());
  std::filesystem::resize_file(victim, std::filesystem::file_size(victim) / 2);
  const std::uint64_t rejects_before = counter_value("omf.metacache.disk_rejects");
  EXPECT_FALSE(store.load(9).has_value());
  EXPECT_EQ(counter_value("omf.metacache.disk_rejects"), rejects_before + 1);
  EXPECT_FALSE(std::filesystem::exists(victim));  // quarantined by unlink
  std::filesystem::remove_all(dir);
}

TEST(MetaCacheDisk, FlippedByteIsRejectedByTheCrc) {
  auto dir = fresh_dir("disk_flip");
  metacache::DiskStore store(dir);
  store.install(9, make_bundle(std::string(512, 'r')));
  std::filesystem::path victim;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    victim = e.path();
  }
  {
    std::fstream f(victim, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(64);
    f.put('X');
  }
  EXPECT_FALSE(store.load(9).has_value());
  std::filesystem::remove_all(dir);
}

TEST(MetaCacheDisk, LeftoverTempFilesAreNeverServed) {
  auto dir = fresh_dir("disk_tmp");
  metacache::DiskStore store(dir);
  // A crash between temp-write and rename leaves a *.tmp; readers must not
  // even consider it, whatever its contents claim.
  std::ofstream(dir / "0000000000000009.tmp") << std::string(128, 'j');
  EXPECT_FALSE(store.load(9).has_value());
  store.install(9, make_bundle("<real/>"));
  std::optional<Bundle> loaded = store.load(9);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->body, "<real/>");
  std::filesystem::remove_all(dir);
}

// --- Two-tier resolve + stale-while-revalidate -------------------------------

TEST(MetaCacheTiering, FreshHitsNeverTouchTheOrigin) {
  BudgetGuard guard;
  auto dir = fresh_dir("tier_fresh");
  MetaCache cache(MetaCacheOptions{.disk_dir = dir});
  StubOrigin origin;
  BundleHandle first = cache.resolve(1, origin.fetcher());
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->body, origin.body);
  BundleHandle second = cache.resolve(1, origin.fetcher());
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(origin.calls.load(), 1);  // one miss, then pure cache
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  std::filesystem::remove_all(dir);
}

TEST(MetaCacheTiering, WithinSwrServesStaleNowAndRevalidatesInBackground) {
  BudgetGuard guard;
  MetaCache cache(MetaCacheOptions{});
  std::atomic<std::int64_t> now{1'000'000};
  cache.set_now_fn([&] { return now.load(); });
  StubOrigin origin;
  ASSERT_NE(cache.resolve(1, origin.fetcher()), nullptr);
  // 90 s later: beyond max-age (60 s) but inside the swr window (3600 s).
  now += 90'000;
  BundleHandle served = cache.resolve(1, origin.fetcher());
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served->body, origin.body);  // the stale copy, served immediately
  cache.wait_revalidations_idle();
  EXPECT_EQ(origin.calls.load(), 2);
  EXPECT_EQ(origin.conditional_calls.load(), 1);  // validator rode along
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_GE(stats.revalidations, 1u);
  // The background revalidation restored freshness: no further origin trips.
  ASSERT_NE(cache.resolve(1, origin.fetcher()), nullptr);
  EXPECT_EQ(origin.calls.load(), 2);
}

TEST(MetaCacheTiering, BeyondSwrRevalidatesSynchronouslyVia304) {
  BudgetGuard guard;
  MetaCache cache(MetaCacheOptions{});
  std::atomic<std::int64_t> now{1'000'000};
  cache.set_now_fn([&] { return now.load(); });
  StubOrigin origin;
  ASSERT_NE(cache.resolve(1, origin.fetcher()), nullptr);
  now += 5'000'000;  // way past max-age + swr
  BundleHandle served = cache.resolve(1, origin.fetcher());
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served->body, origin.body);
  EXPECT_EQ(origin.conditional_calls.load(), 1);  // synchronous conditional GET
  EXPECT_GE(cache.stats().revalidations, 1u);
  // The 304 refreshed fetched_ms: the next resolve is a plain hit.
  ASSERT_NE(cache.resolve(1, origin.fetcher()), nullptr);
  EXPECT_EQ(origin.calls.load(), 2);
}

TEST(MetaCacheTiering, AllReplicasDownServesStaleAtAnyAge) {
  BudgetGuard guard;
  MetaCache cache(MetaCacheOptions{});
  std::atomic<std::int64_t> now{1'000'000};
  cache.set_now_fn([&] { return now.load(); });
  StubOrigin origin;
  ASSERT_NE(cache.resolve(1, origin.fetcher()), nullptr);
  now += 100'000'000;  // ancient — far beyond max-age + swr
  origin.unavailable = true;
  const std::uint64_t stale_before = counter_value("omf.metacache.stale_served");
  BundleHandle served = cache.resolve(1, origin.fetcher());
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served->body, origin.body);
  EXPECT_EQ(cache.stats().stale_served, 1u);
  EXPECT_EQ(counter_value("omf.metacache.stale_served"), stale_before + 1);
}

TEST(MetaCacheTiering, ColdStartFromDiskWithOriginUnreachable) {
  BudgetGuard guard;
  auto dir = fresh_dir("tier_coldstart");
  StubOrigin origin;
  {
    MetaCache warm(MetaCacheOptions{.disk_dir = dir});
    ASSERT_NE(warm.resolve(1, origin.fetcher()), nullptr);
  }
  // New process, same directory, origin dead: the disk tier answers.
  MetaCache cold(MetaCacheOptions{.disk_dir = dir});
  origin.unavailable = true;
  BundleHandle served = cold.resolve(1, origin.fetcher());
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served->body, origin.body);
  EXPECT_EQ(cold.stats().disk_hits, 1u);
  EXPECT_EQ(cold.stats().misses, 0u);
  std::filesystem::remove_all(dir);
}

TEST(MetaCacheTiering, NotFoundInvalidatesEveryTier) {
  BudgetGuard guard;
  auto dir = fresh_dir("tier_notfound");
  MetaCache cache(MetaCacheOptions{.disk_dir = dir});
  std::atomic<std::int64_t> now{1'000'000};
  cache.set_now_fn([&] { return now.load(); });
  StubOrigin origin;
  ASSERT_NE(cache.resolve(1, origin.fetcher()), nullptr);
  EXPECT_EQ(cache.disk()->entries(), 1u);
  now += 5'000'000;
  origin.not_found = true;  // the origin authoritatively dropped the format
  EXPECT_EQ(cache.resolve(1, origin.fetcher()), nullptr);
  EXPECT_EQ(cache.memory().entries(), 0u);
  EXPECT_EQ(cache.disk()->entries(), 0u);
  std::filesystem::remove_all(dir);
}

// --- Consistent-hash replica routing -----------------------------------------

TEST(ReplicaRouting, RouteIsADeterministicPermutation) {
  metacache::ReplicaSet set({"a", "b", "c", "d"});
  for (std::uint64_t key = 0; key < 64; ++key) {
    std::vector<std::size_t> order = set.route(key);
    ASSERT_EQ(order.size(), 4u);
    std::vector<bool> seen(4, false);
    for (std::size_t idx : order) {
      ASSERT_LT(idx, 4u);
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
    EXPECT_EQ(set.route(key), order);
  }
}

TEST(ReplicaRouting, RemovingAReplicaOnlyRemapsItsOwnKeys) {
  metacache::ReplicaSet three({"alpha", "beta", "gamma"});
  metacache::ReplicaSet two({"alpha", "beta"});
  int moved = 0;
  for (std::uint64_t key = 0; key < 512; ++key) {
    const std::string& before = three.endpoint(three.route(key)[0]);
    const std::string& after = two.endpoint(two.route(key)[0]);
    if (before == "gamma") {
      ++moved;  // orphaned keys must land somewhere
    } else {
      // Consistent hashing: keys owned by a surviving replica stay put.
      EXPECT_EQ(before, after) << "key " << key << " reshuffled needlessly";
    }
  }
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, 512);
}

TEST(ReplicaRouting, FailoverWalksToTheNextReplicaAndCounts) {
  metacache::ReplicaSet set({"dead", "live"});
  // Find a key whose first choice is the dead replica.
  std::uint64_t key = 0;
  while (set.endpoint(set.route(key)[0]) != "dead") ++key;
  const std::uint64_t failovers_before = counter_value("omf.replica.failover");
  std::atomic<int> dead_attempts{0};
  FetchResult got = set.fetch(
      key, [&](std::size_t, const std::string& endpoint) {
        FetchResult out;
        if (endpoint == "dead") {
          dead_attempts.fetch_add(1);
          throw TransportError("connection refused");
        }
        out.status = FetchStatus::kFetched;
        out.bundle = make_bundle("<from-live/>");
        return out;
      });
  EXPECT_EQ(got.status, FetchStatus::kFetched);
  EXPECT_EQ(got.bundle.body, "<from-live/>");
  EXPECT_EQ(dead_attempts.load(), 1);
  EXPECT_EQ(counter_value("omf.replica.failover"), failovers_before + 1);
}

TEST(ReplicaRouting, OpenBreakerSkipsTheDeadReplicaWithoutDialing) {
  metacache::ReplicaSet set(
      {"dead", "live"},
      {.failure_threshold = 1, .cooldown = std::chrono::milliseconds(60000)});
  std::uint64_t key = 0;
  while (set.endpoint(set.route(key)[0]) != "dead") ++key;
  std::atomic<int> dead_attempts{0};
  auto attempt = [&](std::size_t, const std::string& endpoint) {
    FetchResult out;
    if (endpoint == "dead") {
      dead_attempts.fetch_add(1);
      out.status = FetchStatus::kUnavailable;
      return out;
    }
    out.status = FetchStatus::kFetched;
    out.bundle = make_bundle("<ok/>");
    return out;
  };
  EXPECT_EQ(set.fetch(key, attempt).status, FetchStatus::kFetched);
  EXPECT_EQ(dead_attempts.load(), 1);  // tripped the one-strike breaker
  EXPECT_EQ(set.fetch(key, attempt).status, FetchStatus::kFetched);
  EXPECT_EQ(dead_attempts.load(), 1);  // skipped: no second dial
  EXPECT_EQ(set.breaker(set.route(key)[0]).state(),
            fault::CircuitBreaker::State::kOpen);
}

TEST(ReplicaRouting, AllReplicasDownReturnsUnavailable) {
  metacache::ReplicaSet set({"a", "b"});
  FetchResult got = set.fetch(5, [](std::size_t, const std::string&) {
    FetchResult out;
    out.status = FetchStatus::kUnavailable;
    return out;
  });
  EXPECT_EQ(got.status, FetchStatus::kUnavailable);
}

// --- HTTP cache semantics on the wire ----------------------------------------

TEST(MetaCacheHttp, ConditionalGetRevalidatesWith304AndSkipsTheBody) {
  http::Server server;
  const std::string body = "<huge>" + std::string(4096, 'm') + "</huge>";
  server.put_document("/formats/big.xml", body);
  server.set_cache_policy({.enabled = true,
                           .max_age = 60s,
                           .stale_while_revalidate = 600s});
  http::Response full = http::get(server.url_for("/formats/big.xml"));
  ASSERT_EQ(full.status, 200);
  EXPECT_EQ(full.body, body);
  ASSERT_FALSE(full.etag().empty());
  auto cc = full.cache_control();
  EXPECT_TRUE(cc.present);
  EXPECT_EQ(cc.max_age, 60s);
  EXPECT_EQ(cc.stale_while_revalidate, 600s);
  EXPECT_GT(full.wire_bytes, body.size());

  const std::uint64_t revalidations_before =
      counter_value("http.server.revalidations");
  http::Response cond =
      http::get(http::Url::parse(server.url_for("/formats/big.xml")),
                {{"If-None-Match", full.etag()}});
  EXPECT_EQ(cond.status, 304);
  EXPECT_TRUE(cond.body.empty());
  EXPECT_EQ(cond.etag(), full.etag());
  // The acceptance check, on the wire: revalidation must cost headers, not
  // the body — an order of magnitude fewer bytes here.
  EXPECT_LT(cond.wire_bytes, body.size() / 4);
  EXPECT_EQ(counter_value("http.server.revalidations"),
            revalidations_before + 1);

  // A different (or absent) validator still gets the full body.
  http::Response changed =
      http::get(http::Url::parse(server.url_for("/formats/big.xml")),
                {{"If-None-Match", "\"0123456789abcdef\""}});
  EXPECT_EQ(changed.status, 200);
  EXPECT_EQ(changed.body, body);
}

TEST(MetaCacheHttp, CachedSourceServesDiscoveryThroughTheTiers) {
  BudgetGuard guard;
  http::Server replica;
  replica.put_document("/meta/stream.xml", "<stream><a/></stream>");
  replica.set_cache_policy({.enabled = true,
                            .max_age = 3600s,
                            .stale_while_revalidate = 3600s});
  auto source = metacache::make_cached_http_source(
      {"http://127.0.0.1:" + std::to_string(replica.port())});
  metacache::CachedHttpSource* cached = source.get();

  core::DiscoveryManager discovery;
  discovery.add_source(core::make_http_source());
  discovery.set_source(0, std::move(source));

  const std::string locator = replica.url_for("/meta/stream.xml");
  auto doc = discovery.discover(locator);
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(cached->cache().stats().misses, 1u);

  // DiscoveryManager's own parsed-document cache answers repeats; drop it to
  // prove the metacache tier also holds the document.
  discovery.invalidate(locator);
  auto again = discovery.discover(locator);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(cached->cache().stats().hits, 1u);
  EXPECT_EQ(cached->cache().stats().misses, 1u);

  // Origin down + document cache cleared: the metadata cache still answers.
  replica.stop();
  discovery.invalidate(locator);
  auto offline = discovery.discover(locator);
  ASSERT_NE(offline, nullptr);
}

TEST(MetaCacheHttp, FailoverToSecondReplicaWhenFirstChoiceIsDown) {
  BudgetGuard guard;
  auto replica0 = std::make_unique<http::Server>();
  auto replica1 = std::make_unique<http::Server>();
  const std::string body = "<stream><b/></stream>";
  for (http::Server* s : {replica0.get(), replica1.get()}) {
    s->put_document("/meta/pick.xml", body);
  }
  metacache::CachedHttpSourceOptions options;
  options.breaker = {.failure_threshold = 1,
                     .cooldown = std::chrono::milliseconds(60000)};
  options.fetch_timeout = std::chrono::milliseconds(2000);
  metacache::CachedHttpSource source(
      {"http://127.0.0.1:" + std::to_string(replica0->port()),
       "http://127.0.0.1:" + std::to_string(replica1->port())},
      options);

  // Kill whichever replica the ring prefers for this document's key.
  const std::uint64_t key = fnv1a(std::string("/meta/pick.xml"));
  const std::size_t preferred = source.replicas().route(key)[0];
  (preferred == 0 ? replica0 : replica1).reset();

  const std::uint64_t failovers_before = counter_value("omf.replica.failover");
  std::optional<std::string> text =
      source.fetch("http://127.0.0.1:1/meta/pick.xml");  // host is ignored
  ASSERT_TRUE(text.has_value());
  EXPECT_EQ(*text, body);
  EXPECT_EQ(counter_value("omf.replica.failover"), failovers_before + 1);
}

// --- Replicated format client over the TCP format service --------------------

TEST(MetaCacheFormatClient, ResolvesAndCachesAcrossTcpReplicas) {
  BudgetGuard guard;
  pbio::FormatRegistry source;
  auto f = source.register_format("ASDOffEvent", asdoff_fields(),
                                  sizeof(AsdOff));
  transport::FormatServiceServer replica0, replica1;
  replica0.publish(*f);
  replica1.publish(*f);

  metacache::ReplicatedFormatClient client(
      {std::to_string(replica0.port()), std::to_string(replica1.port())});
  pbio::FormatRegistry receiver;
  auto resolved = client.resolve(receiver, f->id());
  ASSERT_NE(resolved, nullptr);
  EXPECT_EQ(resolved->name(), "ASDOffEvent");
  // Second resolve: memory tier, no RPC.
  const std::uint64_t fetches_before =
      counter_value("transport.format_service.fetches");
  ASSERT_NE(client.resolve(receiver, f->id()), nullptr);
  EXPECT_EQ(counter_value("transport.format_service.fetches"), fetches_before);
  EXPECT_EQ(client.cache().stats().hits, 1u);
  EXPECT_EQ(client.cache().stats().misses, 1u);
}

TEST(MetaCacheFormatClient, ConditionalFetchAnswersNotModified) {
  pbio::FormatRegistry source;
  auto f = source.register_format("ASDOffEvent", asdoff_fields(),
                                  sizeof(AsdOff));
  transport::FormatServiceServer server;
  server.publish(*f);
  transport::FormatServiceClient client(server.port());

  pbio::FormatRegistry receiver;
  auto first = client.conditional_fetch(f->id(), 0);
  using Status = transport::FormatServiceClient::ConditionalFetch::Status;
  ASSERT_EQ(first.status, Status::kFetched);
  ASSERT_GT(first.bundle.size(), 0u);
  const std::uint64_t hash =
      fnv1a({reinterpret_cast<const char*>(first.bundle.data()),
             first.bundle.size()});
  const std::uint64_t nm_before =
      counter_value("transport.format_service.not_modified");
  auto second = client.conditional_fetch(f->id(), hash);
  EXPECT_EQ(second.status, Status::kNotModified);
  EXPECT_EQ(second.bundle.size(), 0u);  // the 304: status byte, no body
  EXPECT_EQ(counter_value("transport.format_service.not_modified"),
            nm_before + 1);
  auto unknown = client.conditional_fetch(f->id() ^ 0x5a5a, hash);
  EXPECT_EQ(unknown.status, Status::kUnknown);
}

TEST(MetaCacheFormatClient, WarmClientSurvivesAllReplicasDownWithinDeadline) {
  BudgetGuard guard;
  auto dir = fresh_dir("client_alldown");
  pbio::FormatRegistry source;
  auto f = source.register_format("ASDOffEvent", asdoff_fields(),
                                  sizeof(AsdOff));
  auto replica0 = std::make_unique<transport::FormatServiceServer>();
  auto replica1 = std::make_unique<transport::FormatServiceServer>();
  replica0->publish(*f);
  replica1->publish(*f);

  metacache::ReplicatedFormatClient::Options options;
  options.cache.disk_dir = dir;
  // Zero lifetimes force every resolve to the origin — the harshest case
  // for an outage, so the stale path (not mere freshness) is what passes.
  options.default_max_age = 0s;
  options.default_swr = 0s;
  options.fetch_timeout = std::chrono::milliseconds(250);
  options.breaker = {.failure_threshold = 1,
                     .cooldown = std::chrono::milliseconds(60000)};
  metacache::ReplicatedFormatClient client(
      {std::to_string(replica0->port()), std::to_string(replica1->port())},
      options);
  pbio::FormatRegistry receiver;
  ASSERT_NE(client.resolve(receiver, f->id()), nullptr);  // warm the tiers

  replica0.reset();
  replica1.reset();
  const std::uint64_t stale_before = counter_value("omf.metacache.stale_served");
  const auto t0 = std::chrono::steady_clock::now();
  auto resolved = client.resolve(receiver, f->id());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_NE(resolved, nullptr);
  EXPECT_EQ(resolved->name(), "ASDOffEvent");
  EXPECT_GE(client.cache().stats().stale_served, 1u);
  EXPECT_EQ(counter_value("omf.metacache.stale_served"), stale_before + 1);
  // Both replicas are dialed at most once each, bounded by fetch_timeout;
  // nothing may block past the per-attempt deadlines.
  EXPECT_LT(elapsed, 2000ms);
  std::filesystem::remove_all(dir);
}

// --- Chaos: replica 0 dies or stalls mid-discovery ---------------------------

TEST(ReplicaChaos, ClientsConvergeViaReplicaOneWithZeroDecodeErrors) {
  BudgetGuard guard;
  std::uint64_t seed = 1;
  if (const char* env = std::getenv("OMF_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  SCOPED_TRACE("OMF_CHAOS_SEED=" + std::to_string(seed));
  Rng rng(seed);

  pbio::FormatRegistry source;
  std::vector<pbio::FormatHandle> formats;
  formats.push_back(source.register_format("ASDOffEvent", asdoff_fields(),
                                           sizeof(AsdOff)));
  auto [nested_b, nested_c] = register_nested_pair(source);
  formats.push_back(nested_c);

  transport::FormatServiceServer replica0, replica1;
  for (const auto& f : formats) {
    replica0.publish(*f);
    replica1.publish(*f);
  }

  // Replica 0 fails mid-discovery, in a seed-chosen way: a kStall (socket
  // up, bytes never flow — the worst case for deadlines) or a kill
  // (connection refused — the easy case). Both must converge via replica 1.
  const bool stall = rng.below(2) == 0;
  std::unique_ptr<fault::FaultProxy> proxy;
  std::string replica0_endpoint;
  if (stall) {
    fault::FaultScript script;
    script.push_back({.kind = fault::FaultKind::kStall,
                      .direction = fault::Direction::kServerToClient,
                      .connection = -1,
                      .frame = -1});
    proxy = std::make_unique<fault::FaultProxy>(replica0.port(), script);
    replica0_endpoint = std::to_string(proxy->port());
  } else {
    replica0.stop();
    replica0_endpoint = std::to_string(replica0.port());
  }

  metacache::ReplicatedFormatClient::Options options;
  options.fetch_timeout = std::chrono::milliseconds(300);
  options.breaker = {.failure_threshold = 1,
                     .cooldown = std::chrono::milliseconds(60000)};
  metacache::ReplicatedFormatClient client(
      {replica0_endpoint, std::to_string(replica1.port())}, options);

  // Several independent clients' worth of lookups; every resolve must yield
  // a registered, decodable format — zero DecodeErrors, no wedged deadline.
  pbio::FormatRegistry receiver;
  for (int round = 0; round < 3; ++round) {
    for (const auto& f : formats) {
      const auto t0 = std::chrono::steady_clock::now();
      pbio::FormatHandle resolved;
      ASSERT_NO_THROW(resolved = client.resolve(receiver, f->id()));
      ASSERT_NE(resolved, nullptr) << "format " << f->name();
      EXPECT_EQ(resolved->name(), f->name());
      EXPECT_LT(std::chrono::steady_clock::now() - t0, 2000ms);
    }
  }
  EXPECT_EQ(counter_value("transport.crc_rejects"), 0u);
}

// --- Retry-After (429/503) ---------------------------------------------------

TEST(MetaCacheRetryAfter, ParsesDeltaSecondsOnly) {
  http::Response r;
  r.headers["retry-after"] = "7";
  ASSERT_TRUE(r.retry_after().has_value());
  EXPECT_EQ(*r.retry_after(), 7s);
  r.headers["retry-after"] = "Fri, 08 Aug 2026 12:00:00 GMT";  // date form
  EXPECT_FALSE(r.retry_after().has_value());
  r.headers.erase("retry-after");
  EXPECT_FALSE(r.retry_after().has_value());
}

TEST(MetaCacheRetryAfter, ClientHonorsRetryAfterOnThrottledResponses) {
  http::Server server;
  std::atomic<int> requests{0};
  server.set_responder(
      [&](const http::Server::Request&) -> std::optional<http::Response> {
        if (requests.fetch_add(1) == 0) {
          http::Response throttled;
          throttled.status = 429;
          throttled.reason = "Too Many Requests";
          throttled.headers["retry-after"] = "1";
          throttled.body = "slow down";
          return throttled;
        }
        http::Response ok;
        ok.status = 200;
        ok.reason = "OK";
        ok.body = "<doc/>";
        return ok;
      });
  const std::uint64_t waits_before =
      counter_value("http.client.retry_after_waits");
  const auto t0 = std::chrono::steady_clock::now();
  http::Response resp = http::get_with_retry(
      http::Url::parse(server.url_for("/anything")), {},
      RetryPolicy{.max_attempts = 3}, Deadline::after(10000ms));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "<doc/>");
  EXPECT_EQ(requests.load(), 2);
  // It waited what the server asked (1 s), not the backoff schedule.
  EXPECT_GE(elapsed, 900ms);
  EXPECT_EQ(counter_value("http.client.retry_after_waits"), waits_before + 1);
}

TEST(MetaCacheRetryAfter, RetryAfterBeyondTheDeadlineReturnsImmediately) {
  http::Server server;
  server.set_responder(
      [&](const http::Server::Request&) -> std::optional<http::Response> {
        http::Response throttled;
        throttled.status = 503;
        throttled.reason = "Service Unavailable";
        throttled.headers["retry-after"] = "30";
        return throttled;
      });
  const auto t0 = std::chrono::steady_clock::now();
  http::Response resp = http::get_with_retry(
      http::Url::parse(server.url_for("/anything")), {},
      RetryPolicy{.max_attempts = 5}, Deadline::after(300ms));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // A 30 s wait cannot fit a 300 ms deadline: the throttled response comes
  // back without blocking past it.
  EXPECT_EQ(resp.status, 503);
  EXPECT_LT(elapsed, 2000ms);
}

// --- Kill -9 harness (driven by CI; skipped without the env) -----------------

// CI runs OriginServeUntilKilled with OMF_METACACHE_DIR set, WarmThroughOrigin
// against it, kill -9s the origin, then runs ColdStartOriginDown with the
// same directory: a fresh process must resolve the document from the disk
// tier alone, counting omf.metacache.stale_served (the origin advertised
// max-age=0, so the disk copy is stale by construction).
TEST(MetaCacheHarness, OriginServeUntilKilled) {
  const char* dir_env = std::getenv("OMF_METACACHE_DIR");
  if (dir_env == nullptr) {
    GTEST_SKIP() << "set OMF_METACACHE_DIR to run the kill harness";
  }
  std::filesystem::path dir(dir_env);
  std::filesystem::create_directories(dir);
  http::Server origin;
  origin.put_document("/meta/killed.xml", "<survivor/>");
  origin.set_cache_policy(
      {.enabled = true, .max_age = 0s, .stale_while_revalidate = 0s});
  {
    std::ofstream port_file(dir / "port.txt", std::ios::trunc);
    port_file << origin.port() << "\n";
  }
  for (;;) std::this_thread::sleep_for(100ms);  // until kill -9
}

namespace {
std::uint16_t harness_port(const std::filesystem::path& dir) {
  std::ifstream port_file(dir / "port.txt");
  int port = 0;
  port_file >> port;
  return static_cast<std::uint16_t>(port);
}
}  // namespace

TEST(MetaCacheHarness, WarmThroughOrigin) {
  const char* dir_env = std::getenv("OMF_METACACHE_DIR");
  if (dir_env == nullptr) {
    GTEST_SKIP() << "set OMF_METACACHE_DIR to run the kill harness";
  }
  std::filesystem::path dir(dir_env);
  metacache::CachedHttpSourceOptions options;
  options.cache.disk_dir = dir / "cache";
  options.fetch_timeout = std::chrono::milliseconds(2000);
  metacache::CachedHttpSource source(
      {"http://127.0.0.1:" + std::to_string(harness_port(dir))}, options);
  std::optional<std::string> text =
      source.fetch("http://origin/meta/killed.xml");
  ASSERT_TRUE(text.has_value());
  EXPECT_EQ(*text, "<survivor/>");
  ASSERT_NE(source.cache().disk(), nullptr);
  EXPECT_GE(source.cache().disk()->entries(), 1u);
}

TEST(MetaCacheHarness, ColdStartOriginDown) {
  const char* dir_env = std::getenv("OMF_METACACHE_DIR");
  if (dir_env == nullptr) {
    GTEST_SKIP() << "set OMF_METACACHE_DIR to run the kill harness";
  }
  std::filesystem::path dir(dir_env);
  metacache::CachedHttpSourceOptions options;
  options.cache.disk_dir = dir / "cache";
  options.fetch_timeout = std::chrono::milliseconds(300);
  options.breaker = {.failure_threshold = 1,
                     .cooldown = std::chrono::milliseconds(60000)};
  metacache::CachedHttpSource source(
      {"http://127.0.0.1:" + std::to_string(harness_port(dir))}, options);
  const std::uint64_t stale_before = counter_value("omf.metacache.stale_served");
  const auto t0 = std::chrono::steady_clock::now();
  std::optional<std::string> text =
      source.fetch("http://origin/meta/killed.xml");
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(text.has_value()) << "disk tier did not survive the kill";
  EXPECT_EQ(*text, "<survivor/>");
  EXPECT_EQ(counter_value("omf.metacache.stale_served"), stale_before + 1);
  EXPECT_LT(elapsed, 2000ms);
  RecordProperty("stale_served", 1);
}

}  // namespace
}  // namespace omf
