// Final-coverage batch: error hierarchy contracts, discovery concurrency,
// logging levels, and writer options.
#include <gtest/gtest.h>

#include <thread>

#include "core/discovery.hpp"
#include "http/http.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace omf {
namespace {

// --- Error hierarchy ---------------------------------------------------------

TEST(Errors, AllDeriveFromOmfError) {
  // Catch-all at API boundaries must work for every family member.
  auto as_error = [](const Error& e) { return std::string(e.what()); };
  EXPECT_NE(as_error(DecodeError("x")).find("decode error: x"),
            std::string::npos);
  EXPECT_NE(as_error(EncodeError("x")).find("encode error: x"),
            std::string::npos);
  EXPECT_NE(as_error(FormatError("x")).find("format error: x"),
            std::string::npos);
  EXPECT_NE(as_error(DiscoveryError("x")).find("discovery error: x"),
            std::string::npos);
  EXPECT_NE(as_error(TransportError("x")).find("transport error: x"),
            std::string::npos);
  ParseError p("bad", 3, 7);
  EXPECT_EQ(p.line(), 3u);
  EXPECT_EQ(p.column(), 7u);
  EXPECT_NE(as_error(p).find("3:7"), std::string::npos);
}

TEST(Errors, CatchableAsStdException) {
  try {
    throw FormatError("boom");
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

// --- Discovery under concurrency ------------------------------------------------

TEST(DiscoveryConcurrency, ManyThreadsSameLocator) {
  http::Server server;
  server.put_document("/m.xml", "<m/>");
  std::string url = server.url_for("/m.xml");

  core::DiscoveryManager dm;
  dm.add_source(core::make_http_source());

  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        auto doc = dm.discover(url);
        if (doc && doc->root->name() == "m") ++ok;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 8 * 25);
  // All but the initial misses must have been cache hits; the server saw
  // far fewer requests than discover() calls.
  EXPECT_LT(server.request_count(), 16u);
}

TEST(DiscoveryConcurrency, MixedLocators) {
  http::Server server;
  for (int i = 0; i < 8; ++i) {
    server.put_document("/d" + std::to_string(i), "<d/>");
  }
  core::DiscoveryManager dm;
  dm.add_source(core::make_http_source());
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        auto doc = dm.discover(server.url_for("/d" + std::to_string((t + i) % 8)));
        if (doc) ++ok;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 80);
}

// --- Logging ----------------------------------------------------------------------

TEST(Logging, ThresholdGatesOutput) {
  LogLevel original = log_level();
  set_log_level(LogLevel::kOff);
  // Nothing observable to assert about stderr cheaply; the contract under
  // test is that logging below the threshold is a no-op and that level
  // state round-trips.
  OMF_LOG_ERROR("test", "suppressed ", 42);
  EXPECT_EQ(log_level(), LogLevel::kOff);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

// --- Writer options ------------------------------------------------------------------

TEST(WriterOptions, DeclarationToggle) {
  xml::Document doc = xml::parse("<a/>");
  std::string with = xml::write(doc, {.declaration = true, .indent = 0});
  std::string without = xml::write(doc, {.declaration = false, .indent = 0});
  EXPECT_NE(with.find("<?xml"), std::string::npos);
  EXPECT_EQ(without.find("<?xml"), std::string::npos);
}

TEST(WriterOptions, EncodingAndStandaloneEmitted) {
  xml::Document doc = xml::parse(
      "<?xml version=\"1.0\" encoding=\"UTF-8\" standalone=\"no\"?><a/>");
  std::string out = xml::write(doc);
  EXPECT_NE(out.find("encoding=\"UTF-8\""), std::string::npos);
  EXPECT_NE(out.find("standalone=\"no\""), std::string::npos);
}

TEST(WriterOptions, EmptyElementsSelfClose) {
  xml::Document doc = xml::parse("<a><b></b></a>");
  std::string out = xml::write(doc, {.declaration = false, .indent = 0});
  EXPECT_NE(out.find("<b />"), std::string::npos);
}

}  // namespace
}  // namespace omf
