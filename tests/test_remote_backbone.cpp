// Networked event backbone: remote subscribe/publish over TCP.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <thread>

#include "core/context.hpp"
#include "pbio/record.hpp"
#include "test_structs.hpp"
#include "transport/net_io.hpp"
#include "transport/remote_backbone.hpp"
#include "util/bytes.hpp"

namespace omf::transport {
namespace {

using namespace omf::testing;

Buffer text_buffer(std::string_view text) {
  Buffer b;
  b.append(text);
  return b;
}

std::string as_text(const Buffer& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

TEST(RemoteBackbone, LocalPublishReachesRemoteSubscriber) {
  EventBackbone backbone;
  RemoteBackboneServer server(backbone);

  RemoteSubscription sub(server.port(), "alerts");
  // Subscribing is asynchronous relative to the server's accept loop; wait
  // for the subscription to land before publishing.
  for (int i = 0; i < 200 && backbone.subscriber_count("alerts") == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(backbone.subscriber_count("alerts"), 1u);

  backbone.publish("alerts", text_buffer("first"));
  backbone.publish("alerts", text_buffer("second"));
  auto m1 = sub.receive();
  auto m2 = sub.receive();
  ASSERT_TRUE(m1);
  ASSERT_TRUE(m2);
  EXPECT_EQ(as_text(*m1), "first");
  EXPECT_EQ(as_text(*m2), "second");
}

TEST(RemoteBackbone, RemotePublishReachesLocalSubscriber) {
  EventBackbone backbone;
  RemoteBackboneServer server(backbone);
  auto local = backbone.subscribe("metrics");

  RemotePublisher pub(server.port());
  pub.publish("metrics", text_buffer("cpu=42"));
  auto msg = local.receive();
  ASSERT_TRUE(msg);
  EXPECT_EQ(as_text(*msg), "cpu=42");
}

TEST(RemoteBackbone, RemoteToRemoteThroughTheHub) {
  EventBackbone backbone;
  RemoteBackboneServer server(backbone);

  RemoteSubscription sub(server.port(), "chat");
  for (int i = 0; i < 200 && backbone.subscriber_count("chat") == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  RemotePublisher pub(server.port());
  for (int i = 0; i < 20; ++i) {
    pub.publish("chat", text_buffer("msg" + std::to_string(i)));
  }
  for (int i = 0; i < 20; ++i) {
    auto msg = sub.receive();
    ASSERT_TRUE(msg);
    EXPECT_EQ(as_text(*msg), "msg" + std::to_string(i));
  }
}

TEST(RemoteBackbone, ServerStopDisconnectsSubscribers) {
  EventBackbone backbone;
  auto server = std::make_unique<RemoteBackboneServer>(backbone);
  RemoteSubscription sub(server->port(), "ch");
  for (int i = 0; i < 200 && backbone.subscriber_count("ch") == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server->stop();
  EXPECT_FALSE(sub.receive());  // orderly close
}

TEST(RemoteBackbone, NdrMessagesEndToEndAcrossTheWire) {
  // A remote capture point publishes NDR events into a hub; a remote
  // display point receives and decodes them — the fully distributed
  // version of the airline scenario.
  EventBackbone backbone;
  RemoteBackboneServer server(backbone);

  core::Context ctx;
  ctx.compiled_in().add("m", kAsdOffSchema);
  auto format = ctx.discover_format("m", "ASDOffEvent");
  auto channel = ctx.bind<AsdOff>(format);

  RemoteSubscription display(server.port(), "faa.positions");
  for (int i = 0;
       i < 200 && backbone.subscriber_count("faa.positions") == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::thread capture_point([&] {
    RemotePublisher pub(server.port());
    for (int i = 0; i < 10; ++i) {
      AsdOff event;
      fill_asdoff(event, i);
      pub.publish("faa.positions", channel.encode(&event));
    }
  });

  for (int i = 0; i < 10; ++i) {
    auto msg = display.receive();
    ASSERT_TRUE(msg);
    AsdOff expected;
    fill_asdoff(expected, i);
    AsdOff got{};
    pbio::DecodeArena arena;
    channel.decode(msg->span(), &got, arena);
    EXPECT_TRUE(asdoff_equal(expected, got)) << "event " << i;
  }
  capture_point.join();
}

TEST(RemoteBackbone, ManyRemoteSubscribersFanOut) {
  EventBackbone backbone;
  RemoteBackboneServer server(backbone);

  constexpr int kSubs = 8;
  std::vector<std::unique_ptr<RemoteSubscription>> subs;
  for (int i = 0; i < kSubs; ++i) {
    subs.push_back(
        std::make_unique<RemoteSubscription>(server.port(), "wide"));
  }
  for (int i = 0;
       i < 500 && backbone.subscriber_count("wide") < kSubs; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(backbone.subscriber_count("wide"), static_cast<std::size_t>(kSubs));

  backbone.publish("wide", text_buffer("broadcast"));
  for (auto& s : subs) {
    auto msg = s->receive();
    ASSERT_TRUE(msg);
    EXPECT_EQ(as_text(*msg), "broadcast");
  }
}

TEST(RemoteBackbone, SubscriberSurvivesServerRestartWithReconnect) {
  // The tentpole reconnect-and-resubscribe path: the server goes away and
  // comes back on the same port; a reconnect-enabled subscription resumes
  // receiving without the caller noticing anything but message loss.
  EventBackbone backbone;
  auto server = std::make_unique<RemoteBackboneServer>(backbone);
  std::uint16_t port = server->port();

  RemoteSubscription::ReconnectOptions opts;
  opts.enabled = true;
  opts.retry.max_attempts = 40;
  opts.retry.base = std::chrono::milliseconds(10);
  opts.retry.cap = std::chrono::milliseconds(50);
  RemoteSubscription sub(port, "sturdy", opts);
  for (int i = 0; i < 200 && backbone.subscriber_count("sturdy") == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  backbone.publish("sturdy", text_buffer("before"));
  auto m1 = sub.receive();
  ASSERT_TRUE(m1);
  EXPECT_EQ(as_text(*m1), "before");

  server->stop();
  server.reset();
  std::thread restarter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    server = std::make_unique<RemoteBackboneServer>(backbone, port);
  });

  // This receive crosses the outage: it observes the orderly close,
  // re-dials until the restarted server answers, resubscribes, and then
  // blocks for the next message.
  std::thread publisher([&] {
    while (backbone.subscriber_count("sturdy") == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    backbone.publish("sturdy", text_buffer("after"));
  });
  auto m2 = sub.receive();
  restarter.join();
  publisher.join();
  ASSERT_TRUE(m2);
  EXPECT_EQ(as_text(*m2), "after");
  EXPECT_GE(sub.reconnects(), 1u);
}

TEST(RemoteBackbone, ReconnectExhaustionAgainstDeadServer) {
  EventBackbone backbone;
  auto server = std::make_unique<RemoteBackboneServer>(backbone);
  std::uint16_t port = server->port();

  RemoteSubscription::ReconnectOptions opts;
  opts.enabled = true;
  opts.retry.max_attempts = 3;
  opts.retry.base = std::chrono::milliseconds(5);
  opts.retry.cap = std::chrono::milliseconds(10);
  RemoteSubscription sub(port, "doomed", opts);
  for (int i = 0; i < 200 && backbone.subscriber_count("doomed") == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server->stop();
  server.reset();  // nobody is coming back
  EXPECT_FALSE(sub.receive());  // orderly close + exhausted retries
  EXPECT_EQ(sub.reconnects(), 0u);
}

TEST(RemoteBackbone, TruncatedHelloIsIgnoredByServer) {
  // A client that sends a partial frame and dies must not wedge or kill
  // the accept loop; later well-formed subscribers still work.
  EventBackbone backbone;
  RemoteBackboneServer server(backbone);
  {
    TcpConnection half_open = tcp_connect(server.port());
    int fd = half_open.release_fd();
    std::uint8_t header[4];
    store_le<std::uint32_t>(header, 64);  // promise 64 bytes, send none
    netio::write_all(fd, header, 4, Deadline::never(), "test write");
    ::close(fd);
  }
  RemoteSubscription sub(server.port(), "still-works");
  for (int i = 0;
       i < 500 && backbone.subscriber_count("still-works") == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(backbone.subscriber_count("still-works"), 1u);
  backbone.publish("still-works", text_buffer("alive"));
  auto msg = sub.receive();
  ASSERT_TRUE(msg);
  EXPECT_EQ(as_text(*msg), "alive");
}

}  // namespace
}  // namespace omf::transport
