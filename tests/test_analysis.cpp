// The static analyzer end to end: the lint corpus must emit exactly the
// diagnostic codes its filenames promise, the shipped example schemas must
// be clean, the plan auditors must classify lossy conversions and prove
// bounds, and the Context/Gateway registration paths must reject metadata
// the analyzer flags — atomically, with structured diagnostics.
//
// Also the truncated-message regression sweep: every strict prefix of a
// valid wire message must fail with DecodeError, never read past the end.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/audit_format.hpp"
#include "analysis/cli.hpp"
#include "analysis/audit_plan.hpp"
#include "analysis/diagnostics.hpp"
#include "analysis/lint.hpp"
#include "arch/profile.hpp"
#include "core/context.hpp"
#include "core/gateway.hpp"
#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "pbio/metaserde.hpp"
#include "test_structs.hpp"

namespace omf {
namespace {

using namespace omf::testing;
namespace fs = std::filesystem;

// --- Lint corpus ------------------------------------------------------------

/// Corpus files are named `<description>__<CODE>[+<CODE>].<ext>`; the codes
/// between the double underscore and the extension are the complete set the
/// file must produce.
std::set<std::string> expected_codes(const fs::path& file) {
  std::string stem = file.stem().string();
  std::size_t sep = stem.find("__");
  EXPECT_NE(sep, std::string::npos) << "corpus file without __CODE suffix: "
                                    << file;
  std::set<std::string> out;
  std::string codes = stem.substr(sep + 2);
  std::size_t at = 0;
  while (at <= codes.size()) {
    std::size_t plus = codes.find('+', at);
    if (plus == std::string::npos) {
      out.insert(codes.substr(at));
      break;
    }
    out.insert(codes.substr(at, plus - at));
    at = plus + 1;
  }
  return out;
}

TEST(LintCorpus, EveryFileEmitsExactlyItsCodes) {
  fs::path dir(OMF_LINT_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(dir)) << dir;

  std::size_t checked = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::set<std::string> expected = expected_codes(entry.path());

    analysis::LintResult result =
        analysis::lint_file(entry.path().string());
    std::set<std::string> got;
    for (const analysis::Diagnostic& d : result.diagnostics) {
      got.insert(d.code);
      EXPECT_EQ(d.file, entry.path().string());
    }
    EXPECT_EQ(got, expected) << entry.path();
    ++checked;
  }
  EXPECT_GE(checked, 24u) << "lint corpus unexpectedly small";
}

TEST(LintCorpus, DiagnosticCodeTableCoversEveryEmittedCode) {
  std::set<std::string> known;
  for (const analysis::CodeInfo& info : analysis::diagnostic_codes()) {
    known.insert(info.code);
  }
  fs::path dir(OMF_LINT_CORPUS_DIR);
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    for (const std::string& code : expected_codes(entry.path())) {
      EXPECT_TRUE(known.count(code))
          << code << " missing from diagnostic_codes()";
    }
  }
}

TEST(LintExamples, ShippedSchemasAreClean) {
  fs::path dir(OMF_EXAMPLE_SCHEMAS_DIR);
  ASSERT_TRUE(fs::is_directory(dir)) << dir;

  std::size_t checked = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".xsd") continue;
    analysis::LintResult result =
        analysis::lint_file(entry.path().string());
    EXPECT_EQ(result.errors, 0u) << entry.path();
    EXPECT_EQ(result.warnings, 0u) << entry.path();
    EXPECT_TRUE(result.diagnostics.empty()) << entry.path();
    ++checked;
  }
  EXPECT_GE(checked, 8u) << "example schema set unexpectedly small";
}

// --- Plan audits: the lossiness lattice and the bounds proof ----------------

/// A wire/native pair engineered to hit every lossiness code exactly once:
/// `a` narrows 8 -> 4 bytes (OMF201), `b` is double -> float (OMF202),
/// `c` flips unsigned -> signed (OMF203), `d` shrinks a static array
/// (OMF204), and wire-only `e` is dropped (OMF205).
struct LossyPair {
  pbio::FormatRegistry registry;
  pbio::FormatHandle wire;
  pbio::FormatHandle native;

  LossyPair() {
    std::vector<pbio::IOField> wire_fields = {
        {"a", "integer", 8, 0},
        {"b", "float", 8, 8},
        {"c", "unsigned", 4, 16},
        {"d", "integer[4]", 4, 20},
        {"e", "integer", 4, 36},
    };
    wire = registry.register_format("LossySource", wire_fields, 40);

    std::vector<pbio::IOField> native_fields = {
        {"a", "integer", 4, 0},
        {"b", "float", 4, 4},
        {"c", "integer", 4, 8},
        {"d", "integer[2]", 4, 12},
    };
    native = registry.register_format("LossyTarget", native_fields, 20);
  }
};

TEST(PlanAudit, LossinessLatticeReportsEveryLossyPairing) {
  LossyPair p;
  std::vector<analysis::Diagnostic> diags =
      analysis::audit_conversion(*p.wire, *p.native);

  std::set<std::string> got;
  for (const analysis::Diagnostic& d : diags) {
    EXPECT_EQ(d.severity, analysis::Severity::kWarning) << d.code;
    got.insert(d.code);
  }
  std::set<std::string> expected = {"OMF201", "OMF202", "OMF203", "OMF204",
                                    "OMF205"};
  EXPECT_EQ(got, expected);

  // Each warning names the exact field.
  const std::map<std::string, std::string> paths = {
      {"OMF201", "a"}, {"OMF202", "b"}, {"OMF203", "c"},
      {"OMF204", "d"}, {"OMF205", "e"}};
  for (const analysis::Diagnostic& d : diags) {
    EXPECT_EQ(d.path, paths.at(d.code)) << d.code;
  }
}

TEST(PlanAudit, CompiledLossyPlanIsInBoundsButWarns) {
  LossyPair p;
  pbio::Decoder decoder(p.registry);
  pbio::PlanHandle plan = decoder.plan_for(p.wire, p.native);
  ASSERT_TRUE(plan);

  std::vector<analysis::Diagnostic> diags = analysis::audit_plan(*plan);
  EXPECT_FALSE(analysis::has_errors(diags));  // the bounds proof holds
  std::set<std::string> got;
  for (const analysis::Diagnostic& d : diags) got.insert(d.code);
  std::set<std::string> expected = {"OMF201", "OMF202", "OMF203", "OMF204",
                                    "OMF205"};
  EXPECT_EQ(got, expected);
}

TEST(PlanAudit, HomogeneousNestedPlanIsSilent) {
  pbio::FormatRegistry registry;
  auto [b, c] = register_nested_pair(registry);
  pbio::Decoder decoder(registry);

  for (const pbio::FormatHandle& f : {b, c}) {
    pbio::PlanHandle plan = decoder.plan_for(f, f);
    ASSERT_TRUE(plan);
    std::vector<analysis::Diagnostic> diags = analysis::audit_plan(*plan);
    EXPECT_TRUE(diags.empty()) << f->name();
  }
}

TEST(FormatAudit, RegisteredNativeFormatsHaveNoErrors) {
  pbio::FormatRegistry registry;
  auto a = registry.register_format("ASDOffEvent", asdoff_fields(),
                                    sizeof(AsdOff));
  auto [b, c] = register_nested_pair(registry);
  for (const pbio::FormatHandle& f : {a, b, c}) {
    EXPECT_FALSE(analysis::has_errors(analysis::audit_format(*f)))
        << f->name();
  }
}

// --- Registration-time enforcement ------------------------------------------

/// A serialized bundle whose single format has two overlapping fields
/// (OMF102) — metadata a hostile or buggy peer could send. Framing follows
/// pbio/metaserde.cpp exactly.
Buffer hostile_bundle() {
  constexpr ByteOrder kOrder = ByteOrder::kLittle;
  Buffer b;
  auto put_string = [&](std::string_view s) {
    b.append_int<std::uint32_t>(static_cast<std::uint32_t>(s.size()), kOrder);
    b.append(s);
  };

  const arch::Profile& p = arch::native();
  b.append_int<std::uint32_t>(0x464D424Fu, kOrder);  // "OBMF"
  b.append_int<std::uint32_t>(1, kOrder);            // one format
  put_string("EvilRemote");
  put_string(p.name);
  b.append_int<std::uint8_t>(p.byte_order == ByteOrder::kBig ? 1 : 0, kOrder);
  b.append_int<std::uint8_t>(static_cast<std::uint8_t>(p.pointer_size),
                             kOrder);
  b.append_int<std::uint8_t>(static_cast<std::uint8_t>(p.int_size), kOrder);
  b.append_int<std::uint8_t>(static_cast<std::uint8_t>(p.long_size), kOrder);
  b.append_int<std::uint8_t>(static_cast<std::uint8_t>(p.alignment_cap),
                             kOrder);
  b.append_int<std::uint64_t>(8, kOrder);  // struct_size
  b.append_int<std::uint32_t>(2, kOrder);  // field count
  // a: integer, 8 bytes at offset 0 — reaches to byte 8.
  put_string("a");
  put_string("integer");
  b.append_int<std::uint64_t>(8, kOrder);
  b.append_int<std::uint64_t>(0, kOrder);
  put_string("");
  // b: integer, 4 bytes at offset 4 — inside a's extent: OMF102.
  put_string("b");
  put_string("integer");
  b.append_int<std::uint64_t>(4, kOrder);
  b.append_int<std::uint64_t>(4, kOrder);
  put_string("");
  return b;
}

bool contains_code(const std::vector<analysis::Diagnostic>& diags,
                   const char* code) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const analysis::Diagnostic& d) {
                       return d.code == code;
                     });
}

TEST(GatewayAudit, RejectsHostileBundleAtomically) {
  pbio::FormatRegistry registry;
  auto staging = registry.register_format("ASDOffEvent", asdoff_fields(),
                                          sizeof(AsdOff));
  core::Gateway gateway(registry, staging, staging);
  Buffer bundle = hostile_bundle();

  std::size_t before = registry.size();
  try {
    gateway.register_remote_format(bundle.span());
    FAIL() << "hostile bundle registered";
  } catch (const analysis::AuditError& e) {
    EXPECT_EQ(e.subject(), "EvilRemote");
    EXPECT_TRUE(analysis::has_errors(e.diagnostics()));
    EXPECT_TRUE(contains_code(e.diagnostics(), analysis::codes::kFieldOverlap));
  }
  EXPECT_EQ(registry.size(), before);  // nothing registered
  EXPECT_EQ(registry.by_name("EvilRemote"), nullptr);
}

TEST(GatewayAudit, DisabledPolicyFallsThroughToRegistryValidation) {
  pbio::FormatRegistry registry;
  auto staging = registry.register_format("ASDOffEvent", asdoff_fields(),
                                          sizeof(AsdOff));
  core::Gateway gateway(registry, staging, staging);
  analysis::AuditPolicy off;
  off.enabled = false;
  gateway.set_audit_policy(off);

  // Without the audit, the overlap is still caught — but only as an
  // unstructured FormatError deep in registration.
  Buffer bundle = hostile_bundle();
  EXPECT_THROW(gateway.register_remote_format(bundle.span()), FormatError);
}

TEST(GatewayAudit, AcceptsCleanBundle) {
  pbio::FormatRegistry remote_registry;
  auto remote = remote_registry.register_format("ASDOffEvent", asdoff_fields(),
                                                sizeof(AsdOff));
  Buffer bundle = pbio::serialize_format_bundle(*remote);

  pbio::FormatRegistry registry;
  auto staging = registry.register_format("Staging", asdoff_fields(),
                                          sizeof(AsdOff));
  core::Gateway gateway(registry, staging, staging);
  pbio::FormatHandle learned = gateway.register_remote_format(bundle.span());
  ASSERT_TRUE(learned);
  EXPECT_EQ(learned->name(), "ASDOffEvent");
}

TEST(ContextAudit, RejectsBadSchemaAtDiscovery) {
  static const char* kCollidingSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Collide">
    <xsd:element name="samples" type="xsd:int" maxOccurs="*" />
    <xsd:element name="samples_count" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>
)";
  core::Context ctx;
  ctx.compiled_in().add("http://meta/bad.xml", kCollidingSchema);

  try {
    ctx.discover_and_register("http://meta/bad.xml");
    FAIL() << "colliding count schema registered";
  } catch (const analysis::AuditError& e) {
    EXPECT_TRUE(
        contains_code(e.diagnostics(), analysis::codes::kCountNameCollision));
  }
  EXPECT_EQ(ctx.registry().by_name("Collide"), nullptr);
}

TEST(ContextAudit, AcceptsGoodSchemaAndRemoteBundle) {
  core::Context ctx;
  ctx.compiled_in().add("http://meta/asdoff.xml", kAsdOffSchema);
  std::vector<pbio::FormatHandle> handles =
      ctx.discover_and_register("http://meta/asdoff.xml");
  ASSERT_EQ(handles.size(), 1u);
  EXPECT_EQ(handles[0]->name(), "ASDOffEvent");

  pbio::FormatRegistry remote_registry;
  auto remote = remote_registry.register_format("RemoteOff", asdoff_fields(),
                                                sizeof(AsdOff));
  Buffer bundle = pbio::serialize_format_bundle(*remote);
  pbio::FormatHandle learned = ctx.register_remote_bundle(bundle.span());
  ASSERT_TRUE(learned);
  EXPECT_EQ(learned->name(), "RemoteOff");
  EXPECT_NE(ctx.registry().by_name("RemoteOff"), nullptr);
}

TEST(ContextAudit, RejectsHostileRemoteBundle) {
  core::Context ctx;
  Buffer bundle = hostile_bundle();
  std::size_t before = ctx.registry().size();
  EXPECT_THROW(ctx.register_remote_bundle(bundle.span()),
               analysis::AuditError);
  EXPECT_EQ(ctx.registry().size(), before);
}

// --- Truncated-message regression (the checked decode path) -----------------

TEST(TruncatedMessages, EveryStrictPrefixFailsCleanly) {
  pbio::FormatRegistry registry;
  auto fmt_a = registry.register_format("ASDOffEvent", asdoff_fields(),
                                        sizeof(AsdOff));
  auto fmt_b = registry.register_format("ASDOffEventB", asdoffb_fields(),
                                        sizeof(AsdOffB));
  pbio::Decoder decoder(registry);

  AsdOff a;
  fill_asdoff(a, 1);
  Buffer msg_a = pbio::encode(*fmt_a, &a);

  AsdOffB b;
  unsigned long eta[3];
  fill_asdoffb(b, eta, 3, 2);
  Buffer msg_b = pbio::encode(*fmt_b, &b);

  struct Case {
    const Buffer* message;
    pbio::FormatHandle format;
  };
  for (const Case& c : {Case{&msg_a, fmt_a}, Case{&msg_b, fmt_b}}) {
    alignas(alignof(std::max_align_t)) std::uint8_t out[sizeof(AsdOffB)];

    // Sanity: the full message decodes on both paths.
    {
      pbio::DecodeArena arena;
      decoder.decode(c.message->span(), *c.format, out, arena);
      std::vector<std::uint8_t> copy(c.message->data(),
                                     c.message->data() + c.message->size());
      EXPECT_NE(pbio::Decoder::decode_in_place(*c.format, copy.data(),
                                               copy.size()),
                nullptr);
    }

    for (std::size_t len = 0; len < c.message->size(); ++len) {
      std::span<const std::uint8_t> cut(c.message->data(), len);
      pbio::DecodeArena arena;
      EXPECT_THROW(decoder.decode(cut, *c.format, out, arena), DecodeError)
          << c.format->name() << " at length " << len;

      std::vector<std::uint8_t> copy(c.message->data(),
                                     c.message->data() + len);
      EXPECT_THROW(
          pbio::Decoder::decode_in_place(*c.format, copy.data(), len),
          DecodeError)
          << c.format->name() << " in place at length " << len;
    }
  }
}

TEST(TruncatedMessages, OverlongBodyLengthIsRejected) {
  pbio::FormatRegistry registry;
  auto fmt = registry.register_format("ASDOffEvent", asdoff_fields(),
                                      sizeof(AsdOff));
  pbio::Decoder decoder(registry);

  AsdOff a;
  fill_asdoff(a, 3);
  Buffer msg = pbio::encode(*fmt, &a);
  std::vector<std::uint8_t> corrupt(msg.data(), msg.data() + msg.size());
  // body_length lives at header bytes 4..8; claim far more than is there.
  std::memset(corrupt.data() + 4, 0xFF, 4);

  alignas(alignof(std::max_align_t)) std::uint8_t out[sizeof(AsdOff)];
  pbio::DecodeArena arena;
  EXPECT_THROW(decoder.decode(corrupt, *fmt, out, arena), DecodeError);
  EXPECT_THROW(
      pbio::Decoder::decode_in_place(*fmt, corrupt.data(), corrupt.size()),
      DecodeError);
}

// --- omf-lint CLI contract ---------------------------------------------------
//
// Exit codes are the tool's API for CI: 0 clean, 1 findings (errors always;
// warnings under --werror), 2 usage error. The --werror accumulation bug
// class this guards against: a clean file processed *after* a warning file
// must not reset the exit status.

class LintCli : public ::testing::Test {
protected:
  int run(const std::vector<std::string>& args) {
    out_ = std::tmpfile();
    err_ = std::tmpfile();
    return analysis::lint_cli(args, out_, err_);
  }
  static std::string slurp(std::FILE* f) {
    std::string text;
    std::rewind(f);
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    return text;
  }
  void TearDown() override {
    if (out_ != nullptr) std::fclose(out_);
    if (err_ != nullptr) std::fclose(err_);
  }
  std::FILE* out_ = nullptr;
  std::FILE* err_ = nullptr;

  const std::string warning_only_ =
      std::string(OMF_LINT_CORPUS_DIR) + "/misaligned__OMF105.fmt";
  const std::string error_ =
      std::string(OMF_LINT_CORPUS_DIR) + "/overlap__OMF102.fmt";
  const std::string clean_ =
      std::string(OMF_EXAMPLE_SCHEMAS_DIR) + "/asd-position.xsd";
};

TEST_F(LintCli, CleanInputExitsZero) { EXPECT_EQ(run({clean_}), 0); }

TEST_F(LintCli, WarningsExitZeroWithoutWerror) {
  EXPECT_EQ(run({warning_only_}), 0);
  EXPECT_NE(slurp(err_).find("OMF105"), std::string::npos);
}

TEST_F(LintCli, WerrorPromotesWarnings) {
  EXPECT_EQ(run({"--werror", warning_only_}), 1);
}

TEST_F(LintCli, WerrorSurvivesTrailingCleanInput) {
  // The regression: warnings in an early file, clean files after — the
  // accumulated count must still fail the run.
  EXPECT_EQ(run({"--werror", warning_only_, clean_}), 1);
  EXPECT_EQ(run({"--werror", clean_, warning_only_, clean_}), 1);
}

TEST_F(LintCli, ErrorsExitOneRegardless) {
  EXPECT_EQ(run({error_, clean_}), 1);
}

TEST_F(LintCli, NoInputsIsUsageError) { EXPECT_EQ(run({}), 2); }

TEST_F(LintCli, UnknownOptionIsUsageError) {
  EXPECT_EQ(run({"--frobnicate"}), 2);
}

TEST_F(LintCli, HelpDocumentsTheExitCodes) {
  EXPECT_EQ(run({"--help"}), 0);
  std::string help = slurp(err_);
  EXPECT_NE(help.find("exit codes"), std::string::npos) << help;
  for (const char* line : {"0 ", "1 ", "2 "}) {
    EXPECT_NE(help.find(line), std::string::npos);
  }
}

TEST_F(LintCli, JsonEmitsOneArrayAcrossAllInputs) {
  EXPECT_EQ(run({"--json", warning_only_, error_}), 1);
  std::string json = slurp(out_);
  EXPECT_EQ(json.find('['), 0u) << json;
  EXPECT_NE(json.find("\"code\":\"OMF105\""), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"OMF102\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"warning\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
}

// --- Diagnostics documentation sync ------------------------------------------

TEST(DiagnosticsDoc, InSyncWithCodeTable) {
  std::ifstream in(OMF_DIAGNOSTICS_MD, std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << OMF_DIAGNOSTICS_MD
      << " missing — regenerate with: omf-lint --codes-md > docs/DIAGNOSTICS.md";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), analysis::diagnostics_markdown())
      << "docs/DIAGNOSTICS.md is stale — regenerate with: "
         "omf-lint --codes-md > docs/DIAGNOSTICS.md";
}

TEST(DiagnosticsDoc, EveryCodeHasAnExample) {
  for (const analysis::CodeInfo& info : analysis::diagnostic_codes()) {
    EXPECT_NE(info.example, nullptr) << info.code;
    EXPECT_GT(std::strlen(info.example), 0u) << info.code;
  }
}

}  // namespace
}  // namespace omf
