// PBIO core: registration, NDR encode, homogeneous decode (copying and
// in-place), DynamicRecord, bundle serde.
#include <gtest/gtest.h>

#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "pbio/metaserde.hpp"
#include "pbio/record.hpp"
#include "pbio/wire.hpp"
#include "test_structs.hpp"

namespace omf {
namespace {

using namespace omf::testing;
using pbio::DecodeArena;
using pbio::Decoder;
using pbio::FormatHandle;
using pbio::FormatRegistry;
using pbio::IOField;

// --- Type string parsing -----------------------------------------------------

TEST(TypeString, ParsesPrimitives) {
  auto t = pbio::parse_type_string("integer");
  EXPECT_EQ(t.cls, pbio::FieldClass::kInteger);
  EXPECT_EQ(t.array, pbio::ArrayKind::kNone);

  EXPECT_EQ(pbio::parse_type_string("unsigned").cls,
            pbio::FieldClass::kUnsigned);
  EXPECT_EQ(pbio::parse_type_string("float").cls, pbio::FieldClass::kFloat);
  EXPECT_EQ(pbio::parse_type_string("double").cls, pbio::FieldClass::kFloat);
  EXPECT_EQ(pbio::parse_type_string("char").cls, pbio::FieldClass::kChar);
  EXPECT_EQ(pbio::parse_type_string("string").cls, pbio::FieldClass::kString);
}

TEST(TypeString, ParsesStaticArray) {
  auto t = pbio::parse_type_string("integer[5]");
  EXPECT_EQ(t.array, pbio::ArrayKind::kStatic);
  EXPECT_EQ(t.static_count, 5u);
}

TEST(TypeString, ParsesDynamicArray) {
  auto t = pbio::parse_type_string("unsigned[eta_count]");
  EXPECT_EQ(t.array, pbio::ArrayKind::kDynamic);
  EXPECT_EQ(t.size_field, "eta_count");
}

TEST(TypeString, ParsesNestedType) {
  auto t = pbio::parse_type_string("ASDOffEvent");
  EXPECT_EQ(t.cls, pbio::FieldClass::kNested);
  EXPECT_EQ(t.nested_name, "ASDOffEvent");
}

TEST(TypeString, RoundTripsThroughTypeString) {
  for (const char* s : {"integer", "unsigned[4]", "float[n]", "char",
                        "string", "Nested", "Nested[7]", "Nested[count]"}) {
    EXPECT_EQ(pbio::type_string(pbio::parse_type_string(s)), s);
  }
}

TEST(TypeString, RejectsMalformed) {
  EXPECT_THROW(pbio::parse_type_string("integer["), FormatError);
  EXPECT_THROW(pbio::parse_type_string("integer[]"), FormatError);
  EXPECT_THROW(pbio::parse_type_string("integer[0]"), FormatError);
  EXPECT_THROW(pbio::parse_type_string("[5]"), FormatError);
  EXPECT_THROW(pbio::parse_type_string("string[3]"), FormatError);
  EXPECT_THROW(pbio::parse_type_string("string[n]"), FormatError);
}

// --- Registration ------------------------------------------------------------

TEST(Registry, RegistersStructureA) {
  FormatRegistry reg;
  auto f = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->name(), "ASDOffEvent");
  EXPECT_EQ(f->struct_size(), sizeof(AsdOff));
  EXPECT_EQ(f->fields().size(), 8u);
  EXPECT_TRUE(f->has_pointers());
  EXPECT_NE(f->id(), 0u);
}

TEST(Registry, LookupByNameAndId) {
  FormatRegistry reg;
  auto f = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  EXPECT_EQ(reg.by_name("ASDOffEvent"), f);
  EXPECT_EQ(reg.by_id(f->id()), f);
  EXPECT_EQ(reg.by_name("nope"), nullptr);
  EXPECT_EQ(reg.by_id(12345), nullptr);
}

TEST(Registry, IdenticalReRegistrationDeduplicates) {
  FormatRegistry reg;
  auto a = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  auto b = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, IndependentRegistriesAgreeOnId) {
  FormatRegistry r1, r2;
  auto a = r1.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  auto b = r2.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  EXPECT_EQ(a->id(), b->id());
}

TEST(Registry, DifferentMetadataDifferentId) {
  FormatRegistry reg;
  auto fields = asdoff_fields();
  auto v1 = reg.register_format("E", fields, sizeof(AsdOff));
  fields[2].name = "flightNumber";
  auto v2 = reg.register_format("E", fields, sizeof(AsdOff));
  EXPECT_NE(v1->id(), v2->id());
  // Latest wins for name lookup; both reachable by id.
  EXPECT_EQ(reg.by_name("E"), v2);
  EXPECT_EQ(reg.by_id(v1->id()), v1);
}

TEST(Registry, NestedResolution) {
  FormatRegistry reg;
  auto [b, c] = register_nested_pair(reg);
  const pbio::Field* one = c->field_named("one");
  ASSERT_NE(one, nullptr);
  EXPECT_EQ(one->subformat, b);
  EXPECT_TRUE(c->has_pointers());
}

TEST(Registry, RejectsUnknownNested) {
  FormatRegistry reg;
  std::vector<IOField> fields = {{"x", "NoSuchFormat", 16, 0}};
  EXPECT_THROW(reg.register_format("F", fields, 16), FormatError);
}

TEST(Registry, RejectsDuplicateFieldNames) {
  FormatRegistry reg;
  std::vector<IOField> fields = {{"x", "integer", 4, 0},
                                 {"x", "integer", 4, 4}};
  EXPECT_THROW(reg.register_format("F", fields, 8), FormatError);
}

TEST(Registry, RejectsMissingCountField) {
  FormatRegistry reg;
  std::vector<IOField> fields = {{"arr", "integer[n]", 4, 0}};
  EXPECT_THROW(reg.register_format("F", fields, 8), FormatError);
}

TEST(Registry, RejectsNonIntegerCountField) {
  FormatRegistry reg;
  std::vector<IOField> fields = {{"arr", "integer[n]", 4, 0},
                                 {"n", "float", 4, 8}};
  EXPECT_THROW(reg.register_format("F", fields, 16), FormatError);
}

TEST(Registry, RejectsOverlappingFields) {
  FormatRegistry reg;
  std::vector<IOField> fields = {{"a", "integer", 4, 0},
                                 {"b", "integer", 4, 2}};
  EXPECT_THROW(reg.register_format("F", fields, 8), FormatError);
}

TEST(Registry, RejectsFieldPastStructEnd) {
  FormatRegistry reg;
  std::vector<IOField> fields = {{"a", "integer", 4, 8}};
  EXPECT_THROW(reg.register_format("F", fields, 8), FormatError);
}

TEST(Registry, RejectsBadScalarWidths) {
  FormatRegistry reg;
  std::vector<IOField> bad_int = {{"a", "integer", 3, 0}};
  EXPECT_THROW(reg.register_format("F", bad_int, 8), FormatError);
  std::vector<IOField> bad_float = {{"a", "float", 2, 0}};
  EXPECT_THROW(reg.register_format("F", bad_float, 8), FormatError);
  std::vector<IOField> bad_char = {{"a", "char", 2, 0}};
  EXPECT_THROW(reg.register_format("F", bad_char, 8), FormatError);
}

TEST(Registry, RejectsEmptyFormat) {
  FormatRegistry reg;
  std::vector<IOField> none;
  EXPECT_THROW(reg.register_format("F", none, 0), FormatError);
  EXPECT_THROW(reg.register_format("", asdoff_fields(), sizeof(AsdOff)),
               FormatError);
}

// --- Round trips, copying decode --------------------------------------------

class RoundTrip : public ::testing::Test {
protected:
  FormatRegistry reg;
};

TEST_F(RoundTrip, StructureA) {
  auto f = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  AsdOff in;
  fill_asdoff(in, 7);
  Buffer wire = pbio::encode(*f, &in);

  Decoder dec(reg);
  AsdOff out{};
  DecodeArena arena;
  dec.decode(wire.span(), *f, &out, arena);
  EXPECT_TRUE(asdoff_equal(in, out));
}

TEST_F(RoundTrip, StructureB) {
  auto f =
      reg.register_format("ASDOffEventB", asdoffb_fields(), sizeof(AsdOffB));
  unsigned long etas[3];
  AsdOffB in;
  fill_asdoffb(in, etas, 3, 5);
  Buffer wire = pbio::encode(*f, &in);

  Decoder dec(reg);
  AsdOffB out{};
  DecodeArena arena;
  dec.decode(wire.span(), *f, &out, arena);
  EXPECT_TRUE(asdoffb_equal(in, out));
}

TEST_F(RoundTrip, StructureBEmptyDynamicArray) {
  auto f =
      reg.register_format("ASDOffEventB", asdoffb_fields(), sizeof(AsdOffB));
  AsdOffB in;
  fill_asdoffb(in, nullptr, 0, 1);
  Buffer wire = pbio::encode(*f, &in);

  Decoder dec(reg);
  AsdOffB out{};
  DecodeArena arena;
  dec.decode(wire.span(), *f, &out, arena);
  EXPECT_TRUE(asdoffb_equal(in, out));
  EXPECT_EQ(out.eta, nullptr);
}

TEST_F(RoundTrip, StructureCD_Nesting) {
  register_nested_pair(reg);
  auto c = reg.by_name("threeASDOffs");

  unsigned long e1[2], e2[4], e3[1];
  ThreeAsdOffs in{};
  fill_asdoffb(in.one, e1, 2, 1);
  in.bart = 3.14159;
  fill_asdoffb(in.two, e2, 4, 2);
  in.lisa = -2.71828;
  fill_asdoffb(in.three, e3, 1, 3);

  Buffer wire = pbio::encode(*c, &in);
  Decoder dec(reg);
  ThreeAsdOffs out{};
  DecodeArena arena;
  dec.decode(wire.span(), *c, &out, arena);
  EXPECT_TRUE(three_asdoffs_equal(in, out));
}

TEST_F(RoundTrip, NullStringsSurvive) {
  auto f = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  AsdOff in;
  fill_asdoff(in);
  in.equip = nullptr;
  in.dest = nullptr;
  Buffer wire = pbio::encode(*f, &in);

  Decoder dec(reg);
  AsdOff out{};
  DecodeArena arena;
  dec.decode(wire.span(), *f, &out, arena);
  EXPECT_EQ(out.equip, nullptr);
  EXPECT_EQ(out.dest, nullptr);
  EXPECT_STREQ(out.org, "ATL");
}

TEST_F(RoundTrip, EmptyStringIsNotNull) {
  auto f = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  AsdOff in;
  fill_asdoff(in);
  in.equip = const_cast<char*>("");
  Buffer wire = pbio::encode(*f, &in);

  Decoder dec(reg);
  AsdOff out{};
  DecodeArena arena;
  dec.decode(wire.span(), *f, &out, arena);
  ASSERT_NE(out.equip, nullptr);
  EXPECT_STREQ(out.equip, "");
}

TEST_F(RoundTrip, FormatWithoutPointersIsVerbatim) {
  struct Plain {
    int a;
    double b;
    char c;
  };
  std::vector<IOField> fields = {
      {"a", "integer", sizeof(int), offsetof(Plain, a)},
      {"b", "float", sizeof(double), offsetof(Plain, b)},
      {"c", "char", 1, offsetof(Plain, c)},
  };
  auto f = reg.register_format("Plain", fields, sizeof(Plain));
  EXPECT_FALSE(f->has_pointers());

  Plain in{42, 9.5, 'x'};
  Buffer wire = pbio::encode(*f, &in);
  // Body is the struct bytes, verbatim (the NDR property).
  ASSERT_EQ(wire.size(), pbio::WireHeader::kSize + sizeof(Plain));
  EXPECT_EQ(std::memcmp(wire.data() + pbio::WireHeader::kSize, &in,
                        sizeof(Plain)),
            0);
}

TEST_F(RoundTrip, EncodedSizeMatchesActual) {
  auto f =
      reg.register_format("ASDOffEventB", asdoffb_fields(), sizeof(AsdOffB));
  unsigned long etas[3];
  AsdOffB in;
  fill_asdoffb(in, etas, 3);
  Buffer wire = pbio::encode(*f, &in);
  // encoded_size is an upper bound that is exact up to alignment padding.
  EXPECT_GE(pbio::encoded_size(*f, &in), wire.size());
  EXPECT_LE(pbio::encoded_size(*f, &in), wire.size() + 16);
}

TEST_F(RoundTrip, NegativeDynamicCountThrows) {
  auto f =
      reg.register_format("ASDOffEventB", asdoffb_fields(), sizeof(AsdOffB));
  unsigned long etas[1];
  AsdOffB in;
  fill_asdoffb(in, etas, 1);
  in.eta_count = -4;
  Buffer out;
  EXPECT_THROW(pbio::encode(*f, &in, out), EncodeError);
}

TEST_F(RoundTrip, NullArrayWithNonzeroCountThrows) {
  auto f =
      reg.register_format("ASDOffEventB", asdoffb_fields(), sizeof(AsdOffB));
  AsdOffB in;
  fill_asdoffb(in, nullptr, 0);
  in.eta_count = 2;  // lies about the null pointer
  Buffer out;
  EXPECT_THROW(pbio::encode(*f, &in, out), EncodeError);
}

// --- In-place (zero-copy) decode ----------------------------------------------

TEST_F(RoundTrip, InPlaceDecodeStructureA) {
  auto f = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  AsdOff in;
  fill_asdoff(in, 3);
  Buffer wire = pbio::encode(*f, &in);

  auto* out = static_cast<AsdOff*>(
      Decoder::decode_in_place(*f, wire.data(), wire.size()));
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(asdoff_equal(in, *out));
  // Strings point INTO the wire buffer: zero copies.
  EXPECT_GE(reinterpret_cast<const std::uint8_t*>(out->cntrId), wire.data());
  EXPECT_LT(reinterpret_cast<const std::uint8_t*>(out->cntrId),
            wire.data() + wire.size());
}

TEST_F(RoundTrip, InPlaceDecodeStructureCD) {
  register_nested_pair(reg);
  auto c = reg.by_name("threeASDOffs");
  unsigned long e1[2], e2[4], e3[1];
  ThreeAsdOffs in{};
  fill_asdoffb(in.one, e1, 2, 1);
  in.bart = 1.5;
  fill_asdoffb(in.two, e2, 4, 2);
  in.lisa = 2.5;
  fill_asdoffb(in.three, e3, 1, 3);
  Buffer wire = pbio::encode(*c, &in);

  auto* out = static_cast<ThreeAsdOffs*>(
      Decoder::decode_in_place(*c, wire.data(), wire.size()));
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(three_asdoffs_equal(in, *out));
}

TEST_F(RoundTrip, InPlaceRejectsForeignFormatId) {
  auto a = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  auto b =
      reg.register_format("ASDOffEventB", asdoffb_fields(), sizeof(AsdOffB));
  AsdOff in;
  fill_asdoff(in);
  Buffer wire = pbio::encode(*a, &in);
  EXPECT_THROW(Decoder::decode_in_place(*b, wire.data(), wire.size()),
               DecodeError);
}

// --- Malformed wire data ------------------------------------------------------

TEST_F(RoundTrip, TruncatedMessageThrows) {
  auto f = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  AsdOff in;
  fill_asdoff(in);
  Buffer wire = pbio::encode(*f, &in);

  Decoder dec(reg);
  AsdOff out{};
  DecodeArena arena;
  for (std::size_t len :
       {std::size_t{0}, std::size_t{3}, std::size_t{15},
        pbio::WireHeader::kSize, wire.size() - 1}) {
    EXPECT_THROW(dec.decode({wire.data(), len}, *f, &out, arena), DecodeError)
        << "length " << len;
  }
}

TEST_F(RoundTrip, BadMagicThrows) {
  auto f = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  AsdOff in;
  fill_asdoff(in);
  Buffer wire = pbio::encode(*f, &in);
  wire.data()[0] = 0x00;

  Decoder dec(reg);
  AsdOff out{};
  DecodeArena arena;
  EXPECT_THROW(dec.decode(wire.span(), *f, &out, arena), DecodeError);
}

TEST_F(RoundTrip, UnknownFormatIdThrows) {
  auto f = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  AsdOff in;
  fill_asdoff(in);
  Buffer wire = pbio::encode(*f, &in);

  FormatRegistry empty;
  // Register a different format so `native` resolves but the wire id not.
  auto other =
      empty.register_format("ASDOffEventB", asdoffb_fields(), sizeof(AsdOffB));
  Decoder dec(empty);
  AsdOffB out{};
  DecodeArena arena;
  EXPECT_THROW(dec.decode(wire.span(), *other, &out, arena), FormatError);
}

TEST_F(RoundTrip, CorruptStringOffsetThrows) {
  auto f = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  AsdOff in;
  fill_asdoff(in);
  Buffer wire = pbio::encode(*f, &in);
  // Stomp the first pointer slot with an out-of-range offset.
  std::uint64_t bad = 0xFFFFFF;
  std::memcpy(wire.data() + pbio::WireHeader::kSize + offsetof(AsdOff, cntrId),
              &bad, sizeof(bad));

  Decoder dec(reg);
  AsdOff out{};
  DecodeArena arena;
  EXPECT_THROW(dec.decode(wire.span(), *f, &out, arena), DecodeError);
}

TEST_F(RoundTrip, PeekFormatId) {
  auto f = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  AsdOff in;
  fill_asdoff(in);
  Buffer wire = pbio::encode(*f, &in);
  EXPECT_EQ(Decoder::peek_format_id(wire.span()), f->id());
}

// --- Format bundles ------------------------------------------------------------

TEST(MetaSerde, BundleRoundTripsFlatFormat) {
  FormatRegistry a, b;
  auto f = a.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  Buffer bundle = pbio::serialize_format_bundle(*f);
  auto g = pbio::deserialize_format_bundle(b, bundle.span());
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->id(), f->id());
  EXPECT_EQ(g->struct_size(), f->struct_size());
  EXPECT_EQ(g->fields().size(), f->fields().size());
}

TEST(MetaSerde, BundleCarriesNestedDependencies) {
  FormatRegistry a, b;
  auto [fb, fc] = register_nested_pair(a);
  Buffer bundle = pbio::serialize_format_bundle(*fc);
  auto g = pbio::deserialize_format_bundle(b, bundle.span());
  EXPECT_EQ(g->id(), fc->id());
  // The nested dependency must have arrived too.
  EXPECT_NE(b.by_id(fb->id()), nullptr);
}

TEST(MetaSerde, RejectsGarbage) {
  FormatRegistry reg;
  std::vector<std::uint8_t> junk = {1, 2, 3, 4, 5};
  EXPECT_THROW(pbio::deserialize_format_bundle(reg, junk), DecodeError);
}

// --- DynamicRecord --------------------------------------------------------------

class RecordTest : public ::testing::Test {
protected:
  void SetUp() override {
    register_nested_pair(reg);
    format_b = reg.by_name("ASDOffEventB");
    format_c = reg.by_name("threeASDOffs");
  }
  FormatRegistry reg;
  FormatHandle format_b, format_c;
};

TEST_F(RecordTest, ScalarAccessors) {
  pbio::DynamicRecord r(format_b);
  r.set_string("cntrId", "ZID");
  r.set_int("fltNum", 882);
  EXPECT_STREQ(r.get_string("cntrId"), "ZID");
  EXPECT_EQ(r.get_int("fltNum"), 882);
  EXPECT_EQ(r.get_string("arln"), nullptr);  // unset string is null
}

TEST_F(RecordTest, ArrayAccessors) {
  pbio::DynamicRecord r(format_b);
  std::vector<std::int64_t> off = {10, 20, 30, 40, 50};
  r.set_int_array("off", off);
  EXPECT_EQ(r.get_int_array("off"), off);

  std::vector<std::int64_t> eta = {7, 8};
  r.set_int_array("eta", eta);
  EXPECT_EQ(r.get_int_array("eta"), eta);
  EXPECT_EQ(r.get_int("eta_count"), 2);  // companion count auto-updated
  EXPECT_EQ(r.array_length("eta"), 2u);
}

TEST_F(RecordTest, StaticArrayLengthMustMatch) {
  pbio::DynamicRecord r(format_b);
  std::vector<std::int64_t> wrong = {1, 2, 3};
  EXPECT_THROW(r.set_int_array("off", wrong), FormatError);
}

TEST_F(RecordTest, WrongClassThrows) {
  pbio::DynamicRecord r(format_b);
  EXPECT_THROW(r.set_float("fltNum", 1.0), FormatError);
  EXPECT_THROW(r.set_int("cntrId", 1), FormatError);
  EXPECT_THROW(r.get_string("fltNum"), FormatError);
  EXPECT_THROW(r.set_int("no_such_field", 1), FormatError);
}

TEST_F(RecordTest, NestedViewsShareStorage) {
  pbio::DynamicRecord r(format_c);
  r.set_float("bart", 6.5);
  auto one = r.nested("one");
  one.set_int("fltNum", 111);
  one.set_string("org", "JFK");
  EXPECT_EQ(r.nested("one").get_int("fltNum"), 111);
  EXPECT_STREQ(r.nested("one").get_string("org"), "JFK");
  EXPECT_DOUBLE_EQ(r.get_float("bart"), 6.5);
}

TEST_F(RecordTest, RecordMatchesCompiledStruct) {
  // The record's storage must be byte-compatible with the C struct.
  pbio::DynamicRecord r(format_b);
  r.set_string("cntrId", "ZTL");
  r.set_int("fltNum", 204);
  std::vector<std::int64_t> off = {0, 1000, 2000, 3000, 4000};
  r.set_int_array("off", off);

  const auto* s = static_cast<const AsdOffB*>(r.data());
  EXPECT_STREQ(s->cntrId, "ZTL");
  EXPECT_EQ(s->fltNum, 204);
  EXPECT_EQ(s->off[3], 3000ul);
}

TEST_F(RecordTest, EncodeDecodeRoundTrip) {
  pbio::DynamicRecord in(format_b);
  in.set_string("cntrId", "ZNY");
  in.set_string("arln", "UA");
  in.set_int("fltNum", 42);
  in.set_string("equip", "A320");
  in.set_string("org", "EWR");
  in.set_string("dest", "ORD");
  std::vector<std::int64_t> off = {1, 2, 3, 4, 5};
  in.set_int_array("off", off);
  std::vector<std::int64_t> eta = {100, 200, 300};
  in.set_int_array("eta", eta);

  Buffer wire = in.encode();
  Decoder dec(reg);
  pbio::DynamicRecord out(format_b);
  out.from_wire(dec, wire.span());
  EXPECT_TRUE(in.deep_equals(out));
}

TEST_F(RecordTest, DeepEqualsDetectsDifferences) {
  pbio::DynamicRecord a(format_b), b(format_b);
  a.set_int("fltNum", 1);
  b.set_int("fltNum", 1);
  EXPECT_TRUE(a.deep_equals(b));
  b.set_int("fltNum", 2);
  EXPECT_FALSE(a.deep_equals(b));
  b.set_int("fltNum", 1);
  b.set_string("org", "LAX");
  EXPECT_FALSE(a.deep_equals(b));
}

TEST_F(RecordTest, ToStringMentionsFieldsAndValues) {
  pbio::DynamicRecord r(format_b);
  r.set_int("fltNum", 77);
  r.set_string("org", "SEA");
  std::string s = r.to_string();
  EXPECT_NE(s.find("fltNum=77"), std::string::npos);
  EXPECT_NE(s.find("\"SEA\""), std::string::npos);
}

TEST_F(RecordTest, RequiresNativeProfile) {
  FormatRegistry reg2;
  std::vector<pbio::FieldSpec> specs = {{"x", "integer", 4}};
  auto foreign = reg2.register_computed("F", specs, arch::sparc64());
  EXPECT_THROW(pbio::DynamicRecord r(foreign), FormatError);
}

}  // namespace
}  // namespace omf
