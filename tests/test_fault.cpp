// Fault tolerance: deadlines, retry/backoff, circuit breaker, graceful
// degradation, and seeded chaos against the fault-injection harness.
//
// The chaos sweep reads OMF_CHAOS_SEED from the environment (default 1) so
// CI can run the same suite under several fixed seeds; any failure
// reproduces locally from the seed alone.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "arch/profile.hpp"
#include "core/discovery.hpp"
#include "fault/circuit_breaker.hpp"
#include "fault/faulty.hpp"
#include "http/http.hpp"
#include "pbio/decode.hpp"
#include "pbio/format.hpp"
#include "transport/ndr_connection.hpp"
#include "test_structs.hpp"
#include "transport/format_service.hpp"
#include "transport/net_io.hpp"
#include "transport/remote_backbone.hpp"
#include "transport/tcp.hpp"
#include "util/bytes.hpp"
#include "util/deadline.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"

namespace omf::fault {
namespace {

using namespace std::chrono_literals;
using namespace omf::testing;
using transport::TcpConnection;
using transport::TcpListener;
using transport::tcp_connect;

Buffer text_buffer(std::string_view text) {
  Buffer b;
  b.append(text);
  return b;
}

std::string as_text(const Buffer& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

// --- Deadline ---------------------------------------------------------------

TEST(DeadlineTest, NeverNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.is_never());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.poll_timeout_ms(), -1);
  EXPECT_TRUE(Deadline::never().is_never());
}

TEST(DeadlineTest, FromTimeoutZeroMeansNever) {
  EXPECT_TRUE(Deadline::from_timeout(0ms).is_never());
  EXPECT_TRUE(Deadline::from_timeout(-5ms).is_never());
  EXPECT_FALSE(Deadline::from_timeout(5ms).is_never());
}

TEST(DeadlineTest, ExpiresAndClampsPollTimeout) {
  Deadline d = Deadline::after(30ms);
  EXPECT_FALSE(d.expired());
  int first = d.poll_timeout_ms();
  EXPECT_GE(first, 0);
  EXPECT_LE(first, 30);
  std::this_thread::sleep_for(40ms);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.poll_timeout_ms(), 0);
  EXPECT_EQ(d.remaining(), std::chrono::milliseconds::zero());
}

// --- Retry ------------------------------------------------------------------

TEST(RetryTest, BackoffIsDeterministicPerSeed) {
  RetryPolicy a;
  RetryPolicy b;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_EQ(a.backoff(attempt), b.backoff(attempt)) << attempt;
  }
  RetryPolicy other;
  other.seed = 12345;
  bool any_different = false;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    any_different |= a.backoff(attempt) != other.backoff(attempt);
  }
  EXPECT_TRUE(any_different);
}

TEST(RetryTest, BackoffGrowsExponentiallyWithinJitterAndCap) {
  RetryPolicy p;
  p.base = 100ms;
  p.cap = 1000ms;
  p.jitter = 0.2;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    std::int64_t nominal = std::min<std::int64_t>(
        1000, 100ll << (attempt - 1));
    auto d = p.backoff(attempt).count();
    EXPECT_GE(d, nominal * 80 / 100) << attempt;
    EXPECT_LE(d, nominal * 120 / 100) << attempt;
  }
}

TEST(RetryTest, RetryCallConvergesOnTransientFailure) {
  RetryPolicy p;
  p.max_attempts = 5;
  std::vector<std::chrono::milliseconds> slept;
  int calls = 0;
  int result = retry_call(
      p,
      [&] {
        if (++calls < 3) throw TransportError("transient");
        return 42;
      },
      [&](std::chrono::milliseconds d) { slept.push_back(d); });
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_EQ(slept[0], p.backoff(1));
  EXPECT_EQ(slept[1], p.backoff(2));
}

TEST(RetryTest, RetryCallDoesNotRetryCorruptData) {
  RetryPolicy p;
  p.max_attempts = 5;
  int calls = 0;
  EXPECT_THROW(retry_call(
                   p,
                   [&]() -> int {
                     ++calls;
                     throw DecodeError("corrupt");
                   },
                   [](std::chrono::milliseconds) {}),
               DecodeError);
  EXPECT_EQ(calls, 1);  // retrying corrupt data cannot make it valid
}

TEST(RetryTest, RetryCallExhaustionRethrowsLastError) {
  RetryPolicy p;
  p.max_attempts = 3;
  int calls = 0;
  EXPECT_THROW(retry_call(
                   p,
                   [&]() -> int {
                     ++calls;
                     throw TimeoutError("slow");
                   },
                   [](std::chrono::milliseconds) {}),
               TimeoutError);
  EXPECT_EQ(calls, 3);
}

// --- Circuit breaker --------------------------------------------------------

TEST(CircuitBreakerTest, TripsAfterThresholdAndRejectsWhileOpen) {
  CircuitBreaker::Config cfg;
  cfg.failure_threshold = 3;
  cfg.cooldown = 10s;  // never elapses in this test
  CircuitBreaker breaker(cfg);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.allow());
    breaker.record_failure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow());
  EXPECT_FALSE(breaker.allow());
  EXPECT_EQ(breaker.rejected(), 2u);
}

TEST(CircuitBreakerTest, SuccessResetsFailureCount) {
  CircuitBreaker::Config cfg;
  cfg.failure_threshold = 2;
  CircuitBreaker breaker(cfg);
  breaker.record_failure();
  breaker.record_success();  // streak broken
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesAfterCooldown) {
  CircuitBreaker::Config cfg;
  cfg.failure_threshold = 1;
  cfg.cooldown = 30ms;
  cfg.half_open_successes = 2;
  CircuitBreaker breaker(cfg);
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow());
  std::this_thread::sleep_for(50ms);
  EXPECT_TRUE(breaker.allow());  // cooldown elapsed: probe admitted
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenFailureReopens) {
  CircuitBreaker::Config cfg;
  cfg.failure_threshold = 1;
  cfg.cooldown = 20ms;
  CircuitBreaker breaker(cfg);
  breaker.record_failure();
  std::this_thread::sleep_for(40ms);
  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();  // probe failed
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow());
}

// --- FaultyConnection -------------------------------------------------------

TEST(FaultyConnectionTest, CorruptedSendRejectedAtPeer) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpConnection conn = listener.accept();
    EXPECT_THROW(conn.receive(), TransportError);  // checksum mismatch
  });
  FaultAction corrupt;
  corrupt.kind = FaultKind::kCorrupt;
  corrupt.direction = Direction::kClientToServer;
  corrupt.frame = 0;
  FaultyConnection client(tcp_connect(listener.port()), {corrupt});
  client.send(text_buffer("precious payload"));
  EXPECT_EQ(client.faults_injected(), 1u);
  server.join();
}

TEST(FaultyConnectionTest, DroppedSendNeverArrives) {
  TcpListener listener(0);
  std::string got;
  std::thread server([&] {
    TcpConnection conn = listener.accept();
    auto msg = conn.receive();
    if (msg) got = as_text(*msg);
  });
  FaultAction drop;
  drop.kind = FaultKind::kDrop;
  drop.direction = Direction::kClientToServer;
  drop.frame = 0;
  FaultyConnection client(tcp_connect(listener.port()), {drop});
  client.send(text_buffer("lost"));
  client.send(text_buffer("delivered"));
  client.close();
  server.join();
  EXPECT_EQ(got, "delivered");
}

TEST(FaultyConnectionTest, TruncatedSendLeavesPeerMidFrame) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpConnection conn = listener.accept();
    EXPECT_THROW(conn.receive(), TransportError);  // closed mid-frame
  });
  FaultAction trunc;
  trunc.kind = FaultKind::kTruncate;
  trunc.direction = Direction::kClientToServer;
  trunc.frame = 0;
  trunc.keep_bytes = 7;  // header + 3 payload bytes
  FaultyConnection client(tcp_connect(listener.port()), {trunc});
  client.send(text_buffer("cut short"));
  EXPECT_FALSE(client.valid());
  server.join();
}

TEST(FaultyConnectionTest, ResetSendResetsPeer) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpConnection conn = listener.accept();
    EXPECT_THROW(conn.receive(), TransportError);  // ECONNRESET
  });
  FaultAction reset;
  reset.kind = FaultKind::kReset;
  reset.direction = Direction::kClientToServer;
  reset.frame = 0;
  FaultyConnection client(tcp_connect(listener.port()), {reset});
  client.send(text_buffer("never mind"));
  EXPECT_FALSE(client.valid());
  server.join();
}

TEST(FaultyConnectionTest, DelayedReceiveStillIntact) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpConnection conn = listener.accept();
    conn.send(text_buffer("worth the wait"));
  });
  FaultAction delay;
  delay.kind = FaultKind::kDelay;
  delay.direction = Direction::kServerToClient;
  delay.frame = 0;
  delay.delay = 30ms;
  FaultyConnection client(tcp_connect(listener.port()), {delay});
  auto start = std::chrono::steady_clock::now();
  auto msg = client.receive();
  server.join();
  ASSERT_TRUE(msg);
  EXPECT_EQ(as_text(*msg), "worth the wait");
  EXPECT_GE(std::chrono::steady_clock::now() - start, 30ms);
}

// --- FaultProxy -------------------------------------------------------------

TEST(FaultProxyTest, TransparentWithEmptyScript) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpConnection conn = listener.accept();
    for (;;) {
      auto msg = conn.receive();
      if (!msg) break;
      conn.send(*msg);  // echo
    }
  });
  FaultProxy proxy(listener.port());
  TcpConnection client = tcp_connect(proxy.port());
  for (int i = 0; i < 20; ++i) {
    client.send(text_buffer("echo-" + std::to_string(i)));
    auto reply = client.receive();
    ASSERT_TRUE(reply);
    EXPECT_EQ(as_text(*reply), "echo-" + std::to_string(i));
  }
  client.close();
  server.join();
  EXPECT_EQ(proxy.connections(), 1u);
  EXPECT_EQ(proxy.faults_injected(), 0u);
}

TEST(FaultProxyTest, DeadlineNotOvershotPastInjectedDelay) {
  // Tentpole acceptance: an injected stall must surface as TimeoutError at
  // the configured deadline, never a hang — and within 2x the deadline.
  TcpListener listener(0);
  std::thread server([&] {
    TcpConnection conn = listener.accept();
    auto msg = conn.receive();
    if (msg) conn.send(*msg);
  });
  FaultAction stall;
  stall.kind = FaultKind::kDelay;
  stall.direction = Direction::kServerToClient;
  stall.frame = 0;
  stall.delay = 2000ms;
  FaultProxy proxy(listener.port(), {stall});
  TcpConnection client = tcp_connect(proxy.port());
  client.set_timeouts({.connect = {}, .send = {}, .recv = 200ms});
  client.send(text_buffer("ping"));
  auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(client.receive(), TimeoutError);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, 400ms);  // < 2x the 200ms deadline
  client.close();
  server.join();
  proxy.stop();
}

TEST(FaultProxyTest, EveryCorruptedFrameRejectedNeverDelivered) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpConnection conn = listener.accept();
    for (;;) {
      auto msg = conn.receive();
      if (!msg) break;
      conn.send(*msg);
    }
  });
  FaultAction corrupt_all;
  corrupt_all.kind = FaultKind::kCorrupt;
  corrupt_all.direction = Direction::kServerToClient;
  corrupt_all.connection = -1;
  corrupt_all.frame = -1;  // recurring: every server->client frame
  corrupt_all.corrupt_seed = 0xBADC0DE;
  FaultProxy proxy(listener.port(), {corrupt_all});
  TcpConnection client = tcp_connect(proxy.port());
  for (int i = 0; i < 5; ++i) {
    client.send(text_buffer("important data " + std::to_string(i)));
    // The frame arrives whole and in sequence, but its CRC must fail: the
    // framing layer never hands corrupted bytes to the application.
    EXPECT_THROW(client.receive(), TransportError) << i;
  }
  client.close();
  server.join();
  EXPECT_EQ(proxy.faults_injected(), 5u);
}

TEST(FaultProxyTest, CorruptedMiddleFrameFailsBurstAfterIntactPrefix) {
  // A burst of NDR messages where one mid-burst frame is corrupted in
  // flight: the frames before it are delivered and decode exactly, the
  // corrupted one surfaces as TransportError (CRC, at the framing layer),
  // and nothing corrupt is ever handed to decode_batch.
  struct Tick {
    std::int64_t seq;
  };
  pbio::FormatRegistry sender_reg, receiver_reg;
  auto tick = sender_reg.register_format(
      "Tick", std::vector<pbio::IOField>{{"seq", "integer", 8, 0}},
      sizeof(Tick), arch::native());

  constexpr int kMessages = 6;
  TcpListener listener(0);
  std::thread sender([&] {
    transport::NdrConnection conn(listener.accept(), sender_reg);
    for (int i = 0; i < kMessages; ++i) {
      Tick t{i};
      conn.send_struct(*tick, &t);
    }
    // Keep the socket open until the client has seen the CRC failure, so
    // the error is the corruption, never a racing close.
    conn.receive();
  });

  FaultAction corrupt_one;
  corrupt_one.kind = FaultKind::kCorrupt;
  corrupt_one.direction = Direction::kServerToClient;
  corrupt_one.connection = -1;
  corrupt_one.frame = 3;  // frame 0 is the 'F' bundle; this is message #2
  corrupt_one.corrupt_seed = 0xBADC0DE;
  FaultProxy proxy(listener.port(), {corrupt_one});

  transport::NdrConnection conn(tcp_connect(proxy.port()), receiver_reg);
  std::vector<Buffer> delivered;
  bool failed = false;
  while (!failed) {
    try {
      if (conn.receive_batch(delivered, 64) == 0) break;
    } catch (const TransportError&) {
      failed = true;
    }
  }
  EXPECT_TRUE(failed);
  EXPECT_EQ(proxy.faults_injected(), 1u);

  // Exactly the intact prefix arrived: messages 0 and 1.
  ASSERT_EQ(delivered.size(), 2u);
  auto native_tick =
      receiver_reg.by_id(pbio::Decoder::peek_format_id(delivered[0].span()));
  ASSERT_NE(native_tick, nullptr);
  pbio::Decoder dec(receiver_reg);
  pbio::DecodeArena arena;
  std::span<const std::uint8_t> spans[2] = {delivered[0].span(),
                                            delivered[1].span()};
  Tick out[2] = {};
  void* ptrs[2] = {&out[0], &out[1]};
  dec.decode_batch(spans, 2, *native_tick, ptrs, arena);
  EXPECT_EQ(out[0].seq, 0);
  EXPECT_EQ(out[1].seq, 1);

  conn.close();
  sender.join();
}

TEST(FaultProxyTest, ResetTriggersReconnectAndResubscribe) {
  transport::EventBackbone backbone;
  transport::RemoteBackboneServer server(backbone);
  FaultAction reset;
  reset.kind = FaultKind::kReset;
  reset.direction = Direction::kServerToClient;
  reset.connection = 0;
  reset.frame = 1;  // second message on the first connection
  FaultProxy proxy(server.port(), {reset});

  transport::RemoteSubscription::ReconnectOptions opts;
  opts.enabled = true;
  opts.retry.max_attempts = 40;
  opts.retry.base = 5ms;
  opts.retry.cap = 25ms;
  transport::RemoteSubscription sub(proxy.port(), "armored", opts);
  for (int i = 0; i < 500 && backbone.subscriber_count("armored") == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  backbone.publish("armored", text_buffer("m0"));
  auto m0 = sub.receive();
  ASSERT_TRUE(m0);
  EXPECT_EQ(as_text(*m0), "m0");

  backbone.publish("armored", text_buffer("m1"));  // RST injected here

  // m1 dies with the connection (at-most-once); keep publishing m2 until
  // the resubscribed stream delivers it.
  std::atomic<bool> got_m2{false};
  std::thread publisher([&] {
    for (int i = 0; i < 2000 && !got_m2.load(); ++i) {
      backbone.publish("armored", text_buffer("m2"));
      std::this_thread::sleep_for(5ms);
    }
  });
  std::optional<Buffer> msg;
  do {
    msg = sub.receive();
    ASSERT_TRUE(msg);  // reconnect must succeed; server never went away
  } while (as_text(*msg) != "m2");
  got_m2.store(true);
  publisher.join();
  EXPECT_GE(sub.reconnects(), 1u);
  sub.close();
  server.stop();
  proxy.stop();
}

TEST(FaultProxyTest, FormatServiceRetriesThroughFlakyNetwork) {
  pbio::FormatRegistry sender_reg;
  auto f = sender_reg.register_format("ASDOffEvent", asdoff_fields(),
                                      sizeof(AsdOff));
  transport::FormatServiceServer server;
  server.publish(*f);

  FaultAction reset;
  reset.kind = FaultKind::kReset;
  reset.direction = Direction::kClientToServer;
  reset.connection = 0;
  reset.frame = 0;  // kill the first RPC's request frame
  FaultProxy proxy(server.port(), {reset});

  transport::FormatServiceClient::Options opts;
  opts.retry.max_attempts = 5;
  opts.retry.base = 5ms;
  opts.retry.cap = 25ms;
  opts.rpc_timeout = 2000ms;
  transport::FormatServiceClient client(proxy.port(), opts);
  pbio::FormatRegistry receiver_reg;
  auto fetched = client.fetch(receiver_reg, f->id());
  ASSERT_NE(fetched, nullptr);
  EXPECT_EQ(fetched->id(), f->id());
  EXPECT_GE(client.retries(), 1u);
  proxy.stop();
}

// --- Corrupt metadata is not retried ---------------------------------------

TEST(FaultTolerance, TruncatedBundleFromCorpusNotMaskedByRetry) {
  // The lint corpus's truncated bundle, served as a format-service
  // response: the transport retries transient faults, but a structurally
  // corrupt bundle must fail immediately as DecodeError — retrying corrupt
  // data cannot make it valid.
  std::ifstream in(
      std::string(OMF_LINT_CORPUS_DIR) + "/truncated_bundle__OMF001.fmt",
      std::ios::binary);
  ASSERT_TRUE(in) << "corpus file missing";
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string bundle = ss.str();
  ASSERT_EQ(bundle.substr(0, 4), "OBMF");

  TcpListener listener(0);
  std::thread fake_service([&] {
    TcpConnection conn = listener.accept();
    auto request = conn.receive();
    ASSERT_TRUE(request);
    Buffer response;
    response.append_int<std::uint32_t>(
        static_cast<std::uint32_t>(bundle.size()), ByteOrder::kLittle);
    response.append(bundle);
    conn.send(response);
  });

  transport::FormatServiceClient::Options opts;
  opts.retry.max_attempts = 5;
  opts.retry.base = 5ms;
  transport::FormatServiceClient client(listener.port(), opts);
  pbio::FormatRegistry reg;
  EXPECT_THROW(client.fetch(reg, 1), DecodeError);
  EXPECT_EQ(client.retries(), 0u);  // corruption was not retried
  fake_service.join();
}

// --- HTTP deadline ----------------------------------------------------------

TEST(FaultTolerance, HttpGetHonorsDeadlineAgainstSilentServer) {
  // A listener that accepts nothing: the TCP handshake completes out of
  // the backlog, then the server is silent forever.
  TcpListener listener(0);
  std::string url =
      "http://127.0.0.1:" + std::to_string(listener.port()) + "/meta.xml";
  auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(http::get(url, Deadline::after(200ms)), TimeoutError);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, 400ms);  // < 2x the deadline
}

// --- Discovery: breaker + stale cache ---------------------------------------

TEST(FaultTolerance, DiscoveryServesStaleBehindTrippedBreaker) {
  auto server = std::make_unique<http::Server>();
  std::uint16_t port = server->port();
  server->put_document("/m.xml", "<meta><format>asd</format></meta>");
  std::string url = server->url_for("/m.xml");

  core::DiscoveryManager dm;
  CircuitBreaker::Config cfg;
  cfg.failure_threshold = 2;
  cfg.cooldown = 100ms;
  dm.set_breaker_config(cfg);
  core::HttpSourceOptions http_opts;
  http_opts.fetch_timeout = 2000ms;
  dm.add_source(core::make_http_source(http_opts));

  auto fresh = dm.discover(url);
  ASSERT_NE(fresh, nullptr);
  dm.invalidate(url);  // metadata-change notification: refetch next time
  server->stop();
  server.reset();  // repository goes dark

  // Graceful degradation: every fetch fails, the stale copy is served.
  auto stale1 = dm.discover(url);
  EXPECT_EQ(stale1, fresh);
  auto stale2 = dm.discover(url);  // second failure trips the breaker
  EXPECT_EQ(stale2, fresh);
  ASSERT_NE(dm.source_breaker(0), nullptr);
  EXPECT_EQ(dm.source_breaker(0)->state(), CircuitBreaker::State::kOpen);

  auto fetches_before = dm.stats().fetches;
  auto stale3 = dm.discover(url);  // breaker open: no fetch attempt at all
  EXPECT_EQ(stale3, fresh);
  EXPECT_EQ(dm.stats().fetches, fetches_before);
  EXPECT_GE(dm.stats().breaker_skips, 1u);
  EXPECT_EQ(dm.stats().stale_served, 3u);

  // Repository comes back; after the cooldown a half-open probe succeeds
  // and fresh metadata flows again.
  http::Server revived(port);
  revived.put_document("/m.xml", "<meta><format>asd-v2</format></meta>");
  std::this_thread::sleep_for(150ms);
  auto recovered = dm.discover(url);
  ASSERT_NE(recovered, nullptr);
  EXPECT_NE(recovered, fresh);  // genuinely re-fetched, not stale
  EXPECT_EQ(dm.source_breaker(0)->state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(dm.stats().stale_served, 3u);  // no new degradation
}

TEST(FaultTolerance, DiscoveryWithoutStaleCopyStillThrows) {
  core::DiscoveryManager dm;
  core::HttpSourceOptions opts;
  opts.fetch_timeout = 200ms;
  dm.add_source(core::make_http_source(opts));
  TcpListener silent(0);  // real port, no HTTP behind it
  std::string url =
      "http://127.0.0.1:" + std::to_string(silent.port()) + "/nope.xml";
  EXPECT_THROW(dm.discover(url), DiscoveryError);
}

// --- Seeded chaos sweep -----------------------------------------------------

TEST(Chaos, SeededSweepDeliversOnlyIntactMessages) {
  std::uint64_t seed = 1;
  if (const char* env = std::getenv("OMF_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  SCOPED_TRACE("OMF_CHAOS_SEED=" + std::to_string(seed));

  transport::EventBackbone backbone;
  transport::RemoteBackboneServer server(backbone);
  FaultProxy proxy(server.port(), chaos_script(seed, /*connections=*/8,
                                               /*frames_per_connection=*/40,
                                               /*fault_rate=*/0.3));

  transport::RemoteSubscription::ReconnectOptions opts;
  opts.enabled = true;
  opts.retry.max_attempts = 50;
  opts.retry.base = 5ms;
  opts.retry.cap = 20ms;
  opts.retry.seed = seed;
  opts.recv_timeout = 250ms;
  transport::RemoteSubscription sub(proxy.port(), "chaos", opts);

  constexpr int kMessages = 120;
  std::vector<std::string> payloads;
  std::set<std::string> sent;
  Rng rng(seed);
  for (int i = 0; i < kMessages; ++i) {
    std::string m = "chaos-" + std::to_string(i) + ":" + rng.identifier(32);
    payloads.push_back(m);
    sent.insert(m);
  }

  std::atomic<bool> done{false};
  std::thread publisher([&] {
    for (int i = 0; i < 200 && backbone.subscriber_count("chaos") == 0; ++i) {
      std::this_thread::sleep_for(1ms);
    }
    for (const std::string& m : payloads) {
      backbone.publish("chaos", text_buffer(m));
      std::this_thread::sleep_for(2ms);
    }
    std::this_thread::sleep_for(100ms);
    done.store(true);
  });

  std::size_t received = 0;
  Deadline hard_stop = Deadline::after(30000ms);  // chaos must not hang
  for (;;) {
    ASSERT_FALSE(hard_stop.expired()) << "chaos sweep wedged";
    try {
      auto msg = sub.receive();
      if (!msg) break;
      // The invariant under any fault schedule: what reaches the
      // application is a message the publisher actually sent, intact.
      EXPECT_EQ(sent.count(as_text(*msg)), 1u)
          << "corrupted or fabricated message delivered";
      ++received;
    } catch (const TimeoutError&) {
      if (done.load()) break;  // stream idle and publisher finished
    } catch (const TransportError&) {
      break;  // reconnect exhausted — acceptable terminal state, not a hang
    }
  }
  publisher.join();
  EXPECT_LE(received, static_cast<std::size_t>(kMessages));  // at-most-once
  EXPECT_GT(received, 0u);  // chaos thinned the stream but did not kill it
  sub.close();
  server.stop();
  proxy.stop();
}

}  // namespace
}  // namespace omf::fault
