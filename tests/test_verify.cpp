// The plan bounds certifier end to end: the hostile-mutant corpus must be
// rejected with exactly the OMF4xx codes its filenames promise (each with a
// concrete counterexample message length), every plan the real metadata
// pipeline compiles must certify across profiles and plan-option ablations,
// the PlanCache must fail closed when verification is requested with no
// verifier installed, and the SIMD/scalar kernel equivalence sweep must be
// byte-identical at whatever tier this process dispatches.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/cli.hpp"
#include "analysis/verify_kernels.hpp"
#include "analysis/verify_plan.hpp"
#include "arch/profile.hpp"
#include "core/context.hpp"
#include "core/xml2wire.hpp"
#include "pbio/decode.hpp"
#include "pbio/plan_cache.hpp"
#include "test_structs.hpp"

namespace omf {
namespace {

using namespace omf::testing;
namespace fs = std::filesystem;
using analysis::PlanShape;
using analysis::VerifyResult;
using pbio::ConversionPlan;
using pbio::ConvOp;
using pbio::FormatHandle;
using pbio::FormatRegistry;
using pbio::PlanCache;
using pbio::PlanOptions;

// --- Hostile-mutant corpus --------------------------------------------------

/// Corpus files are named `<description>__<CODE>[+<CODE>].plan`; the
/// sentinel `__certified` means the plan must produce a certificate and no
/// diagnostics at all.
std::set<std::string> expected_codes(const fs::path& file) {
  std::string stem = file.stem().string();
  std::size_t sep = stem.find("__");
  EXPECT_NE(sep, std::string::npos)
      << "corpus file without __CODE suffix: " << file;
  std::set<std::string> out;
  std::string codes = stem.substr(sep + 2);
  if (codes == "certified") return out;
  std::size_t at = 0;
  while (at <= codes.size()) {
    std::size_t plus = codes.find('+', at);
    if (plus == std::string::npos) {
      out.insert(codes.substr(at));
      break;
    }
    out.insert(codes.substr(at, plus - at));
    at = plus + 1;
  }
  return out;
}

VerifyResult verify_corpus_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::vector<analysis::Diagnostic> parse_diags;
  PlanShape shape =
      analysis::parse_plan_text(buf.str(), path.string(), parse_diags);
  EXPECT_TRUE(parse_diags.empty())
      << path << ": " << analysis::render(parse_diags.front());
  return analysis::verify_ops(shape);
}

TEST(VerifyCorpus, EveryFileEmitsExactlyItsCodes) {
  fs::path dir(OMF_VERIFY_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(dir)) << dir;

  std::size_t checked = 0;
  std::size_t hostile = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::set<std::string> expected = expected_codes(entry.path());
    VerifyResult result = verify_corpus_file(entry.path());

    std::set<std::string> got;
    for (const analysis::Diagnostic& d : result.diagnostics) {
      got.insert(d.code);
    }
    EXPECT_EQ(got, expected) << entry.path();
    if (expected.empty()) {
      ASSERT_TRUE(result.certified()) << entry.path();
      EXPECT_TRUE(result.certificate->check()) << entry.path();
    } else {
      ++hostile;
      EXPECT_FALSE(result.certified()) << entry.path();
    }
    ++checked;
  }
  EXPECT_GE(checked, 7u) << "verify corpus unexpectedly small";
  EXPECT_GE(hostile, 5u) << "verify corpus needs hostile mutants";
}

TEST(VerifyCorpus, RejectionsCarryCounterexampleLength) {
  fs::path dir(OMF_VERIFY_CORPUS_DIR);
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    if (expected_codes(entry.path()).empty()) continue;
    VerifyResult result = verify_corpus_file(entry.path());
    for (const analysis::Diagnostic& d : result.diagnostics) {
      EXPECT_NE(d.message.find("counterexample message length"),
                std::string::npos)
          << entry.path() << ": " << d.message;
    }
  }
}

// --- Real compiled plans must all certify -----------------------------------

std::vector<PlanOptions> ablation_options() {
  PlanOptions def;
  PlanOptions no_coalesce = def;
  no_coalesce.coalesce = false;
  PlanOptions no_simd = def;
  no_simd.simd = false;
  PlanOptions interpreted;
  interpreted.coalesce = false;
  interpreted.specialize = false;
  interpreted.fuse_runs = false;
  interpreted.simd = false;
  return {def, PlanOptions::per_field(), no_coalesce, no_simd, interpreted};
}

class CompiledPlanCertification : public ::testing::TestWithParam<const char*> {
};

TEST_P(CompiledPlanCertification, EveryPlanShapeCertifies) {
  const arch::Profile& foreign = arch::profile_by_name(GetParam());
  FormatRegistry reg;
  core::Xml2Wire native_side(reg, arch::native());
  core::Xml2Wire foreign_side(reg, foreign);

  // The full metadata zoo: strings, dynamic arrays, nested records (and
  // nested-in-nested via the C schema), evolution pairs with defaults.
  std::vector<std::pair<FormatHandle, FormatHandle>> pairs;
  {
    FormatHandle nb = native_side.register_text(kAsdOffBSchema)[0];
    FormatHandle fb = foreign_side.register_text(kAsdOffBSchema)[0];
    pairs.emplace_back(fb, nb);
    pairs.emplace_back(nb, nb);  // homogeneous fast path
  }
  {
    auto nc = native_side.register_text(kThreeAsdOffsSchema);
    auto fc = foreign_side.register_text(kThreeAsdOffsSchema);
    for (std::size_t i = 0; i < nc.size(); ++i) {
      pairs.emplace_back(fc[i], nc[i]);
    }
  }

  std::size_t certified = 0;
  for (const auto& [wire, native] : pairs) {
    for (const PlanOptions& options : ablation_options()) {
      pbio::PlanHandle plan = ConversionPlan::build(wire, native, options);
      VerifyResult result = analysis::verify_plan(*plan);
      ASSERT_TRUE(result.certified())
          << wire->name() << " -> " << native->name() << " (options bits "
          << int(options.bits()) << "): "
          << analysis::render(result.diagnostics.front());
      EXPECT_TRUE(result.certificate->check());
      ++certified;
    }
  }
  EXPECT_GE(certified, 15u);
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, CompiledPlanCertification,
                         ::testing::Values("x86_64", "i386", "sparc64",
                                           "sparc32", "arm32"),
                         [](const auto& info) { return info.param; });

TEST(VerifyPlan, EvolutionPlansCertify) {
  // Restricted evolution: v2 grows a defaulted field and drops one, so the
  // plans exercise kDefault and kZero alongside the converting runs.
  static const char* kEvoV1 = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="EvoEvent">
    <xsd:element name="id" type="xsd:int" />
    <xsd:element name="ts" type="xsd:unsignedLong" />
    <xsd:element name="legacy" type="xsd:int" />
  </xsd:complexType>
</xsd:schema>
)";
  static const char* kEvoV2 = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="EvoEventV2">
    <xsd:element name="id" type="xsd:int" />
    <xsd:element name="ts" type="xsd:unsignedLong" />
    <xsd:element name="severity" type="xsd:int" default="3" />
  </xsd:complexType>
</xsd:schema>
)";
  FormatRegistry reg;
  core::Xml2Wire x2w(reg, arch::native());
  FormatHandle v1 = x2w.register_text(kEvoV1)[0];
  FormatHandle v2 = x2w.register_text(kEvoV2)[0];
  for (const PlanOptions& options : ablation_options()) {
    VerifyResult fwd =
        analysis::verify_plan(*ConversionPlan::build(v1, v2, options));
    VerifyResult back =
        analysis::verify_plan(*ConversionPlan::build(v2, v1, options));
    EXPECT_TRUE(fwd.certified());
    EXPECT_TRUE(back.certified());
  }
}

TEST(VerifyPlan, CertificateNamesFusedFields) {
  // src_field plan metadata: diagnostics and labels name the run-head
  // field rather than inferring it from offsets.
  PlanShape shape;
  shape.name = "labeled";
  shape.wire_extent = 8;
  shape.native_extent = 8;
  ConvOp op;
  op.kind = ConvOp::Kind::kInt;
  op.src_offset = 4;
  op.src_size = 4;
  op.dst_size = 4;
  op.count = 2;  // reads [4, 12) of an 8-byte region
  op.swap = true;
  shape.ops.push_back(op);
  VerifyResult result = analysis::verify_ops(shape);
  ASSERT_FALSE(result.certified());
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].code, analysis::codes::kVerifyReadOutOfBounds);
  EXPECT_NE(result.diagnostics[0].message.find("op#0"), std::string::npos);
}

TEST(VerifyPlan, MissingSubplanIsUnprovable) {
  PlanShape shape;
  shape.wire_extent = 16;
  shape.native_extent = 16;
  ConvOp op;
  op.kind = ConvOp::Kind::kNestedStatic;
  op.src_size = 8;
  op.dst_size = 8;
  op.count = 1;
  shape.ops.push_back(op);
  VerifyResult result = analysis::verify_ops(shape);
  ASSERT_FALSE(result.certified());
  EXPECT_EQ(result.diagnostics[0].code,
            analysis::codes::kVerifyUnprovableGuard);
}

TEST(VerifyPlan, TamperedCertificateFailsCheck) {
  PlanShape shape;
  shape.name = "tamper";
  shape.wire_extent = 16;
  shape.native_extent = 16;
  ConvOp op;
  op.kind = ConvOp::Kind::kCopy;
  op.count = 16;
  shape.ops.push_back(op);
  VerifyResult result = analysis::verify_ops(shape);
  ASSERT_TRUE(result.certified());
  analysis::BoundsCertificate cert = *result.certificate;
  ASSERT_TRUE(cert.check());

  analysis::BoundsCertificate bad_read = cert;
  bad_read.reads.push_back({9, 8, 24, false});  // past wire_extent
  EXPECT_FALSE(bad_read.check());

  analysis::BoundsCertificate bad_overlap = cert;
  bad_overlap.writes.push_back({9, 8, 12, false});  // overlaps [0, 16)
  EXPECT_FALSE(bad_overlap.check());
}

// --- PlanCache enforcement ---------------------------------------------------

struct VerifierGuard {
  PlanCache::PlanVerifier saved;
  explicit VerifierGuard(PlanCache::PlanVerifier replacement)
      : saved(PlanCache::set_plan_verifier(replacement)) {}
  ~VerifierGuard() { PlanCache::set_plan_verifier(saved); }
};

TEST(PlanCacheVerify, FailsClosedWithoutVerifier) {
  VerifierGuard guard(nullptr);
  FormatRegistry reg;
  core::Xml2Wire x2w(reg, arch::native());
  FormatHandle f = x2w.register_text(kAsdOffSchema)[0];

  PlanCache cache;
  PlanOptions options;
  options.verify = true;
  EXPECT_THROW(cache.get_or_build(f, f, options), FormatError);
  // The key stays uncompiled: installing the verifier lets a retry succeed.
  analysis::install_plan_verifier();
  EXPECT_NE(cache.get_or_build(f, f, options), nullptr);
}

TEST(PlanCacheVerify, VerifyBitIsPartOfTheCacheKey) {
  PlanOptions plain;
  PlanOptions verified;
  verified.verify = true;
  EXPECT_NE(plain.bits(), verified.bits());

  analysis::install_plan_verifier();
  FormatRegistry reg;
  core::Xml2Wire x2w(reg, arch::native());
  FormatHandle f = x2w.register_text(kAsdOffSchema)[0];
  PlanCache cache;
  EXPECT_NE(cache.get_or_build(f, f, plain), nullptr);
  EXPECT_NE(cache.get_or_build(f, f, verified), nullptr);
  EXPECT_EQ(cache.stats().compiles, 2u);
}

TEST(PlanCacheVerify, ContextDecodesThroughVerifiedPlans) {
  // Context is a trust boundary: its decoder requests certification, and a
  // full discover->bind->decode round trip works under it.
  core::Context ctx;
  EXPECT_TRUE(ctx.decoder().plan_options().verify);

  ctx.compiled_in().add("mem://flight.xsd", kAsdOffSchema);
  FormatHandle f = ctx.discover_format("mem://flight.xsd", "ASDOffEvent");
  core::Marshaler m = ctx.bind_dynamic(f);
  pbio::DynamicRecord rec = m.make_record();
  rec.set_int("fltNum", 42);
  Buffer wire = m.encode(rec.data());

  pbio::DynamicRecord out(f);
  out.from_wire(ctx.decoder(), wire.span());
  EXPECT_EQ(out.get_int("fltNum"), 42);
}

// --- Kernel equivalence ------------------------------------------------------

TEST(KernelEquivalence, SweepIsByteIdenticalAtDispatchTier) {
  analysis::KernelSweepResult sweep = analysis::sweep_kernel_equivalence();
  for (const std::string& m : sweep.mismatches) {
    ADD_FAILURE() << m;
  }
  if (arch::simd_tier() != arch::SimdTier::kScalar) {
    EXPECT_GT(sweep.shapes, 0u)
        << "vector tier dispatched but no shape had a vector form";
    EXPECT_GT(sweep.cases, 0u);
  }
}

// --- omf-verify CLI contract -------------------------------------------------

class VerifyCli : public ::testing::Test {
protected:
  int run(const std::vector<std::string>& args) {
    out_ = std::tmpfile();
    err_ = std::tmpfile();
    int rc = analysis::verify_cli(args, out_, err_);
    return rc;
  }
  static std::string slurp(std::FILE* f) {
    std::string text;
    std::rewind(f);
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    return text;
  }
  void TearDown() override {
    if (out_ != nullptr) std::fclose(out_);
    if (err_ != nullptr) std::fclose(err_);
  }
  std::FILE* out_ = nullptr;
  std::FILE* err_ = nullptr;

  const std::string hostile_ =
      std::string(OMF_VERIFY_CORPUS_DIR) + "/read_past_extent__OMF400.plan";
  const std::string clean_ =
      std::string(OMF_VERIFY_CORPUS_DIR) + "/clean__certified.plan";
};

TEST_F(VerifyCli, CleanPlanExitsZero) { EXPECT_EQ(run({clean_}), 0); }

TEST_F(VerifyCli, RejectionExitsOne) {
  EXPECT_EQ(run({hostile_}), 1);
  EXPECT_NE(slurp(err_).find("OMF400"), std::string::npos);
}

TEST_F(VerifyCli, MixedInputsStillFail) {
  EXPECT_EQ(run({clean_, hostile_}), 1);
}

TEST_F(VerifyCli, NoInputsIsUsageError) { EXPECT_EQ(run({}), 2); }

TEST_F(VerifyCli, UnknownOptionIsUsageError) {
  EXPECT_EQ(run({"--frobnicate", clean_}), 2);
}

TEST_F(VerifyCli, KernelSweepExitsZero) {
  EXPECT_EQ(run({"--kernels"}), 0);
  EXPECT_NE(slurp(out_).find("kernel equivalence"), std::string::npos);
}

TEST_F(VerifyCli, JsonEmitsMachineReadableDiagnostics) {
  EXPECT_EQ(run({"--json", hostile_}), 1);
  std::string json = slurp(out_);
  EXPECT_NE(json.find("\"code\":\"OMF400\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
}

TEST_F(VerifyCli, CertPrintsTheCertificate) {
  EXPECT_EQ(run({"--cert", clean_}), 0);
  std::string text = slurp(out_);
  EXPECT_NE(text.find("certificate: clean"), std::string::npos) << text;
  EXPECT_NE(text.find("proven:"), std::string::npos);
}

}  // namespace
}  // namespace omf
