// Robustness: adversarial and corrupted inputs must raise omf::Error (or
// decode to something) — never crash, hang, or overrun. Also concurrency
// smoke tests for the shared registries and servers.
#include <gtest/gtest.h>

#include <thread>

#include "core/xml2wire.hpp"
#include "http/http.hpp"
#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "pbio/metaserde.hpp"
#include "pbio/record.hpp"
#include "test_structs.hpp"
#include "textxml/textxml.hpp"
#include "util/rng.hpp"
#include "xdr/xdr.hpp"
#include "xml/parser.hpp"

namespace omf {
namespace {

using namespace omf::testing;

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

// --- Pure-noise inputs -----------------------------------------------------------

TEST(Fuzz, RandomBytesIntoNdrDecoder) {
  pbio::FormatRegistry reg;
  auto f = reg.register_format("ASDOffEventB", asdoffb_fields(),
                               sizeof(AsdOffB));
  pbio::Decoder dec(reg);
  Rng rng(101);
  AsdOffB out{};
  pbio::DecodeArena arena;
  for (int i = 0; i < 500; ++i) {
    auto noise = random_bytes(rng, rng.below(256));
    try {
      dec.decode(noise, *f, &out, arena);
    } catch (const Error&) {
      // expected almost always
    }
  }
}

TEST(Fuzz, RandomBytesIntoInPlaceDecoder) {
  pbio::FormatRegistry reg;
  auto f = reg.register_format("ASDOffEventB", asdoffb_fields(),
                               sizeof(AsdOffB));
  Rng rng(102);
  for (int i = 0; i < 500; ++i) {
    auto noise = random_bytes(rng, rng.below(256));
    try {
      pbio::Decoder::decode_in_place(*f, noise.data(), noise.size());
    } catch (const Error&) {
    }
  }
}

TEST(Fuzz, RandomBytesIntoBundleDeserializer) {
  Rng rng(103);
  for (int i = 0; i < 500; ++i) {
    pbio::FormatRegistry reg;
    auto noise = random_bytes(rng, rng.below(512));
    try {
      pbio::deserialize_format_bundle(reg, noise);
    } catch (const Error&) {
    }
  }
}

TEST(Fuzz, RandomBytesIntoXdrDecoder) {
  pbio::FormatRegistry reg;
  auto f = reg.register_format("ASDOffEventB", asdoffb_fields(),
                               sizeof(AsdOffB));
  Rng rng(104);
  AsdOffB out{};
  pbio::DecodeArena arena;
  for (int i = 0; i < 500; ++i) {
    auto noise = random_bytes(rng, rng.below(256));
    try {
      xdr::decode(*f, noise, &out, arena);
    } catch (const Error&) {
    }
  }
}

TEST(Fuzz, RandomBytesIntoXmlParser) {
  Rng rng(105);
  for (int i = 0; i < 500; ++i) {
    auto noise = random_bytes(rng, rng.below(512));
    std::string_view text(reinterpret_cast<const char*>(noise.data()),
                          noise.size());
    try {
      xml::parse(text);
    } catch (const Error&) {
    }
  }
}

// --- Single-byte corruption of valid messages --------------------------------------

TEST(Fuzz, EveryBytePositionCorruptedInNdrMessage) {
  pbio::FormatRegistry reg;
  auto [b, c] = register_nested_pair(reg);
  unsigned long e1[2], e2[1], e3[3];
  ThreeAsdOffs in{};
  fill_asdoffb(in.one, e1, 2, 1);
  fill_asdoffb(in.two, e2, 1, 2);
  fill_asdoffb(in.three, e3, 3, 3);
  Buffer wire = pbio::encode(*c, &in);

  pbio::Decoder dec(reg);
  ThreeAsdOffs out{};
  for (std::size_t pos = 0; pos < wire.size(); ++pos) {
    for (std::uint8_t flip : {std::uint8_t{0xFF}, std::uint8_t{0x80},
                              std::uint8_t{0x01}}) {
      std::vector<std::uint8_t> copy(wire.data(), wire.data() + wire.size());
      copy[pos] ^= flip;
      pbio::DecodeArena arena;
      try {
        dec.decode(copy, *c, &out, arena);
      } catch (const Error&) {
        // rejection is fine; crashing is not
      }
    }
  }
}

TEST(Fuzz, TruncationAtEveryLengthOfNdrMessage) {
  pbio::FormatRegistry reg;
  auto f = reg.register_format("ASDOffEventB", asdoffb_fields(),
                               sizeof(AsdOffB));
  unsigned long etas[4];
  AsdOffB in;
  fill_asdoffb(in, etas, 4);
  Buffer wire = pbio::encode(*f, &in);

  pbio::Decoder dec(reg);
  AsdOffB out{};
  for (std::size_t len = 0; len < wire.size(); ++len) {
    pbio::DecodeArena arena;
    EXPECT_THROW(dec.decode({wire.data(), len}, *f, &out, arena), Error)
        << "length " << len;
  }
}

TEST(Fuzz, MutatedXmlDocumentsNeverCrashParser) {
  std::string base(kThreeAsdOffsSchema);
  Rng rng(106);
  for (int i = 0; i < 400; ++i) {
    std::string copy = base;
    int mutations = 1 + static_cast<int>(rng.below(4));
    for (int m = 0; m < mutations; ++m) {
      std::size_t pos = rng.below(copy.size());
      switch (rng.below(3)) {
        case 0: copy[pos] = static_cast<char>(rng.next()); break;
        case 1: copy.erase(pos, 1 + rng.below(5)); break;
        case 2: copy.insert(pos, 1, static_cast<char>('<' + rng.below(4))); break;
      }
    }
    try {
      pbio::FormatRegistry reg;
      core::Xml2Wire x2w(reg);
      x2w.register_text(copy);
    } catch (const Error&) {
    }
  }
}

TEST(Fuzz, MutatedTextXmlMessages) {
  pbio::FormatRegistry reg;
  auto f = reg.register_format("ASDOffEventB", asdoffb_fields(),
                               sizeof(AsdOffB));
  unsigned long etas[2];
  AsdOffB in;
  fill_asdoffb(in, etas, 2);
  std::string base = textxml::encode_text(*f, &in);

  Rng rng(107);
  AsdOffB out{};
  for (int i = 0; i < 400; ++i) {
    std::string copy = base;
    std::size_t pos = rng.below(copy.size());
    copy[pos] = static_cast<char>(rng.next());
    pbio::DecodeArena arena;
    try {
      textxml::decode(*f,
                      {reinterpret_cast<const std::uint8_t*>(copy.data()),
                       copy.size()},
                      &out, arena);
    } catch (const Error&) {
    }
  }
}

// --- Hostile variable-section geometry ---------------------------------------------

TEST(Hostile, SelfReferentialStringOffset) {
  // A string offset pointing back into the struct region: legal bytes-wise
  // (in range, NUL findable) — must decode without touching anything out
  // of bounds, or throw; either way no crash.
  pbio::FormatRegistry reg;
  auto f = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  AsdOff in;
  fill_asdoff(in);
  Buffer wire = pbio::encode(*f, &in);
  // Point cntrId at offset 2 (inside the struct copy).
  std::uint64_t off = 2;
  std::memcpy(wire.data() + pbio::WireHeader::kSize + offsetof(AsdOff, cntrId),
              &off, sizeof(off));
  pbio::Decoder dec(reg);
  AsdOff out{};
  pbio::DecodeArena arena;
  try {
    dec.decode(wire.span(), *f, &out, arena);
  } catch (const Error&) {
  }
}

TEST(Hostile, OverlappingDynamicArrays) {
  pbio::FormatRegistry reg;
  auto f = reg.register_format("ASDOffEventB", asdoffb_fields(),
                               sizeof(AsdOffB));
  unsigned long etas[4];
  AsdOffB in;
  fill_asdoffb(in, etas, 4);
  Buffer wire = pbio::encode(*f, &in);
  // Point eta back at body offset 0 (overlapping the struct copy).
  std::uint64_t off = 0;
  std::memcpy(wire.data() + pbio::WireHeader::kSize + offsetof(AsdOffB, eta),
              &off, sizeof(off));
  pbio::Decoder dec(reg);
  AsdOffB out{};
  pbio::DecodeArena arena;
  // Offset 0 with nonzero count must be rejected (0 is the null encoding).
  EXPECT_THROW(dec.decode(wire.span(), *f, &out, arena), DecodeError);
}

TEST(Hostile, HugeDeclaredBodyLength) {
  pbio::FormatRegistry reg;
  auto f = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  AsdOff in;
  fill_asdoff(in);
  Buffer wire = pbio::encode(*f, &in);
  // Claim a 256 MB body in a 100-byte message.
  store_le<std::uint32_t>(wire.data() + 4, 256u << 20);
  pbio::Decoder dec(reg);
  AsdOff out{};
  pbio::DecodeArena arena;
  EXPECT_THROW(dec.decode(wire.span(), *f, &out, arena), DecodeError);
  EXPECT_THROW(
      pbio::Decoder::decode_in_place(*f, wire.data(), wire.size()),
      DecodeError);
}

// --- Concurrency smoke --------------------------------------------------------------

TEST(Concurrency, ParallelRegistrationAndLookup) {
  pbio::FormatRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      try {
        for (int i = 0; i < 200; ++i) {
          std::string name = "F" + std::to_string((t * 13 + i) % 20);
          std::vector<pbio::FieldSpec> specs = {
              {"a", "integer", 4}, {"b", "float", 8}, {"s", "string", 0}};
          auto f = reg.register_computed(name, specs);
          if (!reg.by_name(name) || !reg.by_id(f->id())) failed = true;
        }
      } catch (const Error&) {
        failed = true;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_FALSE(failed);
  EXPECT_EQ(reg.size(), 20u);  // 20 distinct names, all deduped by id
}

TEST(Concurrency, ParallelDecodersShareOneRegistry) {
  pbio::FormatRegistry reg;
  auto f = reg.register_format("ASDOffEventB", asdoffb_fields(),
                               sizeof(AsdOffB));
  unsigned long etas[3];
  AsdOffB in;
  fill_asdoffb(in, etas, 3);
  Buffer wire = pbio::encode(*f, &in);

  pbio::Decoder dec(reg);
  std::atomic<int> ok{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      AsdOffB out{};
      pbio::DecodeArena arena;
      for (int i = 0; i < 300; ++i) {
        arena.clear();
        dec.decode(wire.span(), *f, &out, arena);
        if (asdoffb_equal(in, out)) ++ok;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(ok.load(), 8 * 300);
  EXPECT_EQ(dec.cached_plans(), 1u);
}

TEST(Concurrency, ParallelHttpGets) {
  http::Server server;
  server.put_document("/doc", std::string(4096, 'x'));
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < 30; ++i) {
        auto resp = http::get(server.url_for("/doc"));
        if (resp.status == 200 && resp.body.size() == 4096) ++ok;
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(ok.load(), 6 * 30);
}

}  // namespace
}  // namespace omf
