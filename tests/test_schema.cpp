// XML Schema subset: reader and generator.
#include <gtest/gtest.h>

#include "pbio/format.hpp"
#include "core/xml2wire.hpp"
#include "schema/generator.hpp"
#include "schema/reader.hpp"
#include "test_structs.hpp"

namespace omf::schema {
namespace {

using omf::testing::kAsdOffBSchema;
using omf::testing::kAsdOffSchema;
using omf::testing::kThreeAsdOffsSchema;

TEST(SchemaReader, ReadsStructureA) {
  SchemaDocument doc = read_schema_text(kAsdOffSchema);
  EXPECT_EQ(doc.target_namespace, "http://www.cc.gatech.edu/pmw/schemas");
  EXPECT_EQ(doc.documentation, "ASDOff");
  ASSERT_EQ(doc.types.size(), 1u);
  const SchemaType& t = doc.types[0];
  EXPECT_EQ(t.name, "ASDOffEvent");
  ASSERT_EQ(t.elements.size(), 8u);
  EXPECT_EQ(t.elements[0].name, "cntrId");
  EXPECT_TRUE(t.elements[0].is_primitive);
  EXPECT_EQ(t.elements[0].primitive, XsdPrimitive::kString);
  EXPECT_EQ(t.elements[2].primitive, XsdPrimitive::kInt);
  EXPECT_EQ(t.elements[6].primitive, XsdPrimitive::kUnsignedLong);
  EXPECT_EQ(t.elements[6].occurs.kind, Occurs::Kind::kScalar);
}

TEST(SchemaReader, ReadsArrays) {
  SchemaDocument doc = read_schema_text(kAsdOffBSchema);
  const SchemaType& t = doc.types[0];
  const SchemaElement* off = t.element_named("off");
  ASSERT_NE(off, nullptr);
  EXPECT_EQ(off->occurs.kind, Occurs::Kind::kStatic);
  EXPECT_EQ(off->occurs.count, 5u);
  const SchemaElement* eta = t.element_named("eta");
  ASSERT_NE(eta, nullptr);
  EXPECT_EQ(eta->occurs.kind, Occurs::Kind::kDynamicSized);
  EXPECT_EQ(eta->occurs.size_field, "eta_count");
}

TEST(SchemaReader, ReadsNesting) {
  SchemaDocument doc = read_schema_text(kThreeAsdOffsSchema);
  ASSERT_EQ(doc.types.size(), 2u);
  const SchemaType& t = doc.types[1];
  EXPECT_EQ(t.name, "threeASDOffs");
  const SchemaElement* one = t.element_named("one");
  ASSERT_NE(one, nullptr);
  EXPECT_FALSE(one->is_primitive);
  EXPECT_EQ(one->user_type, "ASDOffEventB");
  EXPECT_EQ(t.element_named("bart")->primitive, XsdPrimitive::kDouble);
}

TEST(SchemaReader, WildcardMaxOccursIsUnbounded) {
  const char* schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="T">
    <xsd:element name="xs" type="xsd:int" maxOccurs="*" />
    <xsd:element name="ys" type="xsd:int" maxOccurs="unbounded" />
  </xsd:complexType>
</xsd:schema>)";
  SchemaDocument doc = read_schema_text(schema);
  EXPECT_EQ(doc.types[0].elements[0].occurs.kind,
            Occurs::Kind::kDynamicUnbounded);
  EXPECT_EQ(doc.types[0].elements[1].occurs.kind,
            Occurs::Kind::kDynamicUnbounded);
}

TEST(SchemaReader, SequenceWrapperAccepted) {
  const char* schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="T">
    <xsd:sequence>
      <xsd:element name="x" type="xsd:int" />
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>)";
  SchemaDocument doc = read_schema_text(schema);
  ASSERT_EQ(doc.types[0].elements.size(), 1u);
}

TEST(SchemaReader, The1999NamespaceAndHyphenatedTypesWork) {
  // The paper's own appendix style.
  const char* schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:complexType name="T">
    <xsd:element name="a" type="xsd:unsigned-long" />
    <xsd:element name="b" type="xsd:integer" />
  </xsd:complexType>
</xsd:schema>)";
  SchemaDocument doc = read_schema_text(schema);
  EXPECT_EQ(doc.types[0].elements[0].primitive, XsdPrimitive::kUnsignedLong);
  EXPECT_EQ(doc.types[0].elements[1].primitive, XsdPrimitive::kInt);
}

TEST(SchemaReader, NoNamespacePrefixesAccepted) {
  const char* schema = R"(<schema>
  <complexType name="T"><element name="x" type="U" /></complexType>
</schema>)";
  SchemaDocument doc = read_schema_text(schema);
  EXPECT_FALSE(doc.types[0].elements[0].is_primitive);
  EXPECT_EQ(doc.types[0].elements[0].user_type, "U");
}

struct BadSchema {
  const char* name;
  const char* text;
};

class SchemaErrors : public ::testing::TestWithParam<BadSchema> {};

TEST_P(SchemaErrors, Throws) {
  EXPECT_THROW(read_schema_text(GetParam().text), FormatError)
      << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SchemaErrors,
    ::testing::Values(
        BadSchema{"wrong_root", "<notschema/>"},
        BadSchema{"no_types",
                  "<xsd:schema xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\"/>"},
        BadSchema{"type_without_name",
                  R"(<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema">
                     <s:complexType><s:element name="x" type="s:int"/></s:complexType></s:schema>)"},
        BadSchema{"element_without_type",
                  R"(<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema">
                     <s:complexType name="T"><s:element name="x"/></s:complexType></s:schema>)"},
        BadSchema{"unsupported_xsd_type",
                  R"(<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema">
                     <s:complexType name="T"><s:element name="x" type="s:dateTime"/></s:complexType></s:schema>)"},
        BadSchema{"duplicate_elements",
                  R"(<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema">
                     <s:complexType name="T"><s:element name="x" type="s:int"/>
                     <s:element name="x" type="s:int"/></s:complexType></s:schema>)"},
        BadSchema{"duplicate_types",
                  R"(<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema">
                     <s:complexType name="T"><s:element name="x" type="s:int"/></s:complexType>
                     <s:complexType name="T"><s:element name="y" type="s:int"/></s:complexType></s:schema>)"},
        BadSchema{"dangling_size_field",
                  R"(<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema">
                     <s:complexType name="T"><s:element name="a" type="s:int" maxOccurs="n"/></s:complexType></s:schema>)"},
        BadSchema{"float_size_field",
                  R"(<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema">
                     <s:complexType name="T"><s:element name="a" type="s:int" maxOccurs="n"/>
                     <s:element name="n" type="s:float"/></s:complexType></s:schema>)"},
        BadSchema{"min_max_mismatch",
                  R"(<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema">
                     <s:complexType name="T"><s:element name="a" type="s:int" minOccurs="2" maxOccurs="5"/></s:complexType></s:schema>)"},
        BadSchema{"zero_max_occurs",
                  R"(<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema">
                     <s:complexType name="T"><s:element name="a" type="s:int" maxOccurs="0"/></s:complexType></s:schema>)"},
        BadSchema{"undeclared_prefix",
                  R"(<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema">
                     <s:complexType name="T"><s:element name="a" type="zz:int"/></s:complexType></s:schema>)"},
        BadSchema{"empty_type",
                  R"(<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema">
                     <s:complexType name="T"></s:complexType></s:schema>)"}),
    [](const auto& info) { return info.param.name; });

// --- Simple types (paper footnote 1) ---------------------------------------------

TEST(SimpleTypes, RestrictionOfPrimitive) {
  const char* schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:simpleType name="Knots">
    <xsd:restriction base="xsd:int" />
  </xsd:simpleType>
  <xsd:complexType name="Wind">
    <xsd:element name="speed" type="Knots" />
    <xsd:element name="gust" type="Knots" />
  </xsd:complexType>
</xsd:schema>)";
  SchemaDocument doc = read_schema_text(schema);
  ASSERT_EQ(doc.simple_types.size(), 1u);
  EXPECT_EQ(doc.simple_types[0].base, XsdPrimitive::kInt);
  const SchemaType& t = doc.types[0];
  EXPECT_TRUE(t.elements[0].is_primitive);
  EXPECT_EQ(t.elements[0].primitive, XsdPrimitive::kInt);
}

TEST(SimpleTypes, ChainedDerivationCollapses) {
  const char* schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:simpleType name="Altitude">
    <xsd:restriction base="xsd:unsignedLong" />
  </xsd:simpleType>
  <xsd:simpleType name="FlightLevel">
    <xsd:extension base="Altitude" />
  </xsd:simpleType>
  <xsd:complexType name="T">
    <xsd:element name="fl" type="FlightLevel" />
  </xsd:complexType>
</xsd:schema>)";
  SchemaDocument doc = read_schema_text(schema);
  EXPECT_EQ(doc.simple_type_named("FlightLevel")->base,
            XsdPrimitive::kUnsignedLong);
  EXPECT_EQ(doc.types[0].elements[0].primitive, XsdPrimitive::kUnsignedLong);
}

TEST(SimpleTypes, ArraysOfSimpleTypesWork) {
  const char* schema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:simpleType name="Celsius">
    <xsd:restriction base="xsd:double" />
  </xsd:simpleType>
  <xsd:complexType name="Readings">
    <xsd:element name="temps" type="Celsius" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>)";
  pbio::FormatRegistry reg;
  core::Xml2Wire x2w(reg);
  auto f = x2w.register_text(schema)[0];
  EXPECT_EQ(f->field_named("temps")->type.cls, pbio::FieldClass::kFloat);
  EXPECT_EQ(f->field_named("temps")->size, 8u);
  EXPECT_EQ(f->field_named("temps")->type.array, pbio::ArrayKind::kDynamic);
}

TEST(SimpleTypes, ErrorsAreDiagnosed) {
  EXPECT_THROW(read_schema_text(R"(
<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema">
  <s:simpleType name="Bad"><s:restriction base="s:dateTime"/></s:simpleType>
  <s:complexType name="T"><s:element name="x" type="s:int"/></s:complexType>
</s:schema>)"),
               FormatError);
  EXPECT_THROW(read_schema_text(R"(
<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema">
  <s:simpleType name="Bad"><s:restriction base="NotDefined"/></s:simpleType>
  <s:complexType name="T"><s:element name="x" type="s:int"/></s:complexType>
</s:schema>)"),
               FormatError);
  EXPECT_THROW(read_schema_text(R"(
<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema">
  <s:simpleType name="NoDerivation"/>
  <s:complexType name="T"><s:element name="x" type="s:int"/></s:complexType>
</s:schema>)"),
               FormatError);
  EXPECT_THROW(read_schema_text(R"(
<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema">
  <s:simpleType name="Dup"><s:restriction base="s:int"/></s:simpleType>
  <s:simpleType name="Dup"><s:restriction base="s:int"/></s:simpleType>
  <s:complexType name="T"><s:element name="x" type="s:int"/></s:complexType>
</s:schema>)"),
               FormatError);
  // A name used as both simple and complex type is ambiguous.
  EXPECT_THROW(read_schema_text(R"(
<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema">
  <s:simpleType name="X"><s:restriction base="s:int"/></s:simpleType>
  <s:complexType name="X"><s:element name="a" type="s:int"/></s:complexType>
</s:schema>)"),
               FormatError);
}

// --- Generator -----------------------------------------------------------------

TEST(SchemaGenerator, GeneratedSchemaReadsBack) {
  pbio::FormatRegistry reg;
  auto [b, c] = omf::testing::register_nested_pair(reg);
  std::string text = generate_schema_text(*c);
  SchemaDocument doc = read_schema_text(text);
  ASSERT_EQ(doc.types.size(), 2u);
  EXPECT_EQ(doc.types[0].name, "ASDOffEventB");  // dependency first
  EXPECT_EQ(doc.types[1].name, "threeASDOffs");
  const SchemaElement* eta = doc.types[0].element_named("eta");
  ASSERT_NE(eta, nullptr);
  EXPECT_EQ(eta->occurs.kind, Occurs::Kind::kDynamicSized);
  EXPECT_EQ(eta->occurs.size_field, "eta_count");
}

TEST(SchemaGenerator, RoundTripPreservesLayout) {
  // format -> schema -> xml2wire -> format must be layout-identical.
  pbio::FormatRegistry reg;
  auto [b, c] = omf::testing::register_nested_pair(reg);
  std::string text = generate_schema_text(*c);

  pbio::FormatRegistry reg2;
  core::Xml2Wire x2w(reg2);
  auto handles = x2w.register_text(text);
  ASSERT_EQ(handles.size(), 2u);
  EXPECT_EQ(handles[0]->id(), b->id());
  EXPECT_EQ(handles[1]->id(), c->id());
}

TEST(SchemaGenerator, EmitsDocumentation) {
  pbio::FormatRegistry reg;
  std::vector<pbio::FieldSpec> specs = {{"x", "integer", 4}};
  auto f = reg.register_computed("T", specs);
  GenerateOptions opts;
  opts.documentation = "generated for tests";
  std::string text = generate_schema_text(*f, opts);
  SchemaDocument doc = read_schema_text(text);
  EXPECT_EQ(doc.documentation, "generated for tests");
}

TEST(SchemaGenerator, CharUsesExtensionNamespace) {
  pbio::FormatRegistry reg;
  std::vector<pbio::FieldSpec> specs = {{"c", "char", 1}};
  auto f = reg.register_computed("T", specs);
  std::string text = generate_schema_text(*f);
  EXPECT_NE(text.find("omf:char"), std::string::npos);
  SchemaDocument doc = read_schema_text(text);
  EXPECT_EQ(doc.types[0].elements[0].primitive, XsdPrimitive::kChar);
}

}  // namespace
}  // namespace omf::schema
