// Architecture profiles and the struct-layout calculator, validated against
// the real compiler's layouts for a corpus of structs.
#include <gtest/gtest.h>

#include <cstddef>

#include "arch/profile.hpp"
#include "util/error.hpp"

namespace omf::arch {
namespace {

TEST(Profiles, NativeDetection) {
  const Profile& n = native();
  EXPECT_EQ(n.pointer_size, sizeof(void*));
  EXPECT_EQ(n.int_size, sizeof(int));
  EXPECT_EQ(n.long_size, sizeof(long));
  EXPECT_EQ(n.byte_order, host_byte_order());
  struct P {
    char c;
    double d;
  };
  EXPECT_EQ(n.alignment_cap, offsetof(P, d));
}

TEST(Profiles, CanonicalStrings) {
  EXPECT_EQ(x86_64().canonical(), "le/p8/i4/l8/a8");
  EXPECT_EQ(i386().canonical(), "le/p4/i4/l4/a4");
  EXPECT_EQ(sparc64().canonical(), "be/p8/i4/l8/a8");
  EXPECT_EQ(sparc32().canonical(), "be/p4/i4/l4/a8");
  EXPECT_EQ(arm32().canonical(), "le/p4/i4/l4/a8");
}

TEST(Profiles, EqualityIgnoresName) {
  Profile a = x86_64();
  Profile b = a;
  b.name = "renamed";
  EXPECT_TRUE(a == b);
  b.long_size = 4;
  EXPECT_FALSE(a == b);
}

TEST(Profiles, LookupByName) {
  EXPECT_EQ(&profile_by_name("sparc64"), &sparc64());
  EXPECT_THROW(profile_by_name("vax"), omf::Error);
}

TEST(Profiles, ScalarAlign) {
  EXPECT_EQ(x86_64().scalar_align(8), 8u);
  EXPECT_EQ(i386().scalar_align(8), 4u);  // the i386 ABI quirk
  EXPECT_EQ(i386().scalar_align(4), 4u);
  EXPECT_EQ(sparc32().scalar_align(8), 8u);
  EXPECT_EQ(x86_64().scalar_align(1), 1u);
}

// --- Layout vs the real compiler ---------------------------------------------

// Each case lays out the same member sequence through StructLayout and
// checks offsets/size against the compiled struct.

TEST(Layout, Empty) {
  StructLayout l(native());
  EXPECT_EQ(l.size(), 0u);
  EXPECT_EQ(l.alignment(), 1u);
}

TEST(Layout, PackedScalars) {
  struct S {
    char a;
    int b;
    char c;
    double d;
    short e;
  };
  StructLayout l(native());
  EXPECT_EQ(l.add_scalar(1), offsetof(S, a));
  EXPECT_EQ(l.add_scalar(sizeof(int)), offsetof(S, b));
  EXPECT_EQ(l.add_scalar(1), offsetof(S, c));
  EXPECT_EQ(l.add_scalar(sizeof(double)), offsetof(S, d));
  EXPECT_EQ(l.add_scalar(2), offsetof(S, e));
  EXPECT_EQ(l.size(), sizeof(S));
  EXPECT_EQ(l.alignment(), alignof(S));
}

TEST(Layout, TrailingPadding) {
  struct S {
    double d;
    char c;
  };
  StructLayout l(native());
  l.add_scalar(8);
  l.add_scalar(1);
  EXPECT_EQ(l.size(), sizeof(S));
}

TEST(Layout, Arrays) {
  struct S {
    char c;
    unsigned long arr[5];
    short s;
  };
  StructLayout l(native());
  EXPECT_EQ(l.add_scalar(1), offsetof(S, c));
  EXPECT_EQ(l.add_member(sizeof(unsigned long) * 5, alignof(unsigned long)),
            offsetof(S, arr));
  EXPECT_EQ(l.add_scalar(2), offsetof(S, s));
  EXPECT_EQ(l.size(), sizeof(S));
}

TEST(Layout, NestedStructMember) {
  struct Inner {
    char c;
    double d;
  };
  struct Outer {
    short s;
    Inner in;
    char c;
  };
  StructLayout inner(native());
  inner.add_scalar(1);
  inner.add_scalar(8);
  ASSERT_EQ(inner.size(), sizeof(Inner));

  StructLayout outer(native());
  EXPECT_EQ(outer.add_scalar(2), offsetof(Outer, s));
  EXPECT_EQ(outer.add_member(inner.size(), inner.alignment()),
            offsetof(Outer, in));
  EXPECT_EQ(outer.add_scalar(1), offsetof(Outer, c));
  EXPECT_EQ(outer.size(), sizeof(Outer));
}

TEST(Layout, PointerMembers) {
  struct S {
    char c;
    char* p;
    int i;
    void* q;
  };
  StructLayout l(native());
  EXPECT_EQ(l.add_scalar(1), offsetof(S, c));
  EXPECT_EQ(l.add_scalar(sizeof(void*)), offsetof(S, p));
  EXPECT_EQ(l.add_scalar(sizeof(int)), offsetof(S, i));
  EXPECT_EQ(l.add_scalar(sizeof(void*)), offsetof(S, q));
  EXPECT_EQ(l.size(), sizeof(S));
}

TEST(Layout, I386DoubleAlignmentDiffersFromX86_64) {
  // struct { char c; double d; } is 12 bytes on i386 (double aligned to 4)
  // and 16 on x86_64 (aligned to 8).
  StructLayout l32(i386());
  l32.add_scalar(1);
  l32.add_scalar(8);
  EXPECT_EQ(l32.size(), 12u);

  StructLayout l64(x86_64());
  l64.add_scalar(1);
  l64.add_scalar(8);
  EXPECT_EQ(l64.size(), 16u);

  // arm32 aligns 8-byte scalars to 8 even though pointers are 4 bytes.
  StructLayout larm(arm32());
  larm.add_scalar(1);
  larm.add_scalar(8);
  EXPECT_EQ(larm.size(), 16u);
}

TEST(Layout, PointerSizeVariesByProfile) {
  StructLayout l32(sparc32());
  EXPECT_EQ(l32.add_scalar(sparc32().pointer_size), 0u);
  EXPECT_EQ(l32.add_scalar(4), 4u);
  EXPECT_EQ(l32.size(), 8u);

  StructLayout l64(sparc64());
  EXPECT_EQ(l64.add_scalar(sparc64().pointer_size), 0u);
  EXPECT_EQ(l64.add_scalar(4), 8u);
  EXPECT_EQ(l64.size(), 16u);
}

}  // namespace
}  // namespace omf::arch
