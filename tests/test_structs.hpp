// Shared fixtures: the paper's Appendix A structures (A, B, C/D) as compiled
// C structs, their PBIO-native IOField metadata (sizeof/offsetof, exactly as
// Figures 5/8/11 do), and the equivalent XML Schema documents (Figures
// 6/9/12, modernized to the 2001 namespace).
#pragma once

#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "pbio/field.hpp"
#include "pbio/format.hpp"

namespace omf::testing {

// --- Structure A: flat, strings, no arrays (paper Figure 4) ----------------

struct AsdOff {
  char* cntrId;
  char* arln;
  int fltNum;
  char* equip;
  char* org;
  char* dest;
  unsigned long off;
  unsigned long eta;
};

inline std::vector<pbio::IOField> asdoff_fields() {
  return {
      {"cntrId", "string", sizeof(char*), offsetof(AsdOff, cntrId)},
      {"arln", "string", sizeof(char*), offsetof(AsdOff, arln)},
      {"fltNum", "integer", sizeof(int), offsetof(AsdOff, fltNum)},
      {"equip", "string", sizeof(char*), offsetof(AsdOff, equip)},
      {"org", "string", sizeof(char*), offsetof(AsdOff, org)},
      {"dest", "string", sizeof(char*), offsetof(AsdOff, dest)},
      {"off", "unsigned", sizeof(unsigned long), offsetof(AsdOff, off)},
      {"eta", "unsigned", sizeof(unsigned long), offsetof(AsdOff, eta)},
  };
}

inline const char* kAsdOffSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
            targetNamespace="http://www.cc.gatech.edu/pmw/schemas">
  <xsd:annotation>
    <xsd:documentation>ASDOff</xsd:documentation>
  </xsd:annotation>
  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="cntrId" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:int" />
    <xsd:element name="equip" type="xsd:string" />
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="off" type="xsd:unsignedLong" />
    <xsd:element name="eta" type="xsd:unsignedLong" />
  </xsd:complexType>
</xsd:schema>
)";

/// Fills A with deterministic values; string storage must outlive use.
inline void fill_asdoff(AsdOff& a, int salt = 0) {
  static const char* kAirlines[] = {"DL", "UA", "AA", "SW"};
  std::memset(&a, 0, sizeof(a));
  a.cntrId = const_cast<char*>("ZTL");
  a.arln = const_cast<char*>(kAirlines[salt % 4]);
  a.fltNum = 1000 + salt;
  a.equip = const_cast<char*>("B757");
  a.org = const_cast<char*>("ATL");
  a.dest = const_cast<char*>("MCO");
  a.off = 955910000ul + static_cast<unsigned long>(salt);
  a.eta = 955913600ul + static_cast<unsigned long>(salt);
}

inline bool asdoff_equal(const AsdOff& x, const AsdOff& y) {
  auto str_eq = [](const char* a, const char* b) {
    if ((a == nullptr) != (b == nullptr)) return false;
    return a == nullptr || std::strcmp(a, b) == 0;
  };
  return str_eq(x.cntrId, y.cntrId) && str_eq(x.arln, y.arln) &&
         x.fltNum == y.fltNum && str_eq(x.equip, y.equip) &&
         str_eq(x.org, y.org) && str_eq(x.dest, y.dest) && x.off == y.off &&
         x.eta == y.eta;
}

// --- Structure B: static + dynamic arrays (paper Figure 7) -----------------

struct AsdOffB {
  char* cntrId;
  char* arln;
  int fltNum;
  char* equip;
  char* org;
  char* dest;
  unsigned long off[5];
  unsigned long* eta;
  int eta_count;
};

inline std::vector<pbio::IOField> asdoffb_fields() {
  return {
      {"cntrId", "string", sizeof(char*), offsetof(AsdOffB, cntrId)},
      {"arln", "string", sizeof(char*), offsetof(AsdOffB, arln)},
      {"fltNum", "integer", sizeof(int), offsetof(AsdOffB, fltNum)},
      {"equip", "string", sizeof(char*), offsetof(AsdOffB, equip)},
      {"org", "string", sizeof(char*), offsetof(AsdOffB, org)},
      {"dest", "string", sizeof(char*), offsetof(AsdOffB, dest)},
      {"off", "unsigned[5]", sizeof(unsigned long), offsetof(AsdOffB, off)},
      {"eta", "unsigned[eta_count]", sizeof(unsigned long),
       offsetof(AsdOffB, eta)},
      {"eta_count", "integer", sizeof(int), offsetof(AsdOffB, eta_count)},
  };
}

inline const char* kAsdOffBSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
            targetNamespace="http://www.cc.gatech.edu/pmw/schemas">
  <xsd:complexType name="ASDOffEventB">
    <xsd:element name="cntrId" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:int" />
    <xsd:element name="equip" type="xsd:string" />
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="off" type="xsd:unsignedLong" minOccurs="5" maxOccurs="5" />
    <xsd:element name="eta" type="xsd:unsignedLong" minOccurs="0" maxOccurs="eta_count" />
    <xsd:element name="eta_count" type="xsd:int" />
  </xsd:complexType>
</xsd:schema>
)";

inline void fill_asdoffb(AsdOffB& b, unsigned long* eta_storage,
                         int eta_count, int salt = 0) {
  std::memset(&b, 0, sizeof(b));
  b.cntrId = const_cast<char*>("ZTL");
  b.arln = const_cast<char*>("DL");
  b.fltNum = 200 + salt;
  b.equip = const_cast<char*>("MD88");
  b.org = const_cast<char*>("ATL");
  b.dest = const_cast<char*>("BOS");
  for (int i = 0; i < 5; ++i) {
    b.off[i] = 1000ul * static_cast<unsigned long>(salt + i);
  }
  for (int i = 0; i < eta_count; ++i) {
    eta_storage[i] = 2000ul * static_cast<unsigned long>(salt + i + 1);
  }
  b.eta = eta_count > 0 ? eta_storage : nullptr;
  b.eta_count = eta_count;
}

inline bool asdoffb_equal(const AsdOffB& x, const AsdOffB& y) {
  auto str_eq = [](const char* a, const char* b) {
    if ((a == nullptr) != (b == nullptr)) return false;
    return a == nullptr || std::strcmp(a, b) == 0;
  };
  if (!(str_eq(x.cntrId, y.cntrId) && str_eq(x.arln, y.arln) &&
        x.fltNum == y.fltNum && str_eq(x.equip, y.equip) &&
        str_eq(x.org, y.org) && str_eq(x.dest, y.dest))) {
    return false;
  }
  for (int i = 0; i < 5; ++i) {
    if (x.off[i] != y.off[i]) return false;
  }
  if (x.eta_count != y.eta_count) return false;
  for (int i = 0; i < x.eta_count; ++i) {
    if (x.eta[i] != y.eta[i]) return false;
  }
  return true;
}

// --- Structures C/D: composition by nesting (paper Figure 10) --------------

struct ThreeAsdOffs {
  AsdOffB one;
  double bart;
  AsdOffB two;
  double lisa;
  AsdOffB three;
};

inline std::vector<pbio::IOField> three_asdoffs_fields() {
  return {
      {"one", "ASDOffEventB", sizeof(AsdOffB), offsetof(ThreeAsdOffs, one)},
      {"bart", "float", sizeof(double), offsetof(ThreeAsdOffs, bart)},
      {"two", "ASDOffEventB", sizeof(AsdOffB), offsetof(ThreeAsdOffs, two)},
      {"lisa", "float", sizeof(double), offsetof(ThreeAsdOffs, lisa)},
      {"three", "ASDOffEventB", sizeof(AsdOffB), offsetof(ThreeAsdOffs, three)},
  };
}

inline const char* kThreeAsdOffsSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
            targetNamespace="http://www.cc.gatech.edu/pmw/schemas">
  <xsd:complexType name="ASDOffEventB">
    <xsd:element name="cntrId" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:int" />
    <xsd:element name="equip" type="xsd:string" />
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="off" type="xsd:unsignedLong" minOccurs="5" maxOccurs="5" />
    <xsd:element name="eta" type="xsd:unsignedLong" minOccurs="0" maxOccurs="eta_count" />
    <xsd:element name="eta_count" type="xsd:int" />
  </xsd:complexType>
  <xsd:complexType name="threeASDOffs">
    <xsd:element name="one" type="ASDOffEventB" />
    <xsd:element name="bart" type="xsd:double" />
    <xsd:element name="two" type="ASDOffEventB" />
    <xsd:element name="lisa" type="xsd:double" />
    <xsd:element name="three" type="ASDOffEventB" />
  </xsd:complexType>
</xsd:schema>
)";

inline bool three_asdoffs_equal(const ThreeAsdOffs& x, const ThreeAsdOffs& y) {
  return asdoffb_equal(x.one, y.one) && x.bart == y.bart &&
         asdoffb_equal(x.two, y.two) && x.lisa == y.lisa &&
         asdoffb_equal(x.three, y.three);
}

/// Registers B then C in `registry` under the PBIO-native path. Returns
/// (formatB, formatC).
inline std::pair<pbio::FormatHandle, pbio::FormatHandle>
register_nested_pair(pbio::FormatRegistry& registry) {
  auto b = registry.register_format("ASDOffEventB", asdoffb_fields(),
                                    sizeof(AsdOffB));
  auto c = registry.register_format("threeASDOffs", three_asdoffs_fields(),
                                    sizeof(ThreeAsdOffs));
  return {b, c};
}

}  // namespace omf::testing
