// Baseline codecs: XDR (RFC 1014) and text-XML, on the same field metadata
// as the NDR path.
#include <gtest/gtest.h>

#include "pbio/record.hpp"
#include "test_structs.hpp"
#include "textxml/textxml.hpp"
#include "xdr/xdr.hpp"

namespace omf {
namespace {

using namespace omf::testing;
using pbio::DecodeArena;
using pbio::FormatRegistry;

class CodecTest : public ::testing::Test {
protected:
  void SetUp() override {
    format_a =
        reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
    auto [b, c] = register_nested_pair(reg);
    format_b = b;
    format_c = c;
  }
  FormatRegistry reg;
  pbio::FormatHandle format_a, format_b, format_c;
};

// --- XDR ---------------------------------------------------------------------

TEST_F(CodecTest, XdrRoundTripStructureA) {
  AsdOff in;
  fill_asdoff(in, 11);
  Buffer wire = xdr::encode_buffer(*format_a, &in);

  AsdOff out{};
  DecodeArena arena;
  std::size_t consumed = xdr::decode(*format_a, wire.span(), &out, arena);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_TRUE(asdoff_equal(in, out));
}

TEST_F(CodecTest, XdrRoundTripStructureB) {
  unsigned long etas[3];
  AsdOffB in;
  fill_asdoffb(in, etas, 3, 2);
  Buffer wire = xdr::encode_buffer(*format_b, &in);
  AsdOffB out{};
  DecodeArena arena;
  xdr::decode(*format_b, wire.span(), &out, arena);
  EXPECT_TRUE(asdoffb_equal(in, out));
}

TEST_F(CodecTest, XdrRoundTripNested) {
  unsigned long e1[2], e2[1], e3[3];
  ThreeAsdOffs in{};
  fill_asdoffb(in.one, e1, 2, 1);
  in.bart = 0.5;
  fill_asdoffb(in.two, e2, 1, 2);
  in.lisa = 1.25;
  fill_asdoffb(in.three, e3, 3, 3);
  Buffer wire = xdr::encode_buffer(*format_c, &in);
  ThreeAsdOffs out{};
  DecodeArena arena;
  xdr::decode(*format_c, wire.span(), &out, arena);
  EXPECT_TRUE(three_asdoffs_equal(in, out));
}

TEST_F(CodecTest, XdrIsCanonicalBigEndian) {
  struct One {
    int v;
  };
  std::vector<pbio::IOField> fields = {{"v", "integer", 4, 0}};
  auto f = reg.register_format("One", fields, sizeof(One));
  One in{0x01020304};
  Buffer wire = xdr::encode_buffer(*f, &in);
  ASSERT_EQ(wire.size(), 4u);
  EXPECT_EQ(wire.data()[0], 0x01);  // big-endian regardless of host
  EXPECT_EQ(wire.data()[3], 0x04);
}

TEST_F(CodecTest, XdrPadsStringsToFourBytes) {
  struct S {
    char* s;
  };
  std::vector<pbio::IOField> fields = {{"s", "string", sizeof(char*), 0}};
  auto f = reg.register_format("S", fields, sizeof(S));
  S in{const_cast<char*>("abcde")};
  Buffer wire = xdr::encode_buffer(*f, &in);
  EXPECT_EQ(wire.size(), 4u + 8u);  // length + 5 bytes padded to 8
  EXPECT_EQ(xdr::encoded_size(*f, &in), wire.size());
}

TEST_F(CodecTest, XdrWidensSmallScalars) {
  struct S {
    signed char c;
    short h;
  };
  std::vector<pbio::IOField> fields = {
      {"c", "integer", 1, offsetof(S, c)},
      {"h", "integer", 2, offsetof(S, h)},
  };
  auto f = reg.register_format("S", fields, sizeof(S));
  S in{-5, -300};
  Buffer wire = xdr::encode_buffer(*f, &in);
  EXPECT_EQ(wire.size(), 8u);  // each scalar occupies a 4-byte XDR unit
  S out{};
  DecodeArena arena;
  xdr::decode(*f, wire.span(), &out, arena);
  EXPECT_EQ(out.c, -5);
  EXPECT_EQ(out.h, -300);
}

TEST_F(CodecTest, XdrEncodedSizeMatches) {
  unsigned long etas[5];
  AsdOffB in;
  fill_asdoffb(in, etas, 5, 7);
  Buffer wire = xdr::encode_buffer(*format_b, &in);
  EXPECT_EQ(xdr::encoded_size(*format_b, &in), wire.size());
}

TEST_F(CodecTest, XdrTruncationThrows) {
  AsdOff in;
  fill_asdoff(in);
  Buffer wire = xdr::encode_buffer(*format_a, &in);
  AsdOff out{};
  DecodeArena arena;
  EXPECT_THROW(
      xdr::decode(*format_a, {wire.data(), wire.size() - 3}, &out, arena),
      DecodeError);
  EXPECT_THROW(xdr::decode(*format_a, {wire.data(), std::size_t{2}}, &out,
                           arena),
               DecodeError);
}

TEST_F(CodecTest, XdrBogusArrayCountThrows) {
  unsigned long etas[1];
  AsdOffB in;
  fill_asdoffb(in, etas, 1);
  Buffer wire = xdr::encode_buffer(*format_b, &in);
  // The eta count prefix sits right after 6 strings + fltNum + off[5].
  // Corrupt it to a huge value; decode must reject, not allocate wildly.
  // Find it: encode a second message with count 0 and diff the sizes to
  // locate the prefix deterministically instead of hardcoding.
  AsdOffB zero = in;
  zero.eta_count = 0;
  zero.eta = nullptr;
  Buffer wire0 = xdr::encode_buffer(*format_b, &zero);
  std::size_t prefix_at = 0;
  for (std::size_t i = 0; i < wire0.size(); ++i) {
    if (wire.data()[i] != wire0.data()[i]) {
      prefix_at = i & ~std::size_t{3};
      break;
    }
  }
  store_be<std::uint32_t>(wire.data() + prefix_at, 0x7FFFFFFF);
  AsdOffB out{};
  DecodeArena arena;
  EXPECT_THROW(xdr::decode(*format_b, wire.span(), &out, arena), DecodeError);
}

// --- Text XML -------------------------------------------------------------------

TEST_F(CodecTest, TextXmlRoundTripStructureA) {
  AsdOff in;
  fill_asdoff(in, 13);
  std::string doc = textxml::encode_text(*format_a, &in);
  AsdOff out{};
  DecodeArena arena;
  textxml::decode(*format_a,
                  {reinterpret_cast<const std::uint8_t*>(doc.data()),
                   doc.size()},
                  &out, arena);
  EXPECT_TRUE(asdoff_equal(in, out));
}

TEST_F(CodecTest, TextXmlRoundTripStructureB) {
  unsigned long etas[4];
  AsdOffB in;
  fill_asdoffb(in, etas, 4, 3);
  std::string doc = textxml::encode_text(*format_b, &in);
  AsdOffB out{};
  DecodeArena arena;
  textxml::decode(*format_b,
                  {reinterpret_cast<const std::uint8_t*>(doc.data()),
                   doc.size()},
                  &out, arena);
  EXPECT_TRUE(asdoffb_equal(in, out));
}

TEST_F(CodecTest, TextXmlRoundTripNested) {
  unsigned long e1[1], e2[2], e3[1];
  ThreeAsdOffs in{};
  fill_asdoffb(in.one, e1, 1, 4);
  in.bart = -12.75;
  fill_asdoffb(in.two, e2, 2, 5);
  in.lisa = 1e300;  // double round-trip precision check
  fill_asdoffb(in.three, e3, 1, 6);
  std::string doc = textxml::encode_text(*format_c, &in);
  ThreeAsdOffs out{};
  DecodeArena arena;
  textxml::decode(*format_c,
                  {reinterpret_cast<const std::uint8_t*>(doc.data()),
                   doc.size()},
                  &out, arena);
  EXPECT_TRUE(three_asdoffs_equal(in, out));
}

TEST_F(CodecTest, TextXmlEscapesStringContent) {
  AsdOff in;
  fill_asdoff(in);
  in.equip = const_cast<char*>("<B757 & \"fast\">");
  std::string doc = textxml::encode_text(*format_a, &in);
  EXPECT_EQ(doc.find("<B757"), std::string::npos);  // must be escaped
  AsdOff out{};
  DecodeArena arena;
  textxml::decode(*format_a,
                  {reinterpret_cast<const std::uint8_t*>(doc.data()),
                   doc.size()},
                  &out, arena);
  EXPECT_STREQ(out.equip, "<B757 & \"fast\">");
}

TEST_F(CodecTest, TextXmlExpansionFactorIsLarge) {
  // The paper cites 6-8x expansion for ASCII-XML messages. Check the shape
  // with a numeric-array payload (worst case for text).
  struct Arr {
    double vals[64];
  };
  std::vector<pbio::IOField> fields = {
      {"vals", "float[64]", sizeof(double), 0}};
  auto f = reg.register_format("Arr", fields, sizeof(Arr));
  Arr in;
  for (int i = 0; i < 64; ++i) in.vals[i] = 1.0 / (i + 3);
  std::string doc = textxml::encode_text(*f, &in);
  double expansion = static_cast<double>(doc.size()) / sizeof(Arr);
  EXPECT_GE(expansion, 4.0);
}

TEST_F(CodecTest, TextXmlRejectsWrongRoot) {
  AsdOff in;
  fill_asdoff(in);
  std::string doc = textxml::encode_text(*format_a, &in);
  AsdOffB out{};
  DecodeArena arena;
  EXPECT_THROW(textxml::decode(*format_b,
                               {reinterpret_cast<const std::uint8_t*>(
                                    doc.data()),
                                doc.size()},
                               &out, arena),
               DecodeError);
}

TEST_F(CodecTest, TextXmlRejectsMissingField) {
  const char* doc = "<?xml version=\"1.0\"?><ASDOffEvent>"
                    "<cntrId>Z</cntrId></ASDOffEvent>";
  AsdOff out{};
  DecodeArena arena;
  EXPECT_THROW(textxml::decode(*format_a,
                               {reinterpret_cast<const std::uint8_t*>(doc),
                                std::strlen(doc)},
                               &out, arena),
               DecodeError);
}

TEST_F(CodecTest, TextXmlRejectsBadValues) {
  const char* doc =
      "<?xml version=\"1.0\"?><ASDOffEvent><cntrId>Z</cntrId>"
      "<arln>DL</arln><fltNum>notanumber</fltNum><equip>E</equip>"
      "<org>A</org><dest>B</dest><off>1</off><eta>2</eta></ASDOffEvent>";
  AsdOff out{};
  DecodeArena arena;
  EXPECT_THROW(textxml::decode(*format_a,
                               {reinterpret_cast<const std::uint8_t*>(doc),
                                std::strlen(doc)},
                               &out, arena),
               DecodeError);
}

TEST_F(CodecTest, TextXmlStaticArityEnforced) {
  // Four <off> elements instead of five.
  std::string doc =
      "<?xml version=\"1.0\"?><ASDOffEventB><cntrId>Z</cntrId>"
      "<arln>DL</arln><fltNum>1</fltNum><equip>E</equip>"
      "<org>A</org><dest>B</dest>"
      "<off>1</off><off>2</off><off>3</off><off>4</off>"
      "<eta_count>0</eta_count></ASDOffEventB>";
  AsdOffB out{};
  DecodeArena arena;
  EXPECT_THROW(textxml::decode(*format_b,
                               {reinterpret_cast<const std::uint8_t*>(
                                    doc.data()),
                                doc.size()},
                               &out, arena),
               DecodeError);
}

// --- Cross-codec agreement -----------------------------------------------------

TEST_F(CodecTest, AllCodecsAgreeOnValues) {
  unsigned long etas[2];
  AsdOffB in;
  fill_asdoffb(in, etas, 2, 8);

  DecodeArena arena;
  AsdOffB via_xdr{};
  Buffer xw = xdr::encode_buffer(*format_b, &in);
  xdr::decode(*format_b, xw.span(), &via_xdr, arena);

  AsdOffB via_xml{};
  std::string doc = textxml::encode_text(*format_b, &in);
  textxml::decode(*format_b,
                  {reinterpret_cast<const std::uint8_t*>(doc.data()),
                   doc.size()},
                  &via_xml, arena);

  EXPECT_TRUE(asdoffb_equal(via_xdr, via_xml));
  EXPECT_TRUE(asdoffb_equal(in, via_xdr));
}

}  // namespace
}  // namespace omf
