file(REMOVE_RECURSE
  "CMakeFiles/bench_wire_sizes.dir/bench_wire_sizes.cpp.o"
  "CMakeFiles/bench_wire_sizes.dir/bench_wire_sizes.cpp.o.d"
  "bench_wire_sizes"
  "bench_wire_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wire_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
