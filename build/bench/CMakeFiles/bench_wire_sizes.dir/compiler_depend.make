# Empty compiler generated dependencies file for bench_wire_sizes.
# This may be replaced when dependencies are built.
