# Empty compiler generated dependencies file for bench_ndr_vs_xdr.
# This may be replaced when dependencies are built.
