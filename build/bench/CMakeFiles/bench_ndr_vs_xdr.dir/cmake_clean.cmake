file(REMOVE_RECURSE
  "CMakeFiles/bench_ndr_vs_xdr.dir/bench_ndr_vs_xdr.cpp.o"
  "CMakeFiles/bench_ndr_vs_xdr.dir/bench_ndr_vs_xdr.cpp.o.d"
  "bench_ndr_vs_xdr"
  "bench_ndr_vs_xdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ndr_vs_xdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
