# Empty compiler generated dependencies file for bench_heterogeneous_receive.
# This may be replaced when dependencies are built.
