file(REMOVE_RECURSE
  "CMakeFiles/bench_heterogeneous_receive.dir/bench_heterogeneous_receive.cpp.o"
  "CMakeFiles/bench_heterogeneous_receive.dir/bench_heterogeneous_receive.cpp.o.d"
  "bench_heterogeneous_receive"
  "bench_heterogeneous_receive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heterogeneous_receive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
