file(REMOVE_RECURSE
  "CMakeFiles/bench_concurrent_receive.dir/bench_concurrent_receive.cpp.o"
  "CMakeFiles/bench_concurrent_receive.dir/bench_concurrent_receive.cpp.o.d"
  "bench_concurrent_receive"
  "bench_concurrent_receive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concurrent_receive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
