# Empty dependencies file for bench_concurrent_receive.
# This may be replaced when dependencies are built.
