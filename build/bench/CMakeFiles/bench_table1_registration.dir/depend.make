# Empty dependencies file for bench_table1_registration.
# This may be replaced when dependencies are built.
