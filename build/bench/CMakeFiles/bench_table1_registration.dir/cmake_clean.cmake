file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_registration.dir/bench_table1_registration.cpp.o"
  "CMakeFiles/bench_table1_registration.dir/bench_table1_registration.cpp.o.d"
  "bench_table1_registration"
  "bench_table1_registration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_registration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
