# Empty dependencies file for bench_ndr_vs_textxml.
# This may be replaced when dependencies are built.
