file(REMOVE_RECURSE
  "CMakeFiles/bench_ndr_vs_textxml.dir/bench_ndr_vs_textxml.cpp.o"
  "CMakeFiles/bench_ndr_vs_textxml.dir/bench_ndr_vs_textxml.cpp.o.d"
  "bench_ndr_vs_textxml"
  "bench_ndr_vs_textxml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ndr_vs_textxml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
