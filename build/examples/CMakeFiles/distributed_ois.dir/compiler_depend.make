# Empty compiler generated dependencies file for distributed_ois.
# This may be replaced when dependencies are built.
