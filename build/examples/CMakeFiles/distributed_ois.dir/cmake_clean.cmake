file(REMOVE_RECURSE
  "CMakeFiles/distributed_ois.dir/distributed_ois.cpp.o"
  "CMakeFiles/distributed_ois.dir/distributed_ois.cpp.o.d"
  "distributed_ois"
  "distributed_ois.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_ois.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
