file(REMOVE_RECURSE
  "CMakeFiles/format_evolution.dir/format_evolution.cpp.o"
  "CMakeFiles/format_evolution.dir/format_evolution.cpp.o.d"
  "format_evolution"
  "format_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
