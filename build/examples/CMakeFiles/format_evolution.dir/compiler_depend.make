# Empty compiler generated dependencies file for format_evolution.
# This may be replaced when dependencies are built.
