file(REMOVE_RECURSE
  "CMakeFiles/remote_discovery.dir/remote_discovery.cpp.o"
  "CMakeFiles/remote_discovery.dir/remote_discovery.cpp.o.d"
  "remote_discovery"
  "remote_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
