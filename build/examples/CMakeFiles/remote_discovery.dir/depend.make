# Empty dependencies file for remote_discovery.
# This may be replaced when dependencies are built.
