# Empty dependencies file for wire2xml.
# This may be replaced when dependencies are built.
