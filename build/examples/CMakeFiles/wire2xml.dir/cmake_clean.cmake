file(REMOVE_RECURSE
  "CMakeFiles/wire2xml.dir/wire2xml.cpp.o"
  "CMakeFiles/wire2xml.dir/wire2xml.cpp.o.d"
  "wire2xml"
  "wire2xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire2xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
