# Empty compiler generated dependencies file for omfc.
# This may be replaced when dependencies are built.
