file(REMOVE_RECURSE
  "CMakeFiles/omfc.dir/omfc.cpp.o"
  "CMakeFiles/omfc.dir/omfc.cpp.o.d"
  "omfc"
  "omfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
