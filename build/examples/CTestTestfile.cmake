# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_airline_ois]=] "/root/repo/build/examples/airline_ois")
set_tests_properties([=[example_airline_ois]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_format_evolution]=] "/root/repo/build/examples/format_evolution")
set_tests_properties([=[example_format_evolution]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_remote_discovery]=] "/root/repo/build/examples/remote_discovery")
set_tests_properties([=[example_remote_discovery]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_wire2xml]=] "/root/repo/build/examples/wire2xml")
set_tests_properties([=[example_wire2xml]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_flight_recorder]=] "/root/repo/build/examples/flight_recorder")
set_tests_properties([=[example_flight_recorder]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_distributed_ois]=] "/root/repo/build/examples/distributed_ois")
set_tests_properties([=[example_distributed_ois]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_omfc]=] "/root/repo/build/examples/omfc" "profiles")
set_tests_properties([=[example_omfc]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
