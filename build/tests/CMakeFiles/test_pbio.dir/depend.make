# Empty dependencies file for test_pbio.
# This may be replaced when dependencies are built.
