file(REMOVE_RECURSE
  "CMakeFiles/test_codecs.dir/test_codecs.cpp.o"
  "CMakeFiles/test_codecs.dir/test_codecs.cpp.o.d"
  "test_codecs"
  "test_codecs.pdb"
  "test_codecs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
