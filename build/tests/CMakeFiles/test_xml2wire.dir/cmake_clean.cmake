file(REMOVE_RECURSE
  "CMakeFiles/test_xml2wire.dir/test_xml2wire.cpp.o"
  "CMakeFiles/test_xml2wire.dir/test_xml2wire.cpp.o.d"
  "test_xml2wire"
  "test_xml2wire.pdb"
  "test_xml2wire[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xml2wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
