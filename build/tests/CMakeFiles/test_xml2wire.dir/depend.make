# Empty dependencies file for test_xml2wire.
# This may be replaced when dependencies are built.
