file(REMOVE_RECURSE
  "CMakeFiles/test_remote_backbone.dir/test_remote_backbone.cpp.o"
  "CMakeFiles/test_remote_backbone.dir/test_remote_backbone.cpp.o.d"
  "test_remote_backbone"
  "test_remote_backbone.pdb"
  "test_remote_backbone[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remote_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
