# Empty dependencies file for test_remote_backbone.
# This may be replaced when dependencies are built.
