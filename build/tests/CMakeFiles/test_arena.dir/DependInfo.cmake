
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_arena.cpp" "tests/CMakeFiles/test_arena.dir/test_arena.cpp.o" "gcc" "tests/CMakeFiles/test_arena.dir/test_arena.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/omf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/omf_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/pbio/CMakeFiles/omf_pbio.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/omf_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/cdr/CMakeFiles/omf_cdr.dir/DependInfo.cmake"
  "/root/repo/build/src/textxml/CMakeFiles/omf_textxml.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/omf_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/omf_http.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/omf_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/omf_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/omf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
