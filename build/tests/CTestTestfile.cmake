# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_xml[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_pbio[1]_include.cmake")
include("/root/repo/build/tests/test_convert[1]_include.cmake")
include("/root/repo/build/tests/test_schema[1]_include.cmake")
include("/root/repo/build/tests/test_xml2wire[1]_include.cmake")
include("/root/repo/build/tests/test_codecs[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_discovery[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_streams[1]_include.cmake")
include("/root/repo/build/tests/test_cdr[1]_include.cmake")
include("/root/repo/build/tests/test_golden[1]_include.cmake")
include("/root/repo/build/tests/test_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_remote_backbone[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
include("/root/repo/build/tests/test_concurrency[1]_include.cmake")
include("/root/repo/build/tests/test_arena[1]_include.cmake")
