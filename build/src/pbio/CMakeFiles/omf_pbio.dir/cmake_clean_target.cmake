file(REMOVE_RECURSE
  "libomf_pbio.a"
)
