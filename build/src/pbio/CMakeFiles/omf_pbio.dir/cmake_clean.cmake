file(REMOVE_RECURSE
  "CMakeFiles/omf_pbio.dir/convert.cpp.o"
  "CMakeFiles/omf_pbio.dir/convert.cpp.o.d"
  "CMakeFiles/omf_pbio.dir/decode.cpp.o"
  "CMakeFiles/omf_pbio.dir/decode.cpp.o.d"
  "CMakeFiles/omf_pbio.dir/encode.cpp.o"
  "CMakeFiles/omf_pbio.dir/encode.cpp.o.d"
  "CMakeFiles/omf_pbio.dir/field.cpp.o"
  "CMakeFiles/omf_pbio.dir/field.cpp.o.d"
  "CMakeFiles/omf_pbio.dir/file.cpp.o"
  "CMakeFiles/omf_pbio.dir/file.cpp.o.d"
  "CMakeFiles/omf_pbio.dir/format.cpp.o"
  "CMakeFiles/omf_pbio.dir/format.cpp.o.d"
  "CMakeFiles/omf_pbio.dir/metaserde.cpp.o"
  "CMakeFiles/omf_pbio.dir/metaserde.cpp.o.d"
  "CMakeFiles/omf_pbio.dir/plan_cache.cpp.o"
  "CMakeFiles/omf_pbio.dir/plan_cache.cpp.o.d"
  "CMakeFiles/omf_pbio.dir/record.cpp.o"
  "CMakeFiles/omf_pbio.dir/record.cpp.o.d"
  "CMakeFiles/omf_pbio.dir/synth.cpp.o"
  "CMakeFiles/omf_pbio.dir/synth.cpp.o.d"
  "libomf_pbio.a"
  "libomf_pbio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omf_pbio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
