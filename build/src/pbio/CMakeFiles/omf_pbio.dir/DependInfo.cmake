
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pbio/convert.cpp" "src/pbio/CMakeFiles/omf_pbio.dir/convert.cpp.o" "gcc" "src/pbio/CMakeFiles/omf_pbio.dir/convert.cpp.o.d"
  "/root/repo/src/pbio/decode.cpp" "src/pbio/CMakeFiles/omf_pbio.dir/decode.cpp.o" "gcc" "src/pbio/CMakeFiles/omf_pbio.dir/decode.cpp.o.d"
  "/root/repo/src/pbio/encode.cpp" "src/pbio/CMakeFiles/omf_pbio.dir/encode.cpp.o" "gcc" "src/pbio/CMakeFiles/omf_pbio.dir/encode.cpp.o.d"
  "/root/repo/src/pbio/field.cpp" "src/pbio/CMakeFiles/omf_pbio.dir/field.cpp.o" "gcc" "src/pbio/CMakeFiles/omf_pbio.dir/field.cpp.o.d"
  "/root/repo/src/pbio/file.cpp" "src/pbio/CMakeFiles/omf_pbio.dir/file.cpp.o" "gcc" "src/pbio/CMakeFiles/omf_pbio.dir/file.cpp.o.d"
  "/root/repo/src/pbio/format.cpp" "src/pbio/CMakeFiles/omf_pbio.dir/format.cpp.o" "gcc" "src/pbio/CMakeFiles/omf_pbio.dir/format.cpp.o.d"
  "/root/repo/src/pbio/metaserde.cpp" "src/pbio/CMakeFiles/omf_pbio.dir/metaserde.cpp.o" "gcc" "src/pbio/CMakeFiles/omf_pbio.dir/metaserde.cpp.o.d"
  "/root/repo/src/pbio/plan_cache.cpp" "src/pbio/CMakeFiles/omf_pbio.dir/plan_cache.cpp.o" "gcc" "src/pbio/CMakeFiles/omf_pbio.dir/plan_cache.cpp.o.d"
  "/root/repo/src/pbio/record.cpp" "src/pbio/CMakeFiles/omf_pbio.dir/record.cpp.o" "gcc" "src/pbio/CMakeFiles/omf_pbio.dir/record.cpp.o.d"
  "/root/repo/src/pbio/synth.cpp" "src/pbio/CMakeFiles/omf_pbio.dir/synth.cpp.o" "gcc" "src/pbio/CMakeFiles/omf_pbio.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/omf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/omf_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
