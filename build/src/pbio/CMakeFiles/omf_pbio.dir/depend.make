# Empty dependencies file for omf_pbio.
# This may be replaced when dependencies are built.
