file(REMOVE_RECURSE
  "libomf_cdr.a"
)
