file(REMOVE_RECURSE
  "CMakeFiles/omf_cdr.dir/cdr.cpp.o"
  "CMakeFiles/omf_cdr.dir/cdr.cpp.o.d"
  "libomf_cdr.a"
  "libomf_cdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omf_cdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
