# Empty dependencies file for omf_cdr.
# This may be replaced when dependencies are built.
