file(REMOVE_RECURSE
  "CMakeFiles/omf_schema.dir/generator.cpp.o"
  "CMakeFiles/omf_schema.dir/generator.cpp.o.d"
  "CMakeFiles/omf_schema.dir/reader.cpp.o"
  "CMakeFiles/omf_schema.dir/reader.cpp.o.d"
  "libomf_schema.a"
  "libomf_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omf_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
