# Empty dependencies file for omf_schema.
# This may be replaced when dependencies are built.
