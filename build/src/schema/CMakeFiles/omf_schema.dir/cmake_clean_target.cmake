file(REMOVE_RECURSE
  "libomf_schema.a"
)
