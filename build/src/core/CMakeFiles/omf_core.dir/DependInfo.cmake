
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classify.cpp" "src/core/CMakeFiles/omf_core.dir/classify.cpp.o" "gcc" "src/core/CMakeFiles/omf_core.dir/classify.cpp.o.d"
  "/root/repo/src/core/codegen.cpp" "src/core/CMakeFiles/omf_core.dir/codegen.cpp.o" "gcc" "src/core/CMakeFiles/omf_core.dir/codegen.cpp.o.d"
  "/root/repo/src/core/context.cpp" "src/core/CMakeFiles/omf_core.dir/context.cpp.o" "gcc" "src/core/CMakeFiles/omf_core.dir/context.cpp.o.d"
  "/root/repo/src/core/discovery.cpp" "src/core/CMakeFiles/omf_core.dir/discovery.cpp.o" "gcc" "src/core/CMakeFiles/omf_core.dir/discovery.cpp.o.d"
  "/root/repo/src/core/gateway.cpp" "src/core/CMakeFiles/omf_core.dir/gateway.cpp.o" "gcc" "src/core/CMakeFiles/omf_core.dir/gateway.cpp.o.d"
  "/root/repo/src/core/http_formats.cpp" "src/core/CMakeFiles/omf_core.dir/http_formats.cpp.o" "gcc" "src/core/CMakeFiles/omf_core.dir/http_formats.cpp.o.d"
  "/root/repo/src/core/scoping.cpp" "src/core/CMakeFiles/omf_core.dir/scoping.cpp.o" "gcc" "src/core/CMakeFiles/omf_core.dir/scoping.cpp.o.d"
  "/root/repo/src/core/stream.cpp" "src/core/CMakeFiles/omf_core.dir/stream.cpp.o" "gcc" "src/core/CMakeFiles/omf_core.dir/stream.cpp.o.d"
  "/root/repo/src/core/xml2wire.cpp" "src/core/CMakeFiles/omf_core.dir/xml2wire.cpp.o" "gcc" "src/core/CMakeFiles/omf_core.dir/xml2wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schema/CMakeFiles/omf_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/pbio/CMakeFiles/omf_pbio.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/omf_http.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/omf_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/omf_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/omf_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/omf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
