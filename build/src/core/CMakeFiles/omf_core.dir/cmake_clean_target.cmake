file(REMOVE_RECURSE
  "libomf_core.a"
)
