# Empty dependencies file for omf_core.
# This may be replaced when dependencies are built.
