file(REMOVE_RECURSE
  "CMakeFiles/omf_core.dir/classify.cpp.o"
  "CMakeFiles/omf_core.dir/classify.cpp.o.d"
  "CMakeFiles/omf_core.dir/codegen.cpp.o"
  "CMakeFiles/omf_core.dir/codegen.cpp.o.d"
  "CMakeFiles/omf_core.dir/context.cpp.o"
  "CMakeFiles/omf_core.dir/context.cpp.o.d"
  "CMakeFiles/omf_core.dir/discovery.cpp.o"
  "CMakeFiles/omf_core.dir/discovery.cpp.o.d"
  "CMakeFiles/omf_core.dir/gateway.cpp.o"
  "CMakeFiles/omf_core.dir/gateway.cpp.o.d"
  "CMakeFiles/omf_core.dir/http_formats.cpp.o"
  "CMakeFiles/omf_core.dir/http_formats.cpp.o.d"
  "CMakeFiles/omf_core.dir/scoping.cpp.o"
  "CMakeFiles/omf_core.dir/scoping.cpp.o.d"
  "CMakeFiles/omf_core.dir/stream.cpp.o"
  "CMakeFiles/omf_core.dir/stream.cpp.o.d"
  "CMakeFiles/omf_core.dir/xml2wire.cpp.o"
  "CMakeFiles/omf_core.dir/xml2wire.cpp.o.d"
  "libomf_core.a"
  "libomf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
