# Empty dependencies file for omf_http.
# This may be replaced when dependencies are built.
