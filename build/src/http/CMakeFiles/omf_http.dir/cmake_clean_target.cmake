file(REMOVE_RECURSE
  "libomf_http.a"
)
