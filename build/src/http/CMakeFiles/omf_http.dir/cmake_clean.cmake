file(REMOVE_RECURSE
  "CMakeFiles/omf_http.dir/http.cpp.o"
  "CMakeFiles/omf_http.dir/http.cpp.o.d"
  "libomf_http.a"
  "libomf_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omf_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
