file(REMOVE_RECURSE
  "libomf_textxml.a"
)
