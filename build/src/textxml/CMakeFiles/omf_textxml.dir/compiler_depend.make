# Empty compiler generated dependencies file for omf_textxml.
# This may be replaced when dependencies are built.
