file(REMOVE_RECURSE
  "CMakeFiles/omf_textxml.dir/textxml.cpp.o"
  "CMakeFiles/omf_textxml.dir/textxml.cpp.o.d"
  "libomf_textxml.a"
  "libomf_textxml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omf_textxml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
