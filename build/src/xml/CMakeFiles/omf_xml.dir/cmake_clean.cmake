file(REMOVE_RECURSE
  "CMakeFiles/omf_xml.dir/dom.cpp.o"
  "CMakeFiles/omf_xml.dir/dom.cpp.o.d"
  "CMakeFiles/omf_xml.dir/parser.cpp.o"
  "CMakeFiles/omf_xml.dir/parser.cpp.o.d"
  "CMakeFiles/omf_xml.dir/writer.cpp.o"
  "CMakeFiles/omf_xml.dir/writer.cpp.o.d"
  "libomf_xml.a"
  "libomf_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omf_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
