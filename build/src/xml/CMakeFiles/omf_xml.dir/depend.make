# Empty dependencies file for omf_xml.
# This may be replaced when dependencies are built.
