file(REMOVE_RECURSE
  "libomf_xml.a"
)
