# Empty compiler generated dependencies file for omf_util.
# This may be replaced when dependencies are built.
