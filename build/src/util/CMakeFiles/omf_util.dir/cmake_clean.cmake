file(REMOVE_RECURSE
  "CMakeFiles/omf_util.dir/buffer.cpp.o"
  "CMakeFiles/omf_util.dir/buffer.cpp.o.d"
  "CMakeFiles/omf_util.dir/logging.cpp.o"
  "CMakeFiles/omf_util.dir/logging.cpp.o.d"
  "CMakeFiles/omf_util.dir/strings.cpp.o"
  "CMakeFiles/omf_util.dir/strings.cpp.o.d"
  "libomf_util.a"
  "libomf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
