file(REMOVE_RECURSE
  "libomf_util.a"
)
