file(REMOVE_RECURSE
  "libomf_arch.a"
)
