file(REMOVE_RECURSE
  "CMakeFiles/omf_arch.dir/profile.cpp.o"
  "CMakeFiles/omf_arch.dir/profile.cpp.o.d"
  "libomf_arch.a"
  "libomf_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omf_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
