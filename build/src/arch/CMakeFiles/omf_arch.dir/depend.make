# Empty dependencies file for omf_arch.
# This may be replaced when dependencies are built.
