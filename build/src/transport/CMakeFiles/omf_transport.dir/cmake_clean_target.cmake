file(REMOVE_RECURSE
  "libomf_transport.a"
)
