# Empty dependencies file for omf_transport.
# This may be replaced when dependencies are built.
