
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/backbone.cpp" "src/transport/CMakeFiles/omf_transport.dir/backbone.cpp.o" "gcc" "src/transport/CMakeFiles/omf_transport.dir/backbone.cpp.o.d"
  "/root/repo/src/transport/format_service.cpp" "src/transport/CMakeFiles/omf_transport.dir/format_service.cpp.o" "gcc" "src/transport/CMakeFiles/omf_transport.dir/format_service.cpp.o.d"
  "/root/repo/src/transport/ndr_connection.cpp" "src/transport/CMakeFiles/omf_transport.dir/ndr_connection.cpp.o" "gcc" "src/transport/CMakeFiles/omf_transport.dir/ndr_connection.cpp.o.d"
  "/root/repo/src/transport/remote_backbone.cpp" "src/transport/CMakeFiles/omf_transport.dir/remote_backbone.cpp.o" "gcc" "src/transport/CMakeFiles/omf_transport.dir/remote_backbone.cpp.o.d"
  "/root/repo/src/transport/tcp.cpp" "src/transport/CMakeFiles/omf_transport.dir/tcp.cpp.o" "gcc" "src/transport/CMakeFiles/omf_transport.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/omf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pbio/CMakeFiles/omf_pbio.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/omf_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
