file(REMOVE_RECURSE
  "CMakeFiles/omf_transport.dir/backbone.cpp.o"
  "CMakeFiles/omf_transport.dir/backbone.cpp.o.d"
  "CMakeFiles/omf_transport.dir/format_service.cpp.o"
  "CMakeFiles/omf_transport.dir/format_service.cpp.o.d"
  "CMakeFiles/omf_transport.dir/ndr_connection.cpp.o"
  "CMakeFiles/omf_transport.dir/ndr_connection.cpp.o.d"
  "CMakeFiles/omf_transport.dir/remote_backbone.cpp.o"
  "CMakeFiles/omf_transport.dir/remote_backbone.cpp.o.d"
  "CMakeFiles/omf_transport.dir/tcp.cpp.o"
  "CMakeFiles/omf_transport.dir/tcp.cpp.o.d"
  "libomf_transport.a"
  "libomf_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omf_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
