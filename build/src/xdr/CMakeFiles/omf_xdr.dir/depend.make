# Empty dependencies file for omf_xdr.
# This may be replaced when dependencies are built.
