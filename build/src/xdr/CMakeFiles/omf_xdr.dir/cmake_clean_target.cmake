file(REMOVE_RECURSE
  "libomf_xdr.a"
)
