file(REMOVE_RECURSE
  "CMakeFiles/omf_xdr.dir/xdr.cpp.o"
  "CMakeFiles/omf_xdr.dir/xdr.cpp.o.d"
  "libomf_xdr.a"
  "libomf_xdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omf_xdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
